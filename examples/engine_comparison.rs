//! The paper's experiment in miniature: runtime and quality of BSIM, COV
//! and BSAT side by side on one faulty circuit, Table 2/3 style.
//!
//! ```text
//! cargo run --release --example engine_comparison
//! ```

use gatediag::netlist::{inject_errors, RandomCircuitSpec};
use gatediag::{
    basic_sat_diagnose, basic_sim_diagnose, bsim_quality, generate_failing_tests, sc_diagnose,
    solution_quality, BsatOptions, BsimOptions, CovOptions,
};
use std::time::Instant;

fn main() {
    let golden = RandomCircuitSpec::new(16, 6, 600)
        .latches(20)
        .seed(5)
        .name("comparison_demo")
        .generate();
    let p = 2;
    // Retry injection seeds until the errors are observable enough for a
    // full 32-test pool (an injection can land in near-redundant logic).
    let (faulty, sites, all_tests) = (5u64..30)
        .map(|seed| {
            let (faulty, sites) = inject_errors(&golden, p, seed);
            let tests = generate_failing_tests(&golden, &faulty, 32, 5, 1 << 17);
            (faulty, sites, tests)
        })
        .find(|(_, _, tests)| tests.len() >= 32)
        .expect("some injection seed is observable");
    let errors: Vec<_> = sites.iter().map(|s| s.gate).collect();
    println!(
        "circuit {} gates, {} errors injected, test pool {}",
        faulty.num_functional_gates(),
        p,
        all_tests.len()
    );
    println!(
        "\n{:>3} | {:>9} {:>7} {:>6} | {:>9} {:>5} {:>6} | {:>9} {:>5} {:>6}",
        "m", "BSIM", "|uC|", "avgA", "COV", "#sol", "avg", "BSAT", "#sol", "avg"
    );
    for m in [4usize, 8, 16, 32] {
        if all_tests.len() < m {
            println!("{m:>3} | not enough failing tests");
            continue;
        }
        let tests = all_tests.prefix(m);

        let t0 = Instant::now();
        let bsim = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        let bsim_time = t0.elapsed();
        let bq = bsim_quality(&faulty, &bsim, &errors);

        let cov = sc_diagnose(&faulty, &tests, p, CovOptions::default());
        let cq = solution_quality(&faulty, &cov.solutions, &errors);

        let bsat = basic_sat_diagnose(&faulty, &tests, p, BsatOptions::default());
        let sq = solution_quality(&faulty, &bsat.solutions, &errors);

        println!(
            "{:>3} | {:>8.3?} {:>7} {:>6.2} | {:>8.3?} {:>5} {:>6.2} | {:>8.3?} {:>5} {:>6.2}",
            m,
            bsim_time,
            bq.union_size,
            bq.avg_all,
            cov.total_time,
            cq.num_solutions,
            cq.avg,
            bsat.total_time,
            sq.num_solutions,
            sq.avg,
        );
    }
    println!(
        "\n(avg = mean structural distance from reported gates to the nearest \
         real error; BSAT solutions are guaranteed valid corrections)"
    );
}
