//! Sequential diagnosis via time-frame expansion (the construction of the
//! paper's reference [4], Ali et al.).
//!
//! A faulty state machine misbehaves only after a few clock cycles; the
//! sequential engine unrolls the circuit over the failing sequences and
//! shares each gate's correction select line across all time frames.
//!
//! ```text
//! cargo run --example sequential_debug
//! ```

use gatediag::core::{
    generate_failing_sequences, is_valid_sequential_correction, run_sequential_engine,
    sequential_sat_diagnose, simulate_sequence, EngineConfig, EngineKind, SeqBsatOptions,
};
use gatediag::netlist::{inject_errors, parse_bench, RandomCircuitSpec};

fn main() {
    // A small handwritten controller: 2-bit counter with enable/reset.
    let golden = parse_bench(
        "\
INPUT(en)
INPUT(rst)
OUTPUT(carry)
q0 = DFF(d0)
q1 = DFF(d1)
nrst = NOT(rst)
t0 = XOR(q0, en)
d0 = AND(t0, nrst)
c0 = AND(q0, en)
t1 = XOR(q1, c0)
d1 = AND(t1, nrst)
carry = AND(c0, q1)
",
    )
    .expect("controller parses");
    println!(
        "controller: {} gates, {} flip-flops",
        golden.num_functional_gates(),
        golden.latches().len()
    );

    // Inject one gate-change error.
    let (faulty, sites) = inject_errors(&golden, 1, 13);
    let error = sites[0];
    println!(
        "injected: {} changed {} -> {}",
        faulty.gate_name(error.gate).unwrap_or("?"),
        error.original,
        error.replacement
    );

    // Collect failing input sequences (5 cycles each).
    let tests = generate_failing_sequences(&golden, &faulty, 5, 6, 13, 4096);
    if tests.is_empty() {
        println!("error not observable within 5 cycles of random stimulus");
        return;
    }
    println!("{} failing sequences (5 cycles each)", tests.len());
    let first = &tests.tests()[0];
    println!(
        "  e.g. output {} wrong at cycle {} (expected {})",
        faulty.gate_name(first.output).unwrap_or("?"),
        first.frame,
        first.expected
    );
    // Show the golden-vs-faulty trace of that sequence.
    let g_trace = simulate_sequence(&golden, &first.initial_state, &first.vectors);
    let f_trace = simulate_sequence(&faulty, &first.initial_state, &first.vectors);
    print!("  golden carry: ");
    for frame in &g_trace {
        print!("{}", frame[first.output.index()] as u8);
    }
    print!("\n  faulty carry: ");
    for frame in &f_trace {
        print!("{}", frame[first.output.index()] as u8);
    }
    println!();

    // Sequential path tracing first: marks across frame boundaries, G_max
    // as the single best-effort answer.
    let bsim = run_sequential_engine(
        EngineKind::SeqBsim,
        &faulty,
        &tests,
        &EngineConfig::default(),
    );
    println!(
        "\nsequential BSIM: {} marked gates, G_max {}",
        bsim.candidates.len(),
        if bsim
            .solutions
            .first()
            .is_some_and(|g| g.contains(&error.gate))
        {
            "contains the injected error"
        } else {
            "missed the injected error"
        }
    );

    // Sequential SAT diagnosis: selects shared across all 5 frames.
    let diag = sequential_sat_diagnose(
        &faulty,
        &tests,
        1,
        SeqBsatOptions {
            max_solutions: 100,
            ..SeqBsatOptions::default()
        },
    );
    println!(
        "\nsequential BSAT (k = 1): {} corrections{}",
        diag.solutions.len(),
        if diag.complete { "" } else { " (truncated)" }
    );
    for sol in &diag.solutions {
        let names: Vec<&str> = sol
            .iter()
            .map(|&g| faulty.gate_name(g).unwrap_or("?"))
            .collect();
        let marker = if sol.contains(&error.gate) {
            "  <-- the injected error"
        } else {
            ""
        };
        assert!(is_valid_sequential_correction(&faulty, &tests, sol));
        println!("  {names:?}{marker}");
    }

    // Larger randomized sanity run.
    let golden = RandomCircuitSpec::new(6, 3, 80)
        .latches(6)
        .seed(3)
        .generate();
    let (faulty, sites) = inject_errors(&golden, 1, 3);
    let tests = generate_failing_sequences(&golden, &faulty, 4, 8, 3, 8192);
    if !tests.is_empty() {
        let diag = sequential_sat_diagnose(
            &faulty,
            &tests,
            1,
            SeqBsatOptions {
                max_solutions: 500,
                ..SeqBsatOptions::default()
            },
        );
        println!(
            "\nrandom sequential circuit (80 gates, 6 FFs): {} corrections, real site {}",
            diag.solutions.len(),
            if diag.solutions.contains(&vec![sites[0].gate]) {
                "found"
            } else {
                "ranked out by the tests"
            }
        );
    }
}
