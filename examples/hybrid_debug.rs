//! The paper's Sec. 6 hybrid flows in action.
//!
//! Flow 1: seed the SAT solver's decision heuristic with BSIM mark counts.
//! Flow 2: take a (possibly invalid) COV cover and repair it into a valid
//! correction by SAT over a growing structural neighbourhood.
//!
//! ```text
//! cargo run --example hybrid_debug
//! ```

use gatediag::netlist::{inject_errors, RandomCircuitSpec};
use gatediag::{
    basic_sat_diagnose, generate_failing_tests, hybrid_seeded_bsat, is_valid_correction,
    repair_correction, sc_diagnose, BsatOptions, CovOptions,
};

fn main() {
    let golden = RandomCircuitSpec::new(12, 4, 300)
        .seed(11)
        .name("hybrid_demo")
        .generate();
    let (faulty, sites) = inject_errors(&golden, 2, 11);
    let errors: Vec<_> = sites.iter().map(|s| s.gate).collect();
    let tests = generate_failing_tests(&golden, &faulty, 16, 11, 65536);
    println!(
        "circuit: {} gates; injected errors at {:?}; {} failing tests",
        faulty.num_functional_gates(),
        errors,
        tests.len()
    );

    // --- Flow 1: BSIM-seeded BSAT --------------------------------------
    let plain = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
    let seeded = hybrid_seeded_bsat(&faulty, &tests, 2, BsatOptions::default());
    assert_eq!(
        plain.solutions, seeded.solutions,
        "seeding must not change the solution space"
    );
    println!("\nflow 1 — BSIM-seeded decision heuristic:");
    println!(
        "  plain BSAT : {} solutions, {} conflicts, {} decisions",
        plain.solutions.len(),
        plain.stats.conflicts,
        plain.stats.decisions
    );
    println!(
        "  seeded BSAT: {} solutions, {} conflicts, {} decisions",
        seeded.solutions.len(),
        seeded.stats.conflicts,
        seeded.stats.decisions
    );

    // --- Flow 2: repair a COV cover ------------------------------------
    let cov = sc_diagnose(&faulty, &tests, 2, CovOptions::default());
    println!("\nflow 2 — repair an initial COV cover:");
    let Some(seed_cover) = cov
        .solutions
        .iter()
        .find(|sol| !is_valid_correction(&faulty, &tests, sol))
        .or_else(|| cov.solutions.first())
    else {
        println!("  COV produced no covers to repair");
        return;
    };
    let seed_valid = is_valid_correction(&faulty, &tests, seed_cover);
    println!(
        "  seed cover {:?} is {}",
        seed_cover,
        if seed_valid {
            "already a valid correction"
        } else {
            "NOT a valid correction (Lemma 2 in the wild)"
        }
    );
    match repair_correction(&faulty, &tests, seed_cover, 2, 8, BsatOptions::default()) {
        Some(outcome) => {
            println!(
                "  repaired at radius {} using {} mux sites; {} valid corrections, e.g. {:?}",
                outcome.radius,
                outcome.sites_used,
                outcome.solutions.len(),
                outcome.solutions.first().expect("non-empty")
            );
            for sol in &outcome.solutions {
                assert!(is_valid_correction(&faulty, &tests, sol));
            }
        }
        None => println!("  no valid correction within radius 8"),
    }
}
