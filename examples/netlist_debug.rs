//! Post-synthesis debug session on a `.bench` netlist.
//!
//! Reads an ISCAS89-style `.bench` file (pass a path as the first
//! argument, or the built-in sequential demo netlist is used), injects a
//! seeded gate-change error, and walks the full diagnosis flow a designer
//! would run: failing tests, ranked BSIM candidates, then exact BSAT
//! corrections with validity guarantees.
//!
//! ```text
//! cargo run --example netlist_debug [path/to/circuit.bench]
//! ```

use gatediag::netlist::{inject_errors, parse_bench_named};
use gatediag::{
    basic_sat_diagnose, basic_sim_diagnose, generate_failing_tests, solution_quality, BsatOptions,
    BsimOptions,
};
use std::process::ExitCode;

/// A small sequential netlist (two flip-flops) used when no file is given;
/// the parser turns the DFFs into pseudo-primary I/O automatically.
const DEMO: &str = "\
# demo sequential controller
INPUT(start)
INPUT(mode)
OUTPUT(busy)
OUTPUT(done)
s0 = DFF(n0)
s1 = DFF(n1)
inv_mode = NOT(mode)
go = AND(start, inv_mode)
n0 = OR(go, s1)
t = AND(s0, mode)
n1 = XOR(t, go)
busy = OR(s0, s1)
done = AND(s0, s1)
";

fn main() -> ExitCode {
    let (text, name) = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => (text, path),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => (DEMO.to_string(), "demo".to_string()),
    };
    let golden = match parse_bench_named(&text, &name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("parse error in {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{name}: {} gates, {} inputs, {} outputs, {} flip-flops, depth {}",
        golden.num_functional_gates(),
        golden.inputs().len(),
        golden.outputs().len(),
        golden.latches().len(),
        golden.depth()
    );

    let (faulty, sites) = inject_errors(&golden, 1, 7);
    let error = sites[0];
    println!(
        "\ninjected: {} changed {} -> {}",
        faulty.gate_name(error.gate).unwrap_or("?"),
        error.original,
        error.replacement
    );

    let tests = generate_failing_tests(&golden, &faulty, 16, 7, 65536);
    if tests.is_empty() {
        println!("error is not observable with random tests; nothing to diagnose");
        return ExitCode::SUCCESS;
    }
    println!("{} failing tests collected", tests.len());

    // Ranked BSIM candidates: the designer's first look.
    let bsim = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
    let mut ranked: Vec<(u32, String)> = bsim
        .mark_counts
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0)
        .map(|(i, &m)| {
            let id = gatediag::netlist::GateId::new(i);
            (m, faulty.gate_name(id).unwrap_or("?").to_string())
        })
        .collect();
    ranked.sort_by_key(|a| std::cmp::Reverse(a.0));
    println!("\nBSIM candidates by mark count M(g):");
    for (m, gate_name) in ranked.iter().take(8) {
        println!("  M = {m:>3}  {gate_name}");
    }

    // Exact diagnosis.
    let bsat = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
    println!("\nBSAT valid corrections (k = 1):");
    for sol in &bsat.solutions {
        let names: Vec<&str> = sol
            .iter()
            .map(|g| faulty.gate_name(*g).unwrap_or("?"))
            .collect();
        println!("  {names:?}");
    }
    let q = solution_quality(&faulty, &bsat.solutions, &[error.gate]);
    println!(
        "\nquality: {} solutions, avg distance to real error = {:.2} gates",
        q.num_solutions, q.avg
    );
    ExitCode::SUCCESS
}
