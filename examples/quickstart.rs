//! Quickstart: inject an error into c17, generate failing tests, and run
//! all three diagnosis engines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gatediag::netlist::{c17, inject_errors};
use gatediag::{
    basic_sat_diagnose, basic_sim_diagnose, generate_failing_tests, is_valid_correction,
    sc_diagnose, BsatOptions, BsimOptions, CovOptions,
};

fn main() {
    // A golden design and a faulty implementation of it.
    let golden = c17();
    let (faulty, sites) = inject_errors(&golden, 1, 2026);
    let site = sites[0];
    println!(
        "injected error: gate {} ({}) changed {} -> {}",
        site.gate,
        faulty.gate_name(site.gate).unwrap_or("?"),
        site.original,
        site.replacement
    );

    // Failing tests come from simulating both circuits on random vectors.
    let tests = generate_failing_tests(&golden, &faulty, 8, 2026, 4096);
    println!("generated {} failing tests", tests.len());

    // BSIM: fast path tracing; candidates ranked by mark count.
    let bsim = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
    let gmax = bsim.gmax();
    println!(
        "BSIM: |union of candidate sets| = {}, G_max = {:?}",
        bsim.union.len(),
        gmax.iter()
            .map(|g| faulty.gate_name(*g).unwrap_or("?"))
            .collect::<Vec<_>>()
    );

    // COV: all irredundant covers of the candidate sets.
    let cov = sc_diagnose(&faulty, &tests, 1, CovOptions::default());
    println!("COV : {} cover solutions (k = 1)", cov.solutions.len());

    // BSAT: all valid corrections — the exact engine.
    let bsat = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
    println!("BSAT: {} valid corrections (k = 1):", bsat.solutions.len());
    for sol in &bsat.solutions {
        let names: Vec<&str> = sol
            .iter()
            .map(|g| faulty.gate_name(*g).unwrap_or("?"))
            .collect();
        let marker = if sol.contains(&site.gate) {
            "  <-- the injected error site"
        } else {
            ""
        };
        debug_assert!(is_valid_correction(&faulty, &tests, sol));
        println!("      {names:?}{marker}");
    }
}
