//! End-to-end crash recovery through the real binary: start a campaign
//! with `--checkpoint`, kill the process mid-run, resume from the
//! checkpoint, and require the merged report to be byte-identical to an
//! uninterrupted run of the same matrix. This is the whole point of the
//! autosave: a SIGKILL costs at most `--checkpoint-every` instances of
//! work and zero correctness.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gatediag_crash_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The campaign flags shared by every invocation. Chaos and retries are
/// on so the crash window also covers the failure-handling paths.
fn campaign_args(dir: &Path, json: &str) -> Vec<String> {
    [
        "campaign",
        "--demo",
        "--engines",
        "bsim,cov,bsat",
        "--seeds",
        "1,2",
        "--workers",
        "2",
        "--chaos-rate",
        "0.2",
        "--chaos-seed",
        "5",
        "--retry-attempts",
        "2",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        "--json".to_string(),
        dir.join(json).display().to_string(),
        "--csv".to_string(),
        dir.join(format!("{json}.csv")).display().to_string(),
    ])
    .collect()
}

#[test]
fn kill_checkpoint_resume_matches_uninterrupted_run() {
    let dir = temp_dir();
    let bin = env!("CARGO_BIN_EXE_gatediag");
    let checkpoint = dir.join("checkpoint.json");

    // 1. Uninterrupted reference run.
    let status = Command::new(bin)
        .args(campaign_args(&dir, "fresh.json"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference campaign failed");
    let fresh = std::fs::read(dir.join("fresh.json")).unwrap();

    // 2. Checkpointed run, killed as soon as the first autosave lands.
    let mut child = Command::new(bin)
        .args(campaign_args(&dir, "killed.json"))
        .args([
            "--checkpoint",
            &checkpoint.display().to_string(),
            "--checkpoint-every",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed run");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !checkpoint.exists() && Instant::now() < deadline {
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill it — still fine below
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(checkpoint.exists(), "no checkpoint appeared within 60s");
    let _ = child.kill();
    let _ = child.wait();

    // The checkpoint is a complete, valid report even though the writer
    // was SIGKILLed: the tmp+rename protocol never exposes a torn file.
    let partial = std::fs::read(&checkpoint).unwrap();
    let report = gatediag::parse_report_bytes(&partial).expect("checkpoint parses");
    assert!(
        !report.records.is_empty(),
        "checkpoint holds no records despite --checkpoint-every 1"
    );

    // 3. Resume from the checkpoint and finish the matrix.
    let output = Command::new(bin)
        .args(campaign_args(&dir, "resumed.json"))
        .args(["--resume", &checkpoint.display().to_string()])
        .stderr(Stdio::null())
        .output()
        .expect("spawn resumed run");
    assert!(output.status.success(), "resume run failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("resuming from"),
        "resume did not report reuse:\n{stdout}"
    );

    // 4. Byte-identical recovery (timing columns are off by default).
    let resumed = std::fs::read(dir.join("resumed.json")).unwrap();
    assert_eq!(
        resumed, fresh,
        "resumed JSON drifted from the uninterrupted run"
    );
    let fresh_csv = std::fs::read(dir.join("fresh.json.csv")).unwrap();
    let resumed_csv = std::fs::read(dir.join("resumed.json.csv")).unwrap();
    assert_eq!(resumed_csv, fresh_csv, "resumed CSV drifted");

    let _ = std::fs::remove_dir_all(&dir);
}
