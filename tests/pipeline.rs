//! Cross-crate property tests: the full inject → test → diagnose pipeline
//! on randomized circuits, checking engine agreements and soundness
//! end-to-end.

use gatediag::netlist::{inject_errors, write_bench, GateId, RandomCircuitSpec};
use gatediag::{
    basic_sat_diagnose, brute_force_diagnose, generate_failing_tests, is_valid_correction,
    is_valid_correction_sat, partitioned_sat_diagnose, sc_diagnose, sim_backtrack_diagnose,
    BsatOptions, CovEngine, CovOptions, SimBacktrackOptions,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Case {
    seed: u64,
    p: usize,
    m: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (0u64..2_000, 1usize..=2, 2usize..=6).prop_map(|(seed, p, m)| Case { seed, p, m })
}

fn build(case: &Case) -> Option<(gatediag::netlist::Circuit, Vec<GateId>, gatediag::TestSet)> {
    let golden = RandomCircuitSpec::new(5, 3, 30).seed(case.seed).generate();
    let (faulty, sites) = inject_errors(&golden, case.p, case.seed);
    let tests = generate_failing_tests(&golden, &faulty, case.m, case.seed, 4096);
    if tests.is_empty() {
        None
    } else {
        Some((faulty, sites.iter().map(|s| s.gate).collect(), tests))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 3 as a property: BSAT output equals the brute-force set of
    /// irredundant valid corrections on arbitrary random instances.
    #[test]
    fn bsat_equals_ground_truth(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        let k = case.p.min(2);
        let bsat = basic_sat_diagnose(&faulty, &tests, k, BsatOptions::default());
        prop_assert!(bsat.complete);
        let brute = brute_force_diagnose(&faulty, &tests, k);
        prop_assert_eq!(bsat.solutions, brute);
    }

    /// The two COV engines agree on the complete solution list.
    #[test]
    fn cov_engines_agree(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        let sat = sc_diagnose(&faulty, &tests, 2, CovOptions::default());
        let bnb = sc_diagnose(
            &faulty,
            &tests,
            2,
            CovOptions { engine: CovEngine::BranchAndBound, ..CovOptions::default() },
        );
        prop_assert_eq!(sat.solutions, bnb.solutions);
    }

    /// Every engine's solutions pass both validity oracles identically,
    /// and every advanced-sim solution appears in BSAT's complete set.
    #[test]
    fn engine_solutions_are_coherent(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        let bsat = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        let sim = sim_backtrack_diagnose(&faulty, &tests, 2, SimBacktrackOptions::default());
        for sol in &sim {
            prop_assert!(bsat.solutions.contains(sol), "{:?} not in BSAT", sol);
        }
        for sol in &bsat.solutions {
            prop_assert!(is_valid_correction(&faulty, &tests, sol));
            prop_assert!(is_valid_correction_sat(&faulty, &tests, sol));
        }
    }

    /// Partitioned diagnosis is sound: everything it returns is a valid
    /// correction for the FULL test-set, and is one of BSAT's solutions.
    #[test]
    fn partitioning_is_sound(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        if tests.len() < 4 { return Ok(()); }
        let part = partitioned_sat_diagnose(&faulty, &tests, 2, 2, BsatOptions::default());
        let full = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        for sol in &part.solutions {
            prop_assert!(is_valid_correction(&faulty, &tests, sol));
            prop_assert!(
                full.solutions.contains(sol),
                "partitioned {:?} not in monolithic output", sol
            );
        }
    }

    /// `.bench` round-trip preserves diagnosis behaviour: parsing the
    /// written netlist yields a circuit with identical BSAT solutions
    /// (modulo the id relabeling, compared via gate names).
    #[test]
    fn bench_round_trip_preserves_diagnosis(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        let text = write_bench(&faulty);
        let reparsed = gatediag::netlist::parse_bench(&text).expect("round trip parses");
        prop_assert_eq!(reparsed.num_functional_gates(), faulty.num_functional_gates());
        // Re-map the tests: inputs/outputs keep names.
        let remap = |g: GateId| -> GateId {
            let name = faulty.gate_name(g).expect("generated gates are named");
            reparsed.find(name).expect("name survives round trip")
        };
        let remapped: gatediag::TestSet = tests
            .iter()
            .map(|t| {
                // Input ORDER may differ after reparse; rebuild by name.
                let mut vector = vec![false; reparsed.inputs().len()];
                for (&pi, &v) in faulty.inputs().iter().zip(&t.vector) {
                    let new_pi = remap(pi);
                    let pos = reparsed
                        .inputs()
                        .iter()
                        .position(|&x| x == new_pi)
                        .expect("input stays an input");
                    vector[pos] = v;
                }
                gatediag::Test { vector, output: remap(t.output), expected: t.expected }
            })
            .collect();
        let a = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
        let b = basic_sat_diagnose(&reparsed, &remapped, 1, BsatOptions::default());
        let a_names: Vec<Vec<&str>> = a
            .solutions
            .iter()
            .map(|sol| sol.iter().map(|&g| faulty.gate_name(g).unwrap()).collect())
            .collect();
        let mut b_names: Vec<Vec<&str>> = b
            .solutions
            .iter()
            .map(|sol| sol.iter().map(|&g| reparsed.gate_name(g).unwrap()).collect())
            .collect();
        for sol in &mut b_names {
            sol.sort();
        }
        let mut a_sorted = a_names;
        for sol in &mut a_sorted {
            sol.sort();
        }
        a_sorted.sort();
        b_names.sort();
        prop_assert_eq!(a_sorted, b_names);
    }

    /// More tests can only shrink or keep BSAT's solution set at k=1
    /// (additional constraints never add size-1 corrections).
    #[test]
    fn more_tests_never_add_singleton_solutions(case in case_strategy()) {
        let Some((faulty, _, tests)) = build(&case) else { return Ok(()); };
        if tests.len() < 2 { return Ok(()); }
        let half = tests.prefix(tests.len() / 2);
        let small = basic_sat_diagnose(&faulty, &half, 1, BsatOptions::default());
        let big = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
        for sol in &big.solutions {
            prop_assert!(
                small.solutions.contains(sol),
                "{:?} appeared only with more tests", sol
            );
        }
    }
}
