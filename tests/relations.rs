//! Executable versions of the paper's theory (Sec. 3): Lemmas 1-4 and
//! Theorems 1-2, checked on the Fig. 5 witnesses and on randomized
//! circuits with brute-force ground truth.

use gatediag::core::paper_examples::{lemma2_witness, lemma4_witness};
use gatediag::netlist::{inject_errors, GateId, RandomCircuitSpec};
use gatediag::{
    basic_sat_diagnose, brute_force_diagnose, generate_failing_tests, is_valid_correction,
    is_valid_correction_sat, sc_diagnose, BsatOptions, CovOptions, TestSet,
};

fn random_case(
    seed: u64,
    p: usize,
    m: usize,
) -> Option<(gatediag::netlist::Circuit, Vec<GateId>, TestSet)> {
    let golden = RandomCircuitSpec::new(6, 3, 35).seed(seed).generate();
    let (faulty, sites) = inject_errors(&golden, p, seed);
    let tests = generate_failing_tests(&golden, &faulty, m, seed, 8192);
    if tests.is_empty() {
        None
    } else {
        Some((faulty, sites.iter().map(|s| s.gate).collect(), tests))
    }
}

/// Lemma 1: every solution of the BSAT instance is a valid correction.
#[test]
fn lemma1_bsat_solutions_are_valid() {
    let mut checked = 0;
    for seed in 0..8 {
        let Some((faulty, _, tests)) = random_case(seed, 2, 8) else {
            continue;
        };
        let result = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        assert!(result.complete);
        for sol in &result.solutions {
            assert!(
                is_valid_correction(&faulty, &tests, sol),
                "seed {seed}: invalid BSAT solution {sol:?}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no solutions were exercised");
}

/// Lemma 2 / Theorem 1: on the Fig. 5(a) witness, COV produces a solution
/// that is not a valid correction, hence not produced by BSAT.
#[test]
fn lemma2_and_theorem1_on_witness() {
    let w = lemma2_witness();
    let cov = sc_diagnose(&w.circuit, &w.tests, 2, CovOptions::default());
    let bsat = basic_sat_diagnose(&w.circuit, &w.tests, 2, BsatOptions::default());
    let invalid_covers: Vec<_> = cov
        .solutions
        .iter()
        .filter(|sol| !is_valid_correction(&w.circuit, &w.tests, sol))
        .collect();
    assert!(
        !invalid_covers.is_empty(),
        "Lemma 2 witness lost: all covers valid"
    );
    for sol in &invalid_covers {
        assert!(
            !bsat.solutions.contains(sol),
            "invalid correction {sol:?} appeared in BSAT output"
        );
    }
}

/// Lemma 3: BSAT returns exactly all irredundant valid corrections up to
/// size k — equal to the brute-force ground truth.
#[test]
fn lemma3_bsat_equals_brute_force() {
    for seed in 0..6 {
        let Some((faulty, _, tests)) = random_case(seed, 1, 6) else {
            continue;
        };
        for k in 1..=2 {
            let bsat = basic_sat_diagnose(&faulty, &tests, k, BsatOptions::default());
            let brute = brute_force_diagnose(&faulty, &tests, k);
            assert_eq!(
                bsat.solutions, brute,
                "seed {seed} k {k}: BSAT and brute force disagree"
            );
        }
    }
}

/// Lemma 4 / Theorem 2: on the Fig. 5(b) witness, a valid correction
/// exists that COV cannot produce but BSAT does.
#[test]
fn lemma4_and_theorem2_on_witness() {
    let w = lemma4_witness();
    let a = w.circuit.find("A").unwrap();
    let b = w.circuit.find("B").unwrap();
    let target = vec![a, b];
    assert!(is_valid_correction_sat(&w.circuit, &w.tests, &target));
    let bsat = basic_sat_diagnose(&w.circuit, &w.tests, 2, BsatOptions::default());
    let cov = sc_diagnose(&w.circuit, &w.tests, 2, CovOptions::default());
    assert!(bsat.solutions.contains(&target));
    assert!(!cov.solutions.contains(&target));
}

/// Randomized Theorem 1 direction: every *valid* COV solution appears in
/// BSAT's output (since BSAT is complete over irredundant valid
/// corrections and COV covers are irredundant hitting sets).
#[test]
fn valid_irredundant_covers_are_found_by_bsat() {
    for seed in 0..6 {
        let Some((faulty, _, tests)) = random_case(seed, 1, 6) else {
            continue;
        };
        let cov = sc_diagnose(&faulty, &tests, 2, CovOptions::default());
        let bsat = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        for sol in &cov.solutions {
            if is_valid_correction(&faulty, &tests, sol) {
                // A valid cover may still be redundant as a correction
                // (a strict subset may already be valid); only irredundant
                // ones must appear in BSAT's output.
                let irredundant = sol.iter().all(|g| {
                    let without: Vec<GateId> = sol.iter().copied().filter(|h| h != g).collect();
                    !is_valid_correction(&faulty, &tests, &without)
                });
                if irredundant {
                    assert!(
                        bsat.solutions.contains(sol),
                        "seed {seed}: valid irredundant cover {sol:?} missing from BSAT"
                    );
                }
            }
        }
    }
}

/// The two validity oracles agree on every solution either engine emits.
#[test]
fn oracles_agree_on_engine_outputs() {
    for seed in 0..5 {
        let Some((faulty, _, tests)) = random_case(seed, 2, 6) else {
            continue;
        };
        let cov = sc_diagnose(&faulty, &tests, 2, CovOptions::default());
        let bsat = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        for sol in cov.solutions.iter().chain(&bsat.solutions) {
            assert_eq!(
                is_valid_correction(&faulty, &tests, sol),
                is_valid_correction_sat(&faulty, &tests, sol),
                "oracle disagreement on {sol:?}"
            );
        }
    }
}

/// Stuck-at faults (the production-test model) are diagnosed exactly like
/// design errors: the tied gate is a valid correction and BSAT finds it.
#[test]
fn stuck_at_faults_are_diagnosable() {
    use gatediag::netlist::inject_stuck_at;
    let mut exercised = 0;
    for seed in 0..6u64 {
        let golden = RandomCircuitSpec::new(6, 3, 35).seed(seed).generate();
        let target = golden
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .nth(seed as usize % 5)
            .expect("circuit has functional gates");
        for value in [false, true] {
            let faulty = inject_stuck_at(&golden, target, value);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 8192);
            if tests.is_empty() {
                continue; // fault is redundant under random tests
            }
            let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
            assert!(
                result.solutions.contains(&vec![target]),
                "seed {seed} sa{} at {target}: missing from {:?}",
                value as u8,
                result.solutions
            );
            exercised += 1;
        }
    }
    assert!(exercised > 0, "no stuck-at case was observable");
}

/// SAT-generated distinguishing vectors (miter-based ATPG) feed the
/// diagnosis engines exactly like random tests.
#[test]
fn miter_generated_tests_drive_diagnosis() {
    use gatediag::cnf::distinguishing_vectors;
    use gatediag::Test;
    for seed in 0..4u64 {
        let golden = RandomCircuitSpec::new(6, 3, 35).seed(seed + 50).generate();
        let (faulty, sites) = inject_errors(&golden, 1, seed);
        let vectors = distinguishing_vectors(&golden, &faulty, 6);
        if vectors.is_empty() {
            continue; // functionally redundant error
        }
        let tests: TestSet = vectors
            .into_iter()
            .flat_map(|(vector, diffs)| {
                diffs.into_iter().map(move |(output, expected)| Test {
                    vector: vector.clone(),
                    output,
                    expected,
                })
            })
            .collect();
        let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
        assert!(
            result.solutions.contains(&vec![sites[0].gate]),
            "seed {seed}: miter tests missed the real site"
        );
        for sol in &result.solutions {
            assert!(is_valid_correction(&faulty, &tests, sol));
        }
    }
}

/// The injected error sites always form a valid correction, and with
/// k = p BSAT always returns at least one solution.
#[test]
fn injected_errors_always_diagnosable() {
    for seed in 0..8 {
        for p in 1..=3usize {
            let Some((faulty, errors, tests)) = random_case(seed * 31 + p as u64, p, 8) else {
                continue;
            };
            assert!(
                is_valid_correction(&faulty, &tests, &errors),
                "seed {seed} p {p}: real sites invalid?!"
            );
            let result = basic_sat_diagnose(&faulty, &tests, p, BsatOptions::default());
            assert!(
                !result.solutions.is_empty(),
                "seed {seed} p {p}: no corrections found though {errors:?} is valid"
            );
        }
    }
}
