//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform integer ranges,
//! `gen_bool`, the [`distributions::Standard`] and
//! [`distributions::WeightedIndex`] distributions and
//! [`seq::SliceRandom`]. Algorithms are simple and deterministic; they make
//! no attempt to be stream-compatible with the real crate, which is fine
//! because every consumer in this workspace only relies on seeded
//! determinism, not on specific streams.

/// Core pseudo-random number generation interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same approach as the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Rge: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Sampling distributions: `Standard` and integer-weighted
    //! `WeightedIndex`.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution per type: full integer range,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Copy, Clone, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Error from building a [`WeightedIndex`].
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// All weights are zero.
        AllWeightsZero,
    }

    /// Samples indices proportionally to a list of integer weights.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<u64>,
    }

    impl WeightedIndex {
        /// Builds the distribution from an iterator of weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<u64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0u64;
            for w in weights {
                total += w.into();
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total == 0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty by construction");
            let r = rng.next_u64() % total;
            self.cumulative.partition_point(|&c| c <= r)
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Iterator returned by [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }
    }

    /// Random sampling from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct uniformly random elements (all of them if the
        /// slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher-Yates: the first `amount` positions are a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            let items: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: items.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // LCG so low bits vary too.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..12);
            assert!((3..12).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = Counter(3);
        let d = WeightedIndex::new([0u32, 5, 0, 1]).unwrap();
        for _ in 0..500 {
            let i = d.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<u32>()).unwrap_err(),
            distributions::WeightedError::NoItem
        );
    }

    #[test]
    fn choose_multiple_is_distinct() {
        use seq::SliceRandom;
        let mut rng = Counter(9);
        let items: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "duplicates in {picked:?}");
    }
}
