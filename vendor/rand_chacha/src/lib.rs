//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! The block function is the RFC 7539 ChaCha quarter-round network with 8
//! rounds. Output is NOT stream-compatible with the real `rand_chacha`
//! crate (which consumes the keystream in a slightly different order);
//! every consumer in this workspace only needs seeded determinism and
//! decent statistical quality, both of which genuine ChaCha8 provides.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(&initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        };
        rng.refill();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits, expect ~32000 ones; ChaCha8 is far inside ±5%.
        assert!((30400..=33600).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
