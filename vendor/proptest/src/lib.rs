//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`any`],
//! `prop::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the assertion message and case number only) and a fixed deterministic
//! RNG seeded from the test's module path and name, so failures reproduce
//! exactly across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to drive value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (e.g. the test's path).
    pub fn deterministic(tag: &str) -> TestRng {
        // FNV-1a over the tag gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors with element strategy `S`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if l == r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body ::std::result::Result::Ok(()) })()
                };
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {} of {} failed:\n{}",
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug)]
    struct Pair {
        a: usize,
        b: u8,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (1usize..10, any::<u8>()).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 2usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn mapped_strategies_compose(p in pair()) {
            prop_assert!(p.a >= 1 && p.a < 10, "bad a: {}", p.a);
            prop_assert!(u64::from(p.b) <= 255, "bad b: {}", p.b);
        }

        #[test]
        fn flat_map_depends_on_outer(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u64..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_tag() {
        let mut a = crate::TestRng::deterministic("tag");
        let mut b = crate::TestRng::deterministic("tag");
        let mut c = crate::TestRng::deterministic("other");
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..10).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..10).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(false, "boom {}", x);
            }
        }
        always_fails();
    }
}
