//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation and the `criterion_group!` / `criterion_main!`
//! macros — backed by a plain wall-clock sampler instead of criterion's
//! statistical machinery. Measurement and warm-up times are honoured but
//! capped (`CRITERION_STUB_MAX_SECS`, default 2s per benchmark) so full
//! bench runs stay affordable in CI.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation used to derive per-element rates.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small inputs: one setup per iteration is fine.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm-up: run without recording.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline || warm_iters == 0 {
            timed_pass();
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Measurement.
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || self.iterations == 0 {
            self.elapsed += timed_pass();
            self.iterations += 1;
            if self.iterations >= 10_000_000 {
                break;
            }
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            start.elapsed()
        });
    }

    fn per_iter(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iterations as u32
        }
    }
}

fn cap() -> Duration {
    std::env::var("CRITERION_STUB_MAX_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Duration::from_secs_f64)
        .unwrap_or(Duration::from_secs(2))
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement: Duration,
    warm_up: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement time (capped by the stub).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time.min(cap());
        self
    }

    /// Sets the warm-up time (capped by the stub).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time.min(cap() / 4);
        self
    }

    /// Accepted for compatibility; the stub's sampler ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement: self.measurement,
            warm_up: self.warm_up,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.per_iter();
        let mut line = format!(
            "{}/{}\n                        time:   [{} {} {}]",
            self.name,
            id.id,
            format_duration(per_iter),
            format_duration(per_iter),
            format_duration(per_iter),
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| {
                if per_iter.as_secs_f64() > 0.0 {
                    count as f64 / per_iter.as_secs_f64()
                } else {
                    f64::INFINITY
                }
            };
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(
                        line,
                        "\n                        thrpt:  {:.4e} elem/s",
                        per_sec(n)
                    );
                }
                Throughput::Bytes(n) => {
                    let _ = write!(
                        line,
                        "\n                        thrpt:  {:.4e} B/s",
                        per_sec(n)
                    );
                }
            }
        }
        println!("{line}  ({} iterations)", bencher.iterations);
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.id), per_iter));
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_secs(1).min(cap()),
            warm_up: Duration::from_millis(200),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// All `(name, per-iteration time)` results recorded so far.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        std::env::set_var("CRITERION_STUB_MAX_SECS", "0.02");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(64));
        let mut count = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(count > 0, "routine never ran");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_STUB_MAX_SECS", "0.02");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(
                || vec![0u8; 16],
                |v| v.len() as u64 + n,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.results().len(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(format_duration(Duration::from_micros(5)).contains("µs"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
