//! `gatediag` — gate-level design-error diagnosis.
//!
//! A Rust reproduction of *"On the Relation Between Simulation-based and
//! SAT-based Diagnosis"* (G. Fey, S. Safarpour, A. Veneris, R. Drechsler —
//! DATE 2006), built as a complete stack:
//!
//! * [`netlist`] — circuits, ISCAS89 `.bench` I/O, structural analysis,
//!   generators, gate-change error injection;
//! * [`sim`] — bit-parallel, three-valued and event-driven simulation;
//! * [`sat`] — an incremental CDCL SAT solver with assumptions and model
//!   enumeration;
//! * [`cnf`] — Tseitin encoding, correction multiplexers, cardinality
//!   constraints;
//! * [`core`] — the diagnosis engines: BSIM (path tracing), COV (set
//!   covering), BSAT (SAT-based), advanced variants and hybrids, validity
//!   oracles and quality metrics;
//! * [`campaign`] — fault-model-diverse experiment campaigns: a
//!   circuits × fault models × error counts × seeds × engines matrix
//!   (plus frames × sequence-length axes for the sequential engines) run
//!   in parallel with deterministic JSON/CSV reports.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use gatediag::{basic_sat_diagnose, generate_failing_tests, BsatOptions};
//! use gatediag::netlist::{c17, inject_errors};
//!
//! // 1. A golden design and a faulty implementation.
//! let golden = c17();
//! let (faulty, sites) = inject_errors(&golden, 1, 7);
//!
//! // 2. Failing tests from simulation.
//! let tests = generate_failing_tests(&golden, &faulty, 8, 7, 4096);
//!
//! // 3. Diagnose: all valid single-gate corrections.
//! let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
//! assert!(result.solutions.contains(&vec![sites[0].gate]));
//! ```

#![warn(missing_docs)]

pub use gatediag_campaign as campaign;
pub use gatediag_cnf as cnf;
pub use gatediag_core as core;
pub use gatediag_netlist as netlist;
pub use gatediag_sat as sat;
pub use gatediag_serve as serve;
pub use gatediag_sim as sim;

pub use gatediag_campaign::{
    parse_report, parse_report_bytes, resume_campaign, resume_campaign_checkpointed, run_campaign,
    run_campaign_checkpointed, CampaignReport, CampaignSpec, CheckpointPolicy, RetryOn,
    RetryPolicy, TestGenSpec,
};
#[allow(deprecated)]
pub use gatediag_core::is_valid_correction_sim;
pub use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, brute_force_diagnose, bsim_quality,
    circuit_content_hash, cover_all, distinguish_pair, generate_discriminating_tests,
    generate_failing_sequences, generate_failing_tests, hybrid_seeded_bsat, is_valid_correction,
    is_valid_correction_sat, is_valid_correction_sat_par, is_valid_sequential_correction,
    partitioned_sat_diagnose, path_trace, path_trace_packed, repair_correction, run_diagnose,
    run_engine, run_sequential_engine, sc_diagnose, sequential_sat_diagnose,
    sequential_sim_diagnose, sim_backtrack_diagnose, simulate_sequence, solution_quality,
    two_pass_sat_diagnose, BsatOptions, BsatResult, BsimOptions, BsimResult, Budget, ChaosConfig,
    ChaosEvent, ChaosPolicy, CircuitSession, CovEngine, CovOptions, CovResult, DiagnoseOutcome,
    DiagnoseRequest, DiagnoseStatus, EngineConfig, EngineKind, EngineRun, MarkPolicy, MuxEncoding,
    PairOutcome, SeqBsatOptions, SequenceTest, SequenceTestSet, SimBacktrackOptions, SiteSelection,
    Test, TestGenOutcome, TestGenPolicy, TestSet, Truncation, ValidityBackend, ValidityOracle,
};
pub use gatediag_sim::{PackedSim, Parallelism};
