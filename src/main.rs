//! `gatediag` command-line tool: inject, diagnose and visualise.
//!
//! ```text
//! gatediag diagnose --bench circuit.bench --inject 2 --engine bsat --tests 16
//! gatediag diagnose --demo --engine cov --k 2 --dot out.dot
//! gatediag equiv --bench a.bench --against b.bench
//! ```

use gatediag::netlist::{c17, inject_errors, parse_bench_named, to_dot, Circuit, GateId};
use gatediag::{
    basic_sat_diagnose, basic_sim_diagnose, generate_failing_tests, hybrid_seeded_bsat,
    sc_diagnose, solution_quality, BsatOptions, BsimOptions, CovOptions,
};
use std::process::ExitCode;

const USAGE: &str = "\
gatediag — gate-level design-error diagnosis

USAGE:
  gatediag diagnose [--bench FILE | --demo] [OPTIONS]
  gatediag equiv --bench FILE --against FILE

DIAGNOSE OPTIONS:
  --bench FILE      ISCAS89 .bench netlist to use as the golden design
  --demo            use the built-in c17 benchmark instead
  --inject P        number of gate-change errors to inject (default 1)
  --seed N          RNG seed for injection/tests (default 1)
  --engine E        bsim | cov | bsat | hybrid (default bsat)
  --k K             correction size bound (default = number of errors)
  --tests M         failing tests to collect (default 8)
  --max-solutions N enumeration cap (default 10000)
  --dot FILE        write a Graphviz dump with candidates highlighted
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diagnose") => diagnose(&args[1..]),
        Some("equiv") => equiv(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    bench: Option<String>,
    against: Option<String>,
    demo: bool,
    inject: usize,
    seed: u64,
    engine: String,
    k: Option<usize>,
    tests: usize,
    max_solutions: usize,
    dot: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        bench: None,
        against: None,
        demo: false,
        inject: 1,
        seed: 1,
        engine: "bsat".into(),
        k: None,
        tests: 8,
        max_solutions: 10_000,
        dot: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => o.bench = Some(value(args, &mut i, "--bench")?),
            "--against" => o.against = Some(value(args, &mut i, "--against")?),
            "--demo" => o.demo = true,
            "--inject" => {
                o.inject = value(args, &mut i, "--inject")?
                    .parse()
                    .map_err(|_| "--inject expects an integer".to_string())?
            }
            "--seed" => {
                o.seed = value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--engine" => o.engine = value(args, &mut i, "--engine")?,
            "--k" => {
                o.k = Some(
                    value(args, &mut i, "--k")?
                        .parse()
                        .map_err(|_| "--k expects an integer".to_string())?,
                )
            }
            "--tests" => {
                o.tests = value(args, &mut i, "--tests")?
                    .parse()
                    .map_err(|_| "--tests expects an integer".to_string())?
            }
            "--max-solutions" => {
                o.max_solutions = value(args, &mut i, "--max-solutions")?
                    .parse()
                    .map_err(|_| "--max-solutions expects an integer".to_string())?
            }
            "--dot" => o.dot = Some(value(args, &mut i, "--dot")?),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_bench_named(&text, path).map_err(|e| format!("parse error in {path}: {e}"))
}

fn name_of(circuit: &Circuit, g: GateId) -> String {
    circuit
        .gate_name(g)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{g}"))
}

fn diagnose(args: &[String]) -> ExitCode {
    let o = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let golden = if o.demo || o.bench.is_none() {
        c17()
    } else {
        match load_circuit(o.bench.as_deref().expect("checked above")) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "golden: {} gates, {} inputs, {} outputs",
        golden.num_functional_gates(),
        golden.inputs().len(),
        golden.outputs().len()
    );
    let (faulty, sites) = inject_errors(&golden, o.inject, o.seed);
    for s in &sites {
        println!(
            "injected: {} changed {} -> {}",
            name_of(&faulty, s.gate),
            s.original,
            s.replacement
        );
    }
    let tests = generate_failing_tests(&golden, &faulty, o.tests, o.seed, 1 << 17);
    if tests.is_empty() {
        eprintln!("the injected errors are not observable with random tests");
        return ExitCode::FAILURE;
    }
    println!("collected {} failing tests", tests.len());
    let k = o.k.unwrap_or(o.inject);
    let errors: Vec<GateId> = sites.iter().map(|s| s.gate).collect();

    let candidates: Vec<GateId> = match o.engine.as_str() {
        "bsim" => {
            let result = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
            let gmax = result.gmax();
            println!(
                "BSIM marked {} gates; G_max ({} gates): {:?}",
                result.union.len(),
                gmax.len(),
                gmax.iter()
                    .map(|&g| name_of(&faulty, g))
                    .collect::<Vec<_>>()
            );
            result.union.iter().collect()
        }
        "cov" => {
            let result = sc_diagnose(
                &faulty,
                &tests,
                k,
                CovOptions {
                    max_solutions: o.max_solutions,
                    ..CovOptions::default()
                },
            );
            print_solutions(&faulty, &result.solutions, result.complete, &errors);
            result.solutions.iter().flatten().copied().collect()
        }
        "bsat" | "hybrid" => {
            let options = BsatOptions {
                max_solutions: o.max_solutions,
                ..BsatOptions::default()
            };
            let result = if o.engine == "hybrid" {
                hybrid_seeded_bsat(&faulty, &tests, k, options)
            } else {
                basic_sat_diagnose(&faulty, &tests, k, options)
            };
            print_solutions(&faulty, &result.solutions, result.complete, &errors);
            println!(
                "solver: {} conflicts, {} decisions, {} propagations",
                result.stats.conflicts, result.stats.decisions, result.stats.propagations
            );
            result.solutions.iter().flatten().copied().collect()
        }
        other => {
            eprintln!("unknown engine `{other}` (bsim|cov|bsat|hybrid)");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &o.dot {
        let dot = to_dot(&faulty, &candidates);
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn print_solutions(
    circuit: &Circuit,
    solutions: &[Vec<GateId>],
    complete: bool,
    errors: &[GateId],
) {
    println!(
        "{} solutions{}:",
        solutions.len(),
        if complete { "" } else { " (truncated)" }
    );
    for sol in solutions.iter().take(20) {
        let names: Vec<String> = sol.iter().map(|&g| name_of(circuit, g)).collect();
        let hit = sol.iter().any(|g| errors.contains(g));
        println!(
            "  {:?}{}",
            names,
            if hit {
                "  <-- contains a real error site"
            } else {
                ""
            }
        );
    }
    if solutions.len() > 20 {
        println!("  ... and {} more", solutions.len() - 20);
    }
    if !solutions.is_empty() {
        let q = solution_quality(circuit, solutions, errors);
        println!(
            "quality: min/avg/max distance to nearest real error = {:.2}/{:.2}/{:.2}",
            q.min, q.avg, q.max
        );
    }
}

fn equiv(args: &[String]) -> ExitCode {
    let o = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(a_path), Some(b_path)) = (&o.bench, &o.against) else {
        eprintln!("equiv requires --bench and --against\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let (a, b) = match (load_circuit(a_path), load_circuit(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match gatediag::cnf::check_equivalence(&a, &b) {
        None => {
            println!("EQUIVALENT");
            ExitCode::SUCCESS
        }
        Some((vector, diffs)) => {
            println!("NOT EQUIVALENT");
            println!("distinguishing vector: {vector:?}");
            for (gate, golden_value) in diffs {
                println!(
                    "  output {} should be {} (per {})",
                    name_of(&a, gate),
                    golden_value,
                    a_path
                );
            }
            ExitCode::FAILURE
        }
    }
}
