//! `gatediag` command-line tool: inject, diagnose, run campaigns and
//! visualise.
//!
//! ```text
//! gatediag diagnose --bench circuit.bench --inject 2 --engine bsat --tests 16
//! gatediag diagnose --demo --fault-model stuck-at --engine cov --k 2
//! gatediag campaign --demo
//! gatediag campaign --bench-dir iscas89/ --engines bsim,bsat --seeds 1,2,3
//! gatediag equiv --bench a.bench --against b.bench
//! ```

use gatediag::campaign::{validate_frames, validate_seq_len};
use gatediag::netlist::{
    c17, parse_bench_dir, parse_bench_dir_strict, parse_bench_named, to_dot, write_bench, Circuit,
    FaultKind, FaultModel, GateId,
};
use gatediag::serve::{
    render_diagnose_request, serve_lines, serve_tcp, DiagnoseCall, Service, ServiceConfig,
};
use gatediag::{
    run_campaign_checkpointed, solution_quality, CampaignSpec, ChaosConfig, ChaosPolicy,
    CheckpointPolicy, CircuitSession, DiagnoseRequest, DiagnoseStatus, EngineKind, Parallelism,
    RetryOn,
};
use std::process::ExitCode;

const USAGE: &str = "\
gatediag — gate-level design-error diagnosis

USAGE:
  gatediag diagnose [--bench FILE | --demo] [OPTIONS]
  gatediag campaign [--bench-dir DIR | --demo] [OPTIONS]
  gatediag equiv --bench FILE --against FILE
  gatediag serve [--listen ADDR | --stdio] [SERVE OPTIONS]
  gatediag client --connect ADDR [--bench FILE | --demo] [OPTIONS]

DIAGNOSE OPTIONS:
  --bench FILE      ISCAS89 .bench netlist to use as the golden design
  --demo            use the built-in c17 benchmark instead
  --inject P        number of errors to inject (default 1)
  --fault-model F   gate-change | stuck-at | input-swap | extra-inverter
                    (default gate-change, the paper's model)
  --seed N          RNG seed for injection/tests (default 1)
  --engine E        bsim | cov | bsat | hybrid | auto (default bsat;
                    with --frames, bsim/bsat map to seq-bsim/seq-bsat)
  --k K             correction size bound (default = number of errors)
  --tests M         failing tests to collect (default 8)
  --frames N        diagnose sequentially over N time frames (unrolls the
                    circuit; required semantics for DFF circuits, max 256)
  --seq-len L       failing sequences to collect with --frames (default 8,
                    max 1024)
  --max-solutions N enumeration cap (default 10000)
  --test-gen M      off | sat — after diagnosis, generate SAT-guided
                    discriminating tests that shrink the solution list and
                    merge indistinguishable candidates into ambiguity
                    classes (default off)
  --test-gen-rounds N  max test-generation passes over the unresolved
                    candidates (default 4)
  --dot FILE        write a Graphviz dump with candidates highlighted
  --json            print one machine-readable gatediag-diagnose-v1
                    response line instead of the human report — the exact
                    bytes a `gatediag serve` daemon returns for the same
                    request (timing and counters stay opt-in via --obs /
                    --timing, so the line is byte-comparable)
  --obs             with --json: attach deterministic obs counters and
                    the warm/cold cache verdict under \"meta\"
  --timing          with --json: attach nondeterministic wall_ms under
                    \"meta\"
  --work-budget N   deterministic work budget (engine units; a truncated
                    run is reported as `preempted`, and a daemon with
                    --max-work-budget rejects requests asking above it)

SERVE OPTIONS (diagnosis-as-a-service; JSONL request/response):
  --listen ADDR     accept TCP connections on ADDR (e.g. 127.0.0.1:7171),
                    one thread per connection
  --stdio           serve requests from stdin to stdout instead
  --workers N       shared diagnosis worker pool size (default 4);
                    responses are byte-identical for every N
  --registry-capacity N  circuits kept warm before LRU eviction
                    (default 8)
  --max-work-budget N  admission cap: requests asking for more
                    deterministic work are rejected, requests without a
                    budget inherit the cap and preempt cooperatively
  --default-work-budget N  work budget imposed on requests that carry
                    none (must be <= the cap to matter)

CLIENT OPTIONS:
  --connect ADDR    daemon address; all DIAGNOSE options are accepted and
                    sent as one request (plus --obs / --timing for the
                    quarantined meta block)

CAMPAIGN OPTIONS:
  --bench-dir DIR   run on every .bench file in DIR (falls back to the
                    built-in synthetic set when DIR has no .bench files)
  --demo            use the built-in synthetic circuit set
  --fault-models L  comma list of fault models (default all four)
  --engines L       comma list of engines (default bsim,cov,bsat; also
                    seq-bsim,seq-bsat — sequential engines cross the
                    --frames x --seq-len axes into the matrix)
  --errors L        comma list of injected error counts p (default 1,2)
  --seeds L         comma list of injection seeds (default 1,2)
  --frames L        comma list of time-frame counts for the sequential
                    engines (default 3; appends seq-bsim,seq-bsat to
                    --engines when none is listed)
  --seq-len L       comma list of failing-sequence counts per sequential
                    instance (default 4)
  --tests M         failing tests per instance (default 8)
  --k K             correction bound (default = p per instance)
  --max-solutions N per-instance enumeration cap (default 10000)
  --conflict-budget N  per-instance SAT conflict budget (default 5000000)
  --work-budget N   per-instance deterministic work budget (engine units;
                    truncated instances are recorded as `preempted`)
  --deadline-ms N   per-instance wall-clock deadline (nondeterministic,
                    like --timing; off by default)
  --resume FILE     skip instances already recorded in a previous JSON
                    report; merged output is byte-identical to a fresh
                    full run of the same matrix (timing excluded)
  --checkpoint FILE autosave a valid partial JSON report to FILE while
                    running (atomic tmp+rename; feed it back through
                    --resume after a crash)
  --checkpoint-every N
                    instances between autosaves (default 16)
  --retry-attempts N  max attempts per instance before recording it as
                    `failed` (default 2)
  --retry-backoff-ms N  base backoff between attempts, doubling per
                    retry (nondeterministic timing, like --timing;
                    default 0)
  --retry-on W      panic | panic-or-deadline — which outcomes retry
                    (default panic)
  --chaos-seed N    seed for deterministic fault injection (default 1)
  --chaos-rate R    inject a deterministic fault (panic, work inflation
                    or spurious preemption) into fraction R in [0,1] of
                    instance attempts; off unless given
  --test-gen M      off | sat — run the discriminating-test generation
                    phase on every instance; records gain the gen_tests /
                    solutions_before / solutions_after / ambiguity_classes
                    columns (default off)
  --test-gen-rounds N  max test-generation passes per instance (default 4)
  --strict-bench    fail fast on the first malformed .bench file instead
                    of skipping it with a warning
  --workers N       worker pool size (default auto / GATEDIAG_WORKERS,
                    clamped to 1024)
  --json FILE       JSON report path (default target/campaign/campaign.json)
  --csv FILE        CSV report path (default target/campaign/campaign.csv)
  --timing          include nondeterministic wall-clock columns
  --trace FILE      write a per-instance observability trace (one JSON
                    line per instance: span tree + deterministic
                    counters; span wall times only with --timing)
  --profile         print an aggregated per-phase profile table and the
                    top wall-clock hotspots after the run (implies
                    per-instance trace collection)
  --solver-stats    add the restarts / learnt_clauses / gc_runs solver
                    columns to the JSON and CSV reports (deterministic;
                    off by default so legacy reports stay byte-identical)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diagnose") => diagnose(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("equiv") => equiv(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg_attr(test, derive(Debug))]
struct Options {
    bench: Option<String>,
    against: Option<String>,
    demo: bool,
    inject: usize,
    fault_model: FaultModel,
    seed: u64,
    engine: String,
    k: Option<usize>,
    tests: usize,
    frames: Option<usize>,
    seq_len: usize,
    max_solutions: usize,
    test_gen: bool,
    test_gen_rounds: usize,
    dot: Option<String>,
    json: bool,
    obs: bool,
    timing: bool,
    work_budget: Option<u64>,
    connect: Option<String>,
}

/// Parses a `--test-gen` mode token: `off` or `sat`.
fn parse_test_gen_mode(text: &str) -> Result<bool, String> {
    match text {
        "off" => Ok(false),
        "sat" => Ok(true),
        other => Err(format!("unknown --test-gen mode `{other}` (off|sat)")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        bench: None,
        against: None,
        demo: false,
        inject: 1,
        fault_model: FaultModel::GateChange,
        seed: 1,
        engine: "bsat".into(),
        k: None,
        tests: 8,
        frames: None,
        seq_len: 8,
        max_solutions: 10_000,
        test_gen: false,
        test_gen_rounds: 4,
        dot: None,
        json: false,
        obs: false,
        timing: false,
        work_budget: None,
        connect: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => o.bench = Some(value(args, &mut i, "--bench")?),
            "--against" => o.against = Some(value(args, &mut i, "--against")?),
            "--demo" => o.demo = true,
            "--inject" => {
                o.inject = value(args, &mut i, "--inject")?
                    .parse()
                    .map_err(|_| "--inject expects an integer".to_string())?
            }
            "--fault-model" => {
                let text = value(args, &mut i, "--fault-model")?;
                o.fault_model = FaultModel::parse(&text).ok_or_else(|| {
                    format!(
                        "unknown fault model `{text}` \
                         (gate-change|stuck-at|input-swap|extra-inverter)"
                    )
                })?
            }
            "--seed" => {
                o.seed = value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--engine" => o.engine = value(args, &mut i, "--engine")?,
            "--k" => {
                o.k = Some(
                    value(args, &mut i, "--k")?
                        .parse()
                        .map_err(|_| "--k expects an integer".to_string())?,
                )
            }
            "--tests" => {
                o.tests = value(args, &mut i, "--tests")?
                    .parse()
                    .map_err(|_| "--tests expects an integer".to_string())?
            }
            "--frames" => {
                let n = value(args, &mut i, "--frames")?
                    .parse()
                    .map_err(|_| "--frames expects an integer".to_string())?;
                o.frames = Some(validate_frames(n)?);
            }
            "--seq-len" => {
                let n = value(args, &mut i, "--seq-len")?
                    .parse()
                    .map_err(|_| "--seq-len expects an integer".to_string())?;
                o.seq_len = validate_seq_len(n)?;
            }
            "--max-solutions" => {
                o.max_solutions = value(args, &mut i, "--max-solutions")?
                    .parse()
                    .map_err(|_| "--max-solutions expects an integer".to_string())?
            }
            "--test-gen" => o.test_gen = parse_test_gen_mode(&value(args, &mut i, "--test-gen")?)?,
            "--test-gen-rounds" => {
                o.test_gen_rounds = value(args, &mut i, "--test-gen-rounds")?
                    .parse()
                    .map_err(|_| "--test-gen-rounds expects an integer".to_string())?
            }
            "--dot" => o.dot = Some(value(args, &mut i, "--dot")?),
            "--json" => o.json = true,
            "--obs" => o.obs = true,
            "--timing" => o.timing = true,
            "--work-budget" => {
                o.work_budget = Some(
                    value(args, &mut i, "--work-budget")?
                        .parse()
                        .map_err(|_| "--work-budget expects an integer".to_string())?,
                )
            }
            "--connect" => o.connect = Some(value(args, &mut i, "--connect")?),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_bench_named(&text, path).map_err(|e| format!("parse error in {path}: {e}"))
}

fn name_of(circuit: &Circuit, g: GateId) -> String {
    circuit
        .gate_name(g)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{g}"))
}

/// Maps the CLI options onto the shared, validated [`DiagnoseRequest`]
/// — the same normalisation path the campaign runner and the `serve`
/// daemon use, so the three front doors cannot drift on defaults or
/// clamping.
fn diagnose_request(o: &Options) -> Result<DiagnoseRequest, String> {
    let engine = EngineKind::parse(&o.engine).ok_or_else(|| {
        format!(
            "unknown engine `{}` (bsim|cov|bsat|hybrid|auto|seq-bsim|seq-bsat)",
            o.engine
        )
    })?;
    let sequential = o.frames.is_some() || engine.is_sequential();
    DiagnoseRequest {
        engine,
        fault_model: o.fault_model,
        p: o.inject,
        seed: o.seed,
        tests: o.tests,
        // The CLI's historical one-shot budget: a larger random-vector
        // cap than the campaign default.
        max_test_vectors: 1 << 17,
        k: o.k,
        frames: if sequential {
            Some(o.frames.unwrap_or(3))
        } else {
            None
        },
        seq_len: sequential.then_some(o.seq_len),
        max_solutions: o.max_solutions,
        conflict_budget: None,
        work_budget: o.work_budget,
        deadline_ms: None,
        test_gen_rounds: (o.test_gen && !sequential).then_some(o.test_gen_rounds),
    }
    .validated()
}

/// Builds the daemon-protocol call for this one-shot invocation: the
/// canonical bench rendering keys the daemon's content-addressed
/// registry, so every front door converges on one warm session per
/// netlist.
fn diagnose_call(golden: &Circuit, request: DiagnoseRequest, o: &Options) -> DiagnoseCall {
    DiagnoseCall {
        circuit: match golden.name() {
            "" => None,
            name => Some(name.to_string()),
        },
        bench: write_bench(golden),
        request,
        chaos: None,
        obs: o.obs,
        timing: o.timing,
    }
}

/// Exit code for a protocol response line: failure for the
/// `error`/`failed`/`rejected` statuses (and for unparseable bytes).
fn response_exit(response: &str) -> ExitCode {
    let failed = match gatediag::core::json::parse_json(response) {
        Ok(v) => matches!(
            v.get("status").and_then(|s| s.as_str("status").ok()),
            None | Some("error") | Some("failed") | Some("rejected")
        ),
        Err(_) => true,
    };
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn diagnose(args: &[String]) -> ExitCode {
    let o = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let golden = if o.demo || o.bench.is_none() {
        c17()
    } else {
        match load_circuit(o.bench.as_deref().expect("checked above")) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let request = match diagnose_request(&o) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if o.json {
        // A one-request service instance: literally the daemon's code
        // path, so this line is byte-identical to what `gatediag serve`
        // answers for the same request (timing/meta stay opt-in).
        let service = Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let line = render_diagnose_request(&diagnose_call(&golden, request, &o));
        let response = service.handle_line(&line);
        println!("{response}");
        return response_exit(&response);
    }
    println!(
        "golden: {} gates, {} inputs, {} outputs",
        golden.num_functional_gates(),
        golden.inputs().len(),
        golden.outputs().len()
    );
    let sequential = request.engine.is_sequential();
    if sequential {
        println!(
            "sequential diagnosis: {} flip-flop(s), {} time frame(s)",
            golden.latches().len(),
            request.frames.expect("sequential requests carry frames")
        );
    }
    let session = CircuitSession::new(
        match golden.name() {
            "" => "circuit".to_string(),
            name => name.to_string(),
        },
        golden,
    );
    let (outcome, _warm) =
        match session.diagnose(&request, Parallelism::default(), ChaosPolicy::off()) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
    if let Some(faulty) = &outcome.faulty {
        for f in &outcome.faults {
            let site = name_of(faulty, f.gate);
            match f.kind {
                FaultKind::GateChange {
                    original,
                    replacement,
                } => println!("injected: {site} changed {original} -> {replacement}"),
                FaultKind::StuckAt { value } => {
                    println!("injected: {site} stuck-at-{}", u8::from(value))
                }
                FaultKind::InputSwap {
                    position,
                    old_driver,
                    new_driver,
                } => println!(
                    "injected: {site} fan-in {position} rewired {} -> {}",
                    name_of(faulty, old_driver),
                    name_of(faulty, new_driver)
                ),
                FaultKind::ExtraInverter { position, inverter } => println!(
                    "injected: {site} fan-in {position} inverted (new gate {})",
                    name_of(faulty, inverter)
                ),
            }
        }
    }
    match outcome.status {
        DiagnoseStatus::NotInjectable => {
            eprintln!(
                "cannot inject {} {} fault(s) into this circuit",
                request.p,
                request.fault_model.name()
            );
            return ExitCode::FAILURE;
        }
        DiagnoseStatus::NoFailingTests => {
            if sequential {
                eprintln!(
                    "the injected errors are not observable within {} frame(s) of random stimulus",
                    request.frames.expect("sequential requests carry frames")
                );
            } else {
                eprintln!("the injected errors are not observable with random tests");
            }
            return ExitCode::FAILURE;
        }
        DiagnoseStatus::Ok | DiagnoseStatus::Preempted => {}
    }
    let faulty = outcome.faulty.as_ref().expect("injection succeeded");
    let run = outcome.run.as_ref().expect("the engine ran");
    if sequential {
        println!("collected {} failing sequence(s)", outcome.tests);
    } else {
        println!("collected {} failing tests", outcome.tests);
    }
    let errors: Vec<GateId> = outcome.faults.iter().map(|f| f.gate).collect();
    match run.engine {
        EngineKind::Bsim => {
            let gmax = run.solutions.first().cloned().unwrap_or_default();
            println!(
                "BSIM marked {} gates; G_max ({} gates): {:?}",
                run.candidates.len(),
                gmax.len(),
                gmax.iter().map(|&g| name_of(faulty, g)).collect::<Vec<_>>()
            );
        }
        EngineKind::SeqBsim => {
            println!(
                "sequential BSIM marked {} gates; G_max below",
                run.candidates.len()
            );
            print_solutions(faulty, &run.solutions, run.complete, &errors);
        }
        EngineKind::Cov => {
            print_solutions(faulty, &run.solutions, run.complete, &errors);
        }
        EngineKind::Bsat | EngineKind::Hybrid | EngineKind::SeqBsat => {
            print_solutions(faulty, &run.solutions, run.complete, &errors);
            println!(
                "solver: {} conflicts, {} decisions, {} propagations",
                run.stats.conflicts, run.stats.decisions, run.stats.propagations
            );
        }
        EngineKind::Auto => {
            println!("auto engine: COV covers screened by the auto-dispatching validity oracle");
            print_solutions(faulty, &run.solutions, run.complete, &errors);
        }
    }
    if outcome.status == DiagnoseStatus::Preempted {
        println!(
            "preempted by the {} budget (partial results above)",
            run.truncation.map_or("cooperative", |t| t.name())
        );
    }
    if let Some(tg) = &run.test_gen {
        println!(
            "test-gen: {} discriminating test(s) generated; solutions {} -> {}{}",
            tg.tests.len(),
            tg.solutions_before,
            tg.solutions_after,
            if tg.truncation.is_some() {
                " (truncated)"
            } else {
                ""
            }
        );
        println!(
            "test-gen: {} ambiguity class(es) among the survivors",
            tg.classes.len()
        );
        for class in tg.classes.iter().take(20) {
            let members: Vec<String> = class
                .iter()
                .filter_map(|&s| run.solutions.get(s))
                .map(|sol| {
                    sol.iter()
                        .map(|&g| name_of(faulty, g))
                        .collect::<Vec<_>>()
                        .join("+")
                })
                .collect();
            println!("  {{{}}}", members.join(", "));
        }
        if tg.classes.len() > 20 {
            println!("  ... and {} more", tg.classes.len() - 20);
        }
    } else if o.test_gen && !sequential {
        println!("test-gen: no candidate corrections to discriminate (skipped)");
    }
    if let Some(path) = &o.dot {
        let dot = to_dot(faulty, &run.candidates);
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// `gatediag serve`: the diagnosis daemon (JSONL over TCP or stdio).
fn serve(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut config = ServiceConfig::default();
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    let mut i = 0;
    while i < args.len() {
        let result: Result<(), String> = (|| {
            match args[i].as_str() {
                "--listen" => listen = Some(value(args, &mut i, "--listen")?),
                "--stdio" => stdio = true,
                "--workers" => {
                    config.workers = value(args, &mut i, "--workers")?
                        .parse()
                        .map_err(|_| "--workers expects an integer".to_string())?
                }
                "--registry-capacity" => {
                    config.registry_capacity =
                        value(args, &mut i, "--registry-capacity")?
                            .parse()
                            .map_err(|_| "--registry-capacity expects an integer".to_string())?
                }
                "--max-work-budget" => {
                    config.max_work_budget = Some(
                        value(args, &mut i, "--max-work-budget")?
                            .parse()
                            .map_err(|_| "--max-work-budget expects an integer".to_string())?,
                    )
                }
                "--default-work-budget" => {
                    config.default_work_budget = Some(
                        value(args, &mut i, "--default-work-budget")?
                            .parse()
                            .map_err(|_| "--default-work-budget expects an integer".to_string())?,
                    )
                }
                other => return Err(format!("unknown option `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if stdio == listen.is_some() {
        eprintln!("serve needs exactly one of --listen ADDR or --stdio\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    // Injected chaos panics (a client exercising crash isolation) are
    // caught per request; silence the expected ones like the campaign
    // runner does, keep the default hook for real bugs.
    silence_chaos_panics();
    let service = std::sync::Arc::new(Service::new(config));
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match serve_lines(&service, stdin.lock(), stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let addr = listen.expect("checked above");
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(local) => println!("gatediag serve: listening on {local}"),
        Err(_) => println!("gatediag serve: listening on {addr}"),
    }
    match serve_tcp(service, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `gatediag client`: send one diagnose request (built from the same
/// options as `diagnose`) to a running daemon and print its response.
fn client(args: &[String]) -> ExitCode {
    let o = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(addr) = o.connect.clone() else {
        eprintln!("client needs --connect ADDR\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let golden = if o.demo || o.bench.is_none() {
        c17()
    } else {
        match load_circuit(o.bench.as_deref().expect("checked above")) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let request = match diagnose_request(&o) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let line = render_diagnose_request(&diagnose_call(&golden, request, &o));
    match gatediag::serve::request(&addr, &line) {
        Ok(response) => {
            println!("{response}");
            response_exit(&response)
        }
        Err(e) => {
            eprintln!("client: cannot reach {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Keeps the default panic hook for real bugs but silences the
/// deterministic `chaos:` panics the chaos harness injects on purpose
/// (they are caught and recorded by the crash-isolation layer).
fn silence_chaos_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        if !message.is_some_and(|m| m.starts_with("chaos:")) {
            default_hook(info);
        }
    }));
}

fn print_solutions(
    circuit: &Circuit,
    solutions: &[Vec<GateId>],
    complete: bool,
    errors: &[GateId],
) {
    println!(
        "{} solutions{}:",
        solutions.len(),
        if complete { "" } else { " (truncated)" }
    );
    for sol in solutions.iter().take(20) {
        let names: Vec<String> = sol.iter().map(|&g| name_of(circuit, g)).collect();
        let hit = sol.iter().any(|g| errors.contains(g));
        println!(
            "  {:?}{}",
            names,
            if hit {
                "  <-- contains a real error site"
            } else {
                ""
            }
        );
    }
    if solutions.len() > 20 {
        println!("  ... and {} more", solutions.len() - 20);
    }
    if !solutions.is_empty() {
        let q = solution_quality(circuit, solutions, errors);
        println!(
            "quality: min/avg/max distance to nearest real error = {:.2}/{:.2}/{:.2}",
            q.min, q.avg, q.max
        );
    }
}

/// Parses a comma-separated list through `parse`, with a labelled error.
fn parse_list<T>(
    text: &str,
    what: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        out.push(parse(item).ok_or_else(|| format!("bad {what} `{item}`"))?);
    }
    if out.is_empty() {
        return Err(format!("empty {what} list"));
    }
    Ok(out)
}

fn campaign(args: &[String]) -> ExitCode {
    match campaign_inner(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn campaign_inner(args: &[String]) -> Result<(), String> {
    let mut demo = false;
    let mut bench_dir: Option<String> = None;
    let mut fault_models: Option<Vec<FaultModel>> = None;
    let mut engines: Option<Vec<EngineKind>> = None;
    let mut errors: Option<Vec<usize>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut frames: Option<Vec<usize>> = None;
    let mut seq_lens: Option<Vec<usize>> = None;
    let mut tests: Option<usize> = None;
    let mut k: Option<usize> = None;
    let mut max_solutions: Option<usize> = None;
    let mut conflict_budget: Option<u64> = None;
    let mut work_budget: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut resume: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every: usize = 16;
    let mut retry_attempts: Option<u32> = None;
    let mut retry_backoff_ms: Option<u64> = None;
    let mut retry_on: Option<RetryOn> = None;
    let mut chaos_seed: u64 = 1;
    let mut chaos_rate: Option<f64> = None;
    let mut test_gen = false;
    let mut test_gen_rounds: usize = 4;
    let mut strict_bench = false;
    let mut workers: Option<usize> = None;
    let mut json_path = "target/campaign/campaign.json".to_string();
    let mut csv_path = "target/campaign/campaign.csv".to_string();
    let mut timing = false;
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut solver_stats = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    let int = |args: &[String], i: &mut usize, flag: &str| -> Result<u64, String> {
        value(args, i, flag)?
            .parse()
            .map_err(|_| format!("{flag} expects an integer"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--bench-dir" => bench_dir = Some(value(args, &mut i, "--bench-dir")?),
            "--fault-models" => {
                fault_models = Some(parse_list(
                    &value(args, &mut i, "--fault-models")?,
                    "fault model",
                    FaultModel::parse,
                )?)
            }
            "--engines" => {
                engines = Some(parse_list(
                    &value(args, &mut i, "--engines")?,
                    "engine",
                    EngineKind::parse,
                )?)
            }
            "--errors" => {
                errors = Some(parse_list(
                    &value(args, &mut i, "--errors")?,
                    "error count",
                    |s| s.parse().ok().filter(|&p: &usize| p > 0),
                )?)
            }
            "--seeds" => {
                seeds = Some(parse_list(&value(args, &mut i, "--seeds")?, "seed", |s| {
                    s.parse().ok()
                })?)
            }
            "--frames" => {
                frames = Some(parse_list(
                    &value(args, &mut i, "--frames")?,
                    "frame count",
                    |s| s.parse().ok().and_then(|n| validate_frames(n).ok()),
                )?)
            }
            "--seq-len" => {
                seq_lens = Some(parse_list(
                    &value(args, &mut i, "--seq-len")?,
                    "sequence count",
                    |s| s.parse().ok().and_then(|n| validate_seq_len(n).ok()),
                )?)
            }
            "--tests" => tests = Some(int(args, &mut i, "--tests")? as usize),
            "--k" => k = Some(int(args, &mut i, "--k")? as usize),
            "--max-solutions" => {
                max_solutions = Some(int(args, &mut i, "--max-solutions")? as usize)
            }
            "--conflict-budget" => conflict_budget = Some(int(args, &mut i, "--conflict-budget")?),
            "--work-budget" => work_budget = Some(int(args, &mut i, "--work-budget")?),
            "--deadline-ms" => deadline_ms = Some(int(args, &mut i, "--deadline-ms")?),
            "--resume" => resume = Some(value(args, &mut i, "--resume")?),
            "--checkpoint" => checkpoint = Some(value(args, &mut i, "--checkpoint")?),
            "--checkpoint-every" => {
                checkpoint_every = int(args, &mut i, "--checkpoint-every")?.max(1) as usize
            }
            "--retry-attempts" => {
                retry_attempts = Some(
                    u32::try_from(int(args, &mut i, "--retry-attempts")?)
                        .map_err(|_| "--retry-attempts is too large".to_string())?,
                )
            }
            "--retry-backoff-ms" => {
                retry_backoff_ms = Some(int(args, &mut i, "--retry-backoff-ms")?)
            }
            "--retry-on" => {
                let text = value(args, &mut i, "--retry-on")?;
                retry_on = Some(RetryOn::parse(&text).ok_or_else(|| {
                    format!("unknown --retry-on `{text}` (panic|panic-or-deadline)")
                })?)
            }
            "--chaos-seed" => chaos_seed = int(args, &mut i, "--chaos-seed")?,
            "--chaos-rate" => {
                let text = value(args, &mut i, "--chaos-rate")?;
                let rate: f64 = text
                    .parse()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!("--chaos-rate expects a number in [0, 1], got `{text}`")
                    })?;
                chaos_rate = Some(rate);
            }
            "--test-gen" => test_gen = parse_test_gen_mode(&value(args, &mut i, "--test-gen")?)?,
            "--test-gen-rounds" => {
                test_gen_rounds = int(args, &mut i, "--test-gen-rounds")?.max(1) as usize
            }
            "--strict-bench" => strict_bench = true,
            "--workers" => workers = Some(int(args, &mut i, "--workers")? as usize),
            "--json" => json_path = value(args, &mut i, "--json")?,
            "--csv" => csv_path = value(args, &mut i, "--csv")?,
            "--timing" => timing = true,
            "--trace" => trace_path = Some(value(args, &mut i, "--trace")?),
            "--profile" => profile = true,
            "--solver-stats" => solver_stats = true,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }

    let mut bench_warnings: Vec<String> = Vec::new();
    let circuits = match &bench_dir {
        Some(dir) => {
            let loaded = if strict_bench {
                parse_bench_dir_strict(std::path::Path::new(dir)).map_err(|e| e.to_string())?
            } else {
                let load = parse_bench_dir(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
                for warning in &load.warnings {
                    eprintln!("warning: {warning}");
                }
                bench_warnings = load.warnings.iter().map(ToString::to_string).collect();
                load.circuits
            };
            if loaded.is_empty() {
                eprintln!("no .bench files in {dir}; using the built-in synthetic set");
                CampaignSpec::demo_circuits()
            } else {
                println!(
                    "loaded {} circuit(s) from {dir}: {}",
                    loaded.len(),
                    loaded
                        .iter()
                        .map(|(n, c)| format!("{n} ({} gates)", c.num_functional_gates()))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                loaded
            }
        }
        None if demo => CampaignSpec::demo_circuits(),
        None => return Err("campaign requires --demo or --bench-dir DIR".to_string()),
    };

    let mut spec = CampaignSpec::new(circuits);
    if let Some(models) = fault_models {
        spec.fault_models = models;
    }
    if let Some(engines) = engines {
        spec.engines = engines;
    }
    if let Some(errors) = errors {
        spec.error_counts = errors;
    }
    if let Some(seeds) = seeds {
        spec.seeds = seeds;
    }
    // The sequential axes only bite on sequential engines; asking for
    // them without listing one means "also run the sequential pair".
    let wants_sequential = frames.is_some() || seq_lens.is_some();
    if let Some(frames) = frames {
        spec.frames = frames;
    }
    if let Some(seq_lens) = seq_lens {
        spec.seq_lens = seq_lens;
    }
    if wants_sequential && !spec.engines.iter().any(|e| e.is_sequential()) {
        spec.engines.push(EngineKind::SeqBsim);
        spec.engines.push(EngineKind::SeqBsat);
    }
    if let Some(tests) = tests {
        spec.tests = tests;
    }
    spec.k = k;
    if let Some(cap) = max_solutions {
        spec.max_solutions = cap;
    }
    if let Some(budget) = conflict_budget {
        spec.conflict_budget = Some(budget);
    }
    spec.work_budget = work_budget;
    spec.deadline_ms = deadline_ms;
    if let Some(rate) = chaos_rate {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rate_ppm = (rate * 1_000_000.0).round() as u32;
        spec.chaos = Some(ChaosConfig {
            seed: chaos_seed,
            rate_ppm: rate_ppm.min(1_000_000),
        });
    }
    if let Some(attempts) = retry_attempts {
        spec.retry.max_attempts = attempts;
    }
    if let Some(backoff) = retry_backoff_ms {
        spec.retry.backoff_ms = backoff;
    }
    if let Some(retry_on) = retry_on {
        spec.retry.retry_on = retry_on;
    }
    spec.bench_warnings = bench_warnings;
    if test_gen {
        spec.test_gen = Some(gatediag::TestGenSpec {
            rounds: test_gen_rounds,
        });
    }
    if let Some(workers) = workers {
        spec.parallelism = Parallelism::Fixed(workers);
    }
    spec.collect_obs = trace_path.is_some() || profile;
    spec.solver_stats = solver_stats;

    let instances = spec.instances().len();
    let seq_note = if spec.engines.iter().any(|e| e.is_sequential()) {
        format!(
            " (sequential engines x {} frame count(s) x {} sequence count(s))",
            spec.frames.len(),
            spec.seq_lens.len()
        )
    } else {
        String::new()
    };
    println!(
        "campaign: {} circuit(s) x {} fault model(s) x {} error count(s) x {} seed(s) x \
         {} engine(s){seq_note} = {} instances",
        spec.circuits.len(),
        spec.fault_models.len(),
        spec.error_counts.len(),
        spec.seeds.len(),
        spec.engines.len(),
        instances
    );
    if spec.chaos.is_some() {
        // Injected chaos panics are caught and recorded per instance;
        // silence the expected ones, keep the hook for real bugs.
        silence_chaos_panics();
    }
    let checkpoint_policy = checkpoint.as_ref().map(|path| CheckpointPolicy {
        path: std::path::PathBuf::from(path),
        every: checkpoint_every,
    });
    let report = match &resume {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let previous =
                gatediag::parse_report_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
            // One pass over the records, one over the instances — large
            // resumed matrices must not pay an instances × records scan
            // just for a progress line.
            let recorded: std::collections::HashSet<_> = previous
                .records
                .iter()
                .map(|r| {
                    (
                        r.circuit.as_str(),
                        r.fault_model,
                        r.p,
                        r.seed,
                        r.engine,
                        r.frames,
                        r.seq_len,
                    )
                })
                .collect();
            let reused = spec
                .instances()
                .iter()
                .filter(|inst| {
                    recorded.contains(&(
                        spec.circuits[inst.circuit].0.as_str(),
                        inst.fault_model,
                        inst.p,
                        inst.seed,
                        inst.engine,
                        inst.frames,
                        inst.seq_len,
                    ))
                })
                .count();
            println!(
                "resuming from {path}: {reused}/{instances} instance(s) already recorded, \
                 running {}",
                instances - reused
            );
            gatediag::campaign::resume_campaign_checkpointed(
                &spec,
                &previous,
                checkpoint_policy.as_ref(),
            )?
        }
        None => run_campaign_checkpointed(&spec, checkpoint_policy.as_ref()),
    };
    println!();
    print!("{}", report.summary_table());
    use gatediag::campaign::InstanceStatus;
    let skipped = report
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.status,
                InstanceStatus::NotInjectable | InstanceStatus::NoFailingTests
            )
        })
        .count();
    if skipped > 0 {
        println!(
            "{skipped}/{instances} instance(s) skipped (not injectable or no failing tests); \
             see the per-instance report"
        );
    }
    let preempted = report
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Preempted)
        .count();
    if preempted > 0 {
        println!(
            "{preempted}/{instances} instance(s) preempted by the work/deadline/conflict \
             budget; partial results recorded"
        );
    }
    let failed = report
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Failed)
        .count();
    if failed > 0 {
        println!(
            "{failed}/{instances} instance(s) failed after exhausting retries; \
             see the `failure` column for the panic reason"
        );
    }

    if profile {
        println!();
        print!("{}", report.profile_table());
    }

    let mut outputs = vec![
        (&json_path, report.to_json(timing)),
        (&csv_path, report.to_csv(timing)),
    ];
    if let Some(path) = &trace_path {
        outputs.push((path, report.to_trace_jsonl(timing)));
    }
    for (path, content) in outputs {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn equiv(args: &[String]) -> ExitCode {
    let o = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(a_path), Some(b_path)) = (&o.bench, &o.against) else {
        eprintln!("equiv requires --bench and --against\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let (a, b) = match (load_circuit(a_path), load_circuit(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match gatediag::cnf::check_equivalence(&a, &b) {
        None => {
            println!("EQUIVALENT");
            ExitCode::SUCCESS
        }
        Some((vector, diffs)) => {
            println!("NOT EQUIVALENT");
            println!("distinguishing vector: {vector:?}");
            for (gate, golden_value) in diffs {
                println!(
                    "  output {} should be {} (per {})",
                    name_of(&a, gate),
                    golden_value,
                    a_path
                );
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        parse_options(&args)
    }

    #[test]
    fn frames_and_seq_len_parse_and_default() {
        let o = opts(&["--demo"]).unwrap();
        assert_eq!(o.frames, None);
        assert_eq!(o.seq_len, 8);
        let o = opts(&["--demo", "--frames", "5", "--seq-len", "12"]).unwrap();
        assert_eq!(o.frames, Some(5));
        assert_eq!(o.seq_len, 12);
    }

    #[test]
    fn zero_frames_and_seq_len_are_rejected() {
        let e = opts(&["--demo", "--frames", "0"]).unwrap_err();
        assert!(e.contains("--frames"), "{e}");
        let e = opts(&["--demo", "--seq-len", "0"]).unwrap_err();
        assert!(e.contains("--seq-len"), "{e}");
        assert!(opts(&["--demo", "--frames", "-3"]).is_err());
        assert!(opts(&["--demo", "--frames", "many"]).is_err());
    }

    #[test]
    fn absurd_frames_and_seq_len_are_clamped() {
        let o = opts(&["--demo", "--frames", "999999", "--seq-len", "88888888"]).unwrap();
        assert_eq!(o.frames, Some(gatediag::campaign::MAX_FRAMES));
        assert_eq!(o.seq_len, gatediag::campaign::MAX_SEQ_LEN);
    }

    #[test]
    fn campaign_axis_lists_reject_zero_and_clamp() {
        let parse_frames = |text: &str| {
            parse_list(text, "frame count", |s| {
                s.parse().ok().and_then(|n| validate_frames(n).ok())
            })
        };
        assert_eq!(parse_frames("2,3").unwrap(), vec![2, 3]);
        assert!(parse_frames("2,0").is_err());
        assert_eq!(
            parse_frames("99999").unwrap(),
            vec![gatediag::campaign::MAX_FRAMES]
        );
        let parse_lens = |text: &str| {
            parse_list(text, "sequence count", |s| {
                s.parse().ok().and_then(|n| validate_seq_len(n).ok())
            })
        };
        assert_eq!(parse_lens("4,8").unwrap(), vec![4, 8]);
        assert!(parse_lens("0").is_err());
    }
}
