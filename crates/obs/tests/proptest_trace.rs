//! Property tests for the trace parser, mirroring the campaign report
//! reader's `proptest_reader.rs`: `parse_trace` must never panic,
//! whatever bytes it is fed. A valid trace stream is generated once from
//! a real sink exercise, then mutated — bit flips, insertions,
//! deletions, truncations — and parsed. Valid inputs keep parsing;
//! corrupted inputs must fail *cleanly* with `Err`, because `--trace`
//! output is meant to be consumed back by external tooling.

use gatediag_obs::{parse_trace, parse_trace_line, Sink, TraceLine};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// A small real trace stream with every schema feature present: nested
/// spans, per-span counter deltas, timing fields and nd counters.
fn base_trace_jsonl() -> String {
    let mut lines = String::new();
    for (i, engine) in ["bsim", "bsat"].iter().enumerate() {
        let sink = Arc::new(Sink::new());
        let guard = gatediag_obs::install(sink.clone());
        {
            let _root = gatediag_obs::span("instance");
            {
                let _tests = gatediag_obs::span("tests");
                gatediag_obs::count("sim.sweeps", 3 + i as u64);
            }
            {
                let _engine = gatediag_obs::span("engine");
                gatediag_obs::count("sat.conflicts", 40 * i as u64);
                gatediag_obs::count_nd("pool.threads", 2);
            }
        }
        drop(guard);
        let line = TraceLine {
            instance: format!("c17/gate-change/p1/s{}/{engine}", i + 1),
            trace: sink.take_trace(),
        };
        lines.push_str(&line.to_json(true));
        lines.push('\n');
    }
    lines
}

/// A single byte-level corruption: `(op, position, value)`.
type Mutation = (u8, u64, u8);

fn apply(bytes: &mut Vec<u8>, (op, pos, value): Mutation) {
    if bytes.is_empty() {
        bytes.push(value);
        return;
    }
    let at = (pos % bytes.len() as u64) as usize;
    match op % 4 {
        0 => bytes[at] ^= 1 << (value % 8), // bit flip
        1 => bytes.insert(at, value),       // insert a byte
        2 => {
            bytes.remove(at); // delete a byte
        }
        _ => bytes.truncate(at), // truncate (torn write)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any pile-up of corruptions yields `Ok` or a clean `Err` — never a
    /// panic. (The test body reaching its end IS the assertion.)
    #[test]
    fn mutated_traces_never_panic(mutations in vec((0u8..4, 0u64..1 << 20, 0u8..=255), 1..10)) {
        let mut bytes = base_trace_jsonl().into_bytes();
        for m in mutations {
            apply(&mut bytes, m);
        }
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = parse_trace(text);
        }
    }

    /// Every prefix of a valid stream — the shape a torn write would
    /// have — parses without panicking.
    #[test]
    fn truncated_traces_never_panic(cut in 0u64..1 << 20) {
        let text = base_trace_jsonl();
        let at = (cut % (text.len() as u64 + 1)) as usize;
        if let Some(prefix) = text.get(..at) {
            let _ = parse_trace(prefix);
        }
    }
}

#[test]
fn unmutated_base_stream_round_trips() {
    let text = base_trace_jsonl();
    let lines = parse_trace(&text).expect("own output parses");
    assert_eq!(lines.len(), 2);
    for (line, raw) in lines.iter().zip(text.lines()) {
        assert_eq!(line.to_json(true), raw, "re-serialisation drifted");
        assert_eq!(line.trace.spans[0].name, "instance");
        assert!(line.trace.root_wall_ns() > 0, "timing channel lost");
    }
    // The deterministic channel alone round-trips to an equal line.
    let stripped = lines[0].to_json(false);
    assert_eq!(&parse_trace_line(&stripped).unwrap(), &lines[0]);
}
