//! Trace data model and its JSONL serialisation.
//!
//! One [`TraceLine`] per observed instance, one JSON object per line:
//!
//! ```json
//! {"instance": "c17/gate-change/p1/s1/bsat",
//!  "counters": {"sat.conflicts": 12},
//!  "spans": [{"name": "instance", "depth": 0, "counters": {"sat.conflicts": 12}}]}
//! ```
//!
//! The deterministic channel (counters, span names/depths/deltas) is
//! byte-identical across worker counts; the timing channel (`wall_ns`
//! per span, the top-level `nd_counters` object) is emitted only when
//! the caller opts in, mirroring the campaign's `wall_ms` quarantine.
//! Equality on every type here ignores the timing channel, so two
//! traces of the same deterministic work compare equal.
//!
//! The parser is hand-rolled recursive descent in the style of the
//! campaign report reader: depth-capped, allocation-light, and it must
//! return a clean [`TraceParseError`] — never panic — on arbitrary
//! corrupted input (property-tested in `tests/proptest_trace.rs`).

use std::fmt;

/// One closed span: name, nesting depth and the inclusive deltas of the
/// deterministic counters between enter and exit.
#[derive(Clone, Debug, Default)]
pub struct SpanRecord {
    /// Span name (the phase taxonomy: `instance`, `inject`, `tests`,
    /// `engine`, `encode`, `solve`, `cover`, `screen`, `trace`,
    /// `testgen`).
    pub name: String,
    /// Nesting depth: 0 for the root, parent depth + 1 below it. Spans
    /// are stored in enter (pre-)order, so depths never jump by more
    /// than +1 from one record to the next.
    pub depth: usize,
    /// Nonzero deterministic-counter deltas, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock duration — **timing channel**: ignored by `==`,
    /// serialised only on request.
    pub wall_ns: u64,
}

impl PartialEq for SpanRecord {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.depth == other.depth && self.counters == other.counters
    }
}

impl Eq for SpanRecord {}

/// Everything one [`crate::Sink`] collected: the span tree in pre-order
/// plus the final counter totals of both channels.
#[derive(Clone, Debug, Default)]
pub struct ObsTrace {
    /// Spans in enter order (see [`SpanRecord::depth`]).
    pub spans: Vec<SpanRecord>,
    /// Deterministic counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Timing-channel counter totals, sorted by name — ignored by `==`,
    /// serialised only on request.
    pub nd_counters: Vec<(String, u64)>,
}

impl PartialEq for ObsTrace {
    fn eq(&self, other: &Self) -> bool {
        self.spans == other.spans && self.counters == other.counters
    }
}

impl Eq for ObsTrace {}

impl ObsTrace {
    /// The root span's wall-clock duration in nanoseconds (0 without a
    /// root span) — the single wall-clock source for callers that
    /// publish a quarantined timing column.
    pub fn root_wall_ns(&self) -> u64 {
        self.spans.first().map_or(0, |s| s.wall_ns)
    }

    /// Final total of one deterministic counter; 0 when it was never
    /// charged (counters with zero totals are not stored).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// One line of a trace stream: an instance identity plus its trace.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TraceLine {
    /// Compact instance identity, e.g. `c17/gate-change/p1/s1/bsat` (a
    /// sequential instance appends `/f3/l4`).
    pub instance: String,
    /// The instance's collected trace.
    pub trace: ObsTrace,
}

fn escape_json_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn counters_into(out: &mut String, counters: &[(String, u64)]) {
    out.push('{');
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_json_into(out, name);
        out.push_str("\": ");
        out.push_str(&value.to_string());
    }
    out.push('}');
}

impl TraceLine {
    /// Serialises the line as a single JSON object (no trailing
    /// newline). With `include_timing` the quarantined channel joins:
    /// per-span `wall_ns` fields and the top-level `nd_counters`
    /// object. Output re-parses to an equal line ([`parse_trace_line`])
    /// and re-serialises byte-identically.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"instance\": \"");
        escape_json_into(&mut out, &self.instance);
        out.push_str("\", \"counters\": ");
        counters_into(&mut out, &self.trace.counters);
        out.push_str(", \"spans\": [");
        for (i, span) in self.trace.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": \"");
            escape_json_into(&mut out, &span.name);
            out.push_str("\", \"depth\": ");
            out.push_str(&span.depth.to_string());
            out.push_str(", \"counters\": ");
            counters_into(&mut out, &span.counters);
            if include_timing {
                out.push_str(", \"wall_ns\": ");
                out.push_str(&span.wall_ns.to_string());
            }
            out.push('}');
        }
        out.push(']');
        if include_timing {
            out.push_str(", \"nd_counters\": ");
            counters_into(&mut out, &self.trace.nd_counters);
        }
        out.push('}');
        out
    }
}

/// A clean parse failure: where and why the input is not a trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    message: String,
}

impl TraceParseError {
    fn new(message: impl Into<String>) -> Self {
        TraceParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Maximum object/array nesting the parser will follow. A trace line is
/// three levels deep; anything deeper is garbage, and the cap keeps the
/// recursive parser safe from stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 16;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> TraceParseError {
        TraceParseError::new(format!("at byte {}: {}", self.at, message.into()))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), TraceParseError> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", char::from(byte))))
        }
    }

    fn parse_string(&mut self) -> Result<String, TraceParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through whole; the
                    // input is a &str, so char boundaries are valid.
                    let rest = &self.bytes[self.at..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, TraceParseError> {
        self.skip_ws();
        let start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == start {
            return Err(self.error("expected an unsigned integer"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.error("bad number"))?;
        digits
            .parse()
            .map_err(|_| self.error("integer out of range"))
    }

    /// Parses a `{"name": u64, ...}` counters object.
    fn parse_counters(&mut self) -> Result<Vec<(String, u64)>, TraceParseError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let name = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_u64()?;
            out.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(out);
                }
                _ => return Err(self.error("expected `,` or `}` in counters")),
            }
        }
    }

    /// Skips any JSON value (for unknown keys — forward compatibility).
    fn skip_value(&mut self, depth: usize) -> Result<(), TraceParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.at += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value(depth + 1)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(());
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.at += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(());
                }
                loop {
                    self.skip_value(depth + 1)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(());
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b't') => self.expect_word("true"),
            Some(b'f') => self.expect_word("false"),
            Some(b'n') => self.expect_word("null"),
            Some(b'-' | b'0'..=b'9') => {
                self.at += 1;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                ) {
                    self.at += 1;
                }
                Ok(())
            }
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), TraceParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_span(&mut self) -> Result<SpanRecord, TraceParseError> {
        self.expect(b'{')?;
        let mut span = SpanRecord::default();
        let mut seen_name = false;
        let mut seen_depth = false;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            return Err(self.error("span object is empty"));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => {
                    self.skip_ws();
                    span.name = self.parse_string()?;
                    seen_name = true;
                }
                "depth" => {
                    let depth = self.parse_u64()?;
                    span.depth = usize::try_from(depth)
                        .map_err(|_| self.error("span depth out of range"))?;
                    seen_depth = true;
                }
                "counters" => {
                    self.skip_ws();
                    span.counters = self.parse_counters()?;
                }
                "wall_ns" => span.wall_ns = self.parse_u64()?,
                _ => self.skip_value(0)?,
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    break;
                }
                _ => return Err(self.error("expected `,` or `}` in span")),
            }
        }
        if !seen_name || !seen_depth {
            return Err(self.error("span is missing `name` or `depth`"));
        }
        Ok(span)
    }

    fn parse_line(&mut self) -> Result<TraceLine, TraceParseError> {
        self.expect(b'{')?;
        let mut line = TraceLine::default();
        let mut seen_instance = false;
        let mut seen_spans = false;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            return Err(self.error("trace line is empty"));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "instance" => {
                    self.skip_ws();
                    line.instance = self.parse_string()?;
                    seen_instance = true;
                }
                "counters" => {
                    self.skip_ws();
                    line.trace.counters = self.parse_counters()?;
                }
                "nd_counters" => {
                    self.skip_ws();
                    line.trace.nd_counters = self.parse_counters()?;
                }
                "spans" => {
                    self.expect(b'[')?;
                    seen_spans = true;
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.at += 1;
                    } else {
                        loop {
                            self.skip_ws();
                            line.trace.spans.push(self.parse_span()?);
                            self.skip_ws();
                            match self.peek() {
                                Some(b',') => self.at += 1,
                                Some(b']') => {
                                    self.at += 1;
                                    break;
                                }
                                _ => return Err(self.error("expected `,` or `]` in spans")),
                            }
                        }
                    }
                }
                _ => self.skip_value(0)?,
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    break;
                }
                _ => return Err(self.error("expected `,` or `}` in trace line")),
            }
        }
        self.skip_ws();
        if self.at != self.bytes.len() {
            return Err(self.error("trailing garbage after trace line"));
        }
        if !seen_instance || !seen_spans {
            return Err(self.error("trace line is missing `instance` or `spans`"));
        }
        // Structural invariant of pre-order emission: the first span is
        // the root and depth never jumps by more than +1.
        let mut prev_depth = 0usize;
        for (i, span) in line.trace.spans.iter().enumerate() {
            if i == 0 && span.depth != 0 {
                return Err(TraceParseError::new("first span is not a root (depth 0)"));
            }
            if i > 0 && span.depth > prev_depth + 1 {
                return Err(TraceParseError::new(format!(
                    "span `{}` jumps from depth {} to {}",
                    span.name, prev_depth, span.depth
                )));
            }
            prev_depth = span.depth;
        }
        Ok(line)
    }
}

/// Parses one JSONL trace line. Corrupted input yields a clean error,
/// never a panic.
pub fn parse_trace_line(text: &str) -> Result<TraceLine, TraceParseError> {
    Parser::new(text).parse_line()
}

/// Parses a whole trace stream (one JSON object per non-empty line),
/// labelling errors with their 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceLine>, TraceParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            parse_trace_line(line)
                .map_err(|e| TraceParseError::new(format!("line {}: {e}", i + 1)))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLine {
        TraceLine {
            instance: "c17/gate-change/p1/s1/bsat".to_string(),
            trace: ObsTrace {
                spans: vec![
                    SpanRecord {
                        name: "instance".to_string(),
                        depth: 0,
                        counters: vec![("sat.conflicts".to_string(), 12)],
                        wall_ns: 1234,
                    },
                    SpanRecord {
                        name: "solve".to_string(),
                        depth: 1,
                        counters: vec![("sat.conflicts".to_string(), 12)],
                        wall_ns: 1000,
                    },
                ],
                counters: vec![("sat.conflicts".to_string(), 12)],
                nd_counters: vec![("pool.threads".to_string(), 2)],
            },
        }
    }

    #[test]
    fn round_trips_bytes_in_both_timing_modes() {
        for timing in [false, true] {
            let json = sample().to_json(timing);
            let parsed = parse_trace_line(&json).expect("own output parses");
            assert_eq!(parsed, sample());
            assert_eq!(parsed.to_json(timing), json, "timing={timing}");
        }
    }

    #[test]
    fn timing_channel_is_absent_by_default() {
        let json = sample().to_json(false);
        assert!(!json.contains("wall_ns"));
        assert!(!json.contains("nd_counters"));
        let parsed = parse_trace_line(&json).unwrap();
        assert_eq!(parsed.trace.spans[0].wall_ns, 0);
        assert!(parsed.trace.nd_counters.is_empty());
        // Equality still holds: the timing channel is not compared.
        assert_eq!(parsed, sample());
    }

    #[test]
    fn streams_parse_line_by_line() {
        let text = format!("{}\n{}\n\n", sample().to_json(true), sample().to_json(true));
        let lines = parse_trace(&text).unwrap();
        assert_eq!(lines.len(), 2);
        let bad = format!("{}\nnot json\n", sample().to_json(false));
        let err = parse_trace(&bad).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn instance_names_escape_and_unescape() {
        let mut line = sample();
        line.instance = "we\"ird\\name\n".to_string();
        let json = line.to_json(false);
        assert_eq!(parse_trace_line(&json).unwrap().instance, line.instance);
    }

    #[test]
    fn broken_nesting_is_rejected() {
        let json = r#"{"instance": "x", "counters": {}, "spans": [{"name": "a", "depth": 1, "counters": {}}]}"#;
        assert!(parse_trace_line(json).is_err(), "non-root first span");
        let json = r#"{"instance": "x", "counters": {}, "spans": [{"name": "a", "depth": 0, "counters": {}}, {"name": "b", "depth": 2, "counters": {}}]}"#;
        assert!(parse_trace_line(json).is_err(), "depth jump");
    }

    #[test]
    fn garbage_is_a_clean_error() {
        for garbage in [
            "",
            "{",
            "nonsense",
            r#"{"instance": 3, "spans": []}"#,
            r#"{"spans": []}"#,
            r#"{"instance": "x"}"#,
            r#"{"instance": "x", "spans": [{"depth": 0, "counters": {}}]}"#,
            r#"{"instance": "x", "spans": []} trailing"#,
            &("[".repeat(64)),
        ] {
            assert!(parse_trace_line(garbage).is_err(), "{garbage:?}");
        }
    }

    #[test]
    fn unknown_keys_are_skipped_for_forward_compat() {
        let json = r#"{"instance": "x", "future": {"a": [1, true, null, -2.5e3]}, "counters": {}, "spans": []}"#;
        let line = parse_trace_line(json).unwrap();
        assert_eq!(line.instance, "x");
    }
}
