//! Deterministic tracing and metrics for the diagnosis stack.
//!
//! Every layer of gatediag — packed simulation, CNF encoding, the CDCL
//! solver, the diagnosis engines, the worker pool and the campaign
//! runner — reports what it did through this crate, under a contract
//! with **two strictly separated channels**:
//!
//! * **Deterministic counters** ([`count`]) — pure functions of the work
//!   performed (sweeps, gate evaluations, clauses, conflicts, budget
//!   charges, …). For any flow whose *results* are worker-count
//!   invariant, these counters are worker-count invariant too, so they
//!   may appear in byte-compared reports and traces.
//! * **The timing channel** — wall-clock span durations and
//!   schedule-dependent counters ([`count_nd`], e.g. threads actually
//!   spawned by a pool fan-out). Quarantined exactly like the campaign's
//!   `wall_ms` column: opt-in, never part of byte-compared output.
//!
//! # Sink model
//!
//! Observation is *pull-free*: a caller that wants data creates a
//! [`Sink`] and [`install`]s it on the current thread; every
//! instrumented layer then charges counters and opens spans against the
//! installed sink through a thread-local. With no sink installed every
//! entry point is a no-op behind a single thread-local flag check, so
//! hot loops pay nothing in the (default) unobserved configuration.
//!
//! Spans ([`span`]) are recorded **only on the thread that created the
//! sink** — worker threads inside a fan-out contribute counters (sums
//! commute, so the totals stay deterministic) but never interleave span
//! records, which keeps every span tree strictly nested without any
//! cross-thread ordering. The worker pool in `gatediag_sim` forwards the
//! installing thread's sink into its workers for exactly this reason.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(gatediag_obs::Sink::new());
//! let guard = gatediag_obs::install(sink.clone());
//! {
//!     let _phase = gatediag_obs::span("solve");
//!     gatediag_obs::count("sat.conflicts", 41);
//!     gatediag_obs::count("sat.conflicts", 1);
//! }
//! drop(guard);
//! let trace = sink.take_trace();
//! assert_eq!(trace.counters, vec![("sat.conflicts".to_string(), 42)]);
//! assert_eq!(trace.spans[0].name, "solve");
//! ```

mod trace;

pub use trace::{parse_trace, parse_trace_line, ObsTrace, SpanRecord, TraceLine, TraceParseError};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Collects counters and spans for one observed region (one campaign
/// instance, one benchmark run). Create it on the thread that will own
/// the span tree, [`install`] it there, and share clones of the `Arc`
/// with worker threads (the pool does this automatically).
pub struct Sink {
    owner: ThreadId,
    shared: Mutex<Shared>,
}

#[derive(Default)]
struct Shared {
    counters: BTreeMap<&'static str, u64>,
    nd_counters: BTreeMap<&'static str, u64>,
    /// Completed and in-flight spans in *enter* (pre-)order; an open
    /// span holds a placeholder here until its guard drops.
    spans: Vec<SpanRecord>,
    stack: Vec<OpenSpan>,
}

struct OpenSpan {
    index: usize,
    start: Instant,
    /// Counter totals at enter; the span's counters are the deltas.
    snapshot: BTreeMap<&'static str, u64>,
}

impl Sink {
    /// A fresh sink owned by the current thread (the only thread whose
    /// [`span`] calls it will record).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Sink {
            owner: std::thread::current().id(),
            shared: Mutex::new(Shared::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Shared> {
        // A panic can never happen while the lock is held (no user code
        // runs under it), but a poisoned lock must not turn the
        // observability layer into a second crash.
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drains everything recorded so far into an [`ObsTrace`]. Open
    /// spans (possible only after a panic unwound past their guards)
    /// are closed as-recorded with whatever deltas they had at enter.
    pub fn take_trace(&self) -> ObsTrace {
        let mut shared = self.lock();
        shared.stack.clear();
        ObsTrace {
            spans: std::mem::take(&mut shared.spans),
            counters: std::mem::take(&mut shared.counters)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            nd_counters: std::mem::take(&mut shared.nd_counters)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Sink>>> = const { RefCell::new(None) };
    /// Mirror of `CURRENT.is_some()`: the no-op fast path is one
    /// thread-local `Cell` read and a branch.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Makes `sink` the current thread's sink until the guard drops (the
/// previous sink, if any, is restored — installs nest).
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install(sink: Arc<Sink>) -> InstallGuard {
    let prev = CURRENT.with(|c| c.replace(Some(sink)));
    ACTIVE.with(|a| a.set(true));
    InstallGuard { prev }
}

/// Uninstalls the sink installed by [`install`] when dropped.
pub struct InstallGuard {
    prev: Option<Arc<Sink>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| a.set(prev.is_some()));
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The current thread's sink, if one is installed. The worker pool uses
/// this to forward the caller's sink into its worker threads.
pub fn current() -> Option<Arc<Sink>> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Charges `delta` to the **deterministic** counter `name`. No-op
/// without an installed sink, and a zero delta never creates an entry
/// (so "charged nothing" and "never charged" serialise identically).
/// Callers must only use this for quantities that are pure functions of
/// the work performed — anything schedule-dependent belongs in
/// [`count_nd`].
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if delta == 0 || !ACTIVE.with(Cell::get) {
        return;
    }
    if let Some(sink) = current() {
        *sink.lock().counters.entry(name).or_insert(0) += delta;
    }
}

/// Charges `delta` to the **timing-channel** counter `name`
/// (schedule-dependent quantities: threads spawned, per-worker
/// occupancy). Quarantined from byte-compared output like `wall_ms`.
#[inline]
pub fn count_nd(name: &'static str, delta: u64) {
    if delta == 0 || !ACTIVE.with(Cell::get) {
        return;
    }
    if let Some(sink) = current() {
        *sink.lock().nd_counters.entry(name).or_insert(0) += delta;
    }
}

/// Opens a named span; the returned guard closes it on drop. Records
/// only when the installed sink was created by *this* thread — from any
/// other thread this is a no-op (counters still merge), which keeps the
/// span tree single-threaded and therefore strictly nested.
///
/// A span's counters are the deltas of the deterministic counter map
/// between enter and exit (inclusive of child spans); its `wall_ns`
/// lives in the timing channel.
#[must_use = "dropping the guard immediately closes the span"]
pub fn span(name: &'static str) -> SpanGuard {
    if !ACTIVE.with(Cell::get) {
        return SpanGuard { sink: None };
    }
    let Some(sink) = current() else {
        return SpanGuard { sink: None };
    };
    if sink.owner != std::thread::current().id() {
        return SpanGuard { sink: None };
    }
    {
        let mut shared = sink.lock();
        let depth = shared.stack.len();
        let index = shared.spans.len();
        shared.spans.push(SpanRecord {
            name: name.to_string(),
            depth,
            counters: Vec::new(),
            wall_ns: 0,
        });
        let snapshot = shared.counters.clone();
        shared.stack.push(OpenSpan {
            index,
            start: Instant::now(),
            snapshot,
        });
    }
    SpanGuard { sink: Some(sink) }
}

/// Closes its span on drop (see [`span`]).
pub struct SpanGuard {
    sink: Option<Arc<Sink>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(sink) = self.sink.take() else {
            return;
        };
        let mut shared = sink.lock();
        // Guards drop in strict LIFO order on the owner thread (also
        // during unwinding), so the top of the stack is this span.
        let Some(open) = shared.stack.pop() else {
            return;
        };
        let wall_ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let deltas: Vec<(String, u64)> = shared
            .counters
            .iter()
            .filter_map(|(&name, &total)| {
                let before = open.snapshot.get(name).copied().unwrap_or(0);
                (total > before).then(|| (name.to_string(), total - before))
            })
            .collect();
        let record = &mut shared.spans[open.index];
        record.counters = deltas;
        record.wall_ns = wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_means_no_ops() {
        // Nothing installed: every entry point is callable and inert.
        count("x", 1);
        count_nd("y", 1);
        let _span = span("z");
        assert!(current().is_none());
    }

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let sink = Arc::new(Sink::new());
        let guard = install(sink.clone());
        count("b.two", 2);
        count("a.one", 1);
        count("b.two", 3);
        drop(guard);
        let trace = sink.take_trace();
        assert_eq!(
            trace.counters,
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 5)]
        );
        assert!(current().is_none(), "guard uninstalled the sink");
    }

    #[test]
    fn spans_nest_in_preorder_with_inclusive_deltas() {
        let sink = Arc::new(Sink::new());
        let _guard = install(sink.clone());
        {
            let _outer = span("outer");
            count("n", 1);
            {
                let _inner = span("inner");
                count("n", 2);
            }
            count("m", 7);
        }
        let trace = sink.take_trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(
            (trace.spans[0].name.as_str(), trace.spans[0].depth),
            ("outer", 0)
        );
        assert_eq!(
            (trace.spans[1].name.as_str(), trace.spans[1].depth),
            ("inner", 1)
        );
        // Outer deltas include the child's.
        assert_eq!(
            trace.spans[0].counters,
            vec![("m".to_string(), 7), ("n".to_string(), 3)]
        );
        assert_eq!(trace.spans[1].counters, vec![("n".to_string(), 2)]);
    }

    #[test]
    fn spans_record_only_on_the_owner_thread_but_counters_merge() {
        let sink = Arc::new(Sink::new());
        let _guard = install(sink.clone());
        let _root = span("root");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    let _guard = install(sink);
                    let _ignored = span("worker-span");
                    count("w", 1);
                });
            }
        });
        drop(_root);
        let trace = sink.take_trace();
        assert_eq!(trace.counters, vec![("w".to_string(), 4)]);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["root"], "worker spans must not interleave");
        assert_eq!(trace.spans[0].counters, vec![("w".to_string(), 4)]);
    }

    #[test]
    fn installs_nest_and_restore() {
        let a = Arc::new(Sink::new());
        let b = Arc::new(Sink::new());
        let ga = install(a.clone());
        {
            let _gb = install(b.clone());
            count("inner", 1);
        }
        count("outer", 1);
        drop(ga);
        assert_eq!(b.take_trace().counters, vec![("inner".to_string(), 1)]);
        assert_eq!(a.take_trace().counters, vec![("outer".to_string(), 1)]);
    }

    #[test]
    fn nd_counters_stay_in_the_timing_channel() {
        let sink = Arc::new(Sink::new());
        let _guard = install(sink.clone());
        count_nd("pool.threads", 3);
        count("pool.items", 9);
        let trace = sink.take_trace();
        assert_eq!(trace.counters, vec![("pool.items".to_string(), 9)]);
        assert_eq!(trace.nd_counters, vec![("pool.threads".to_string(), 3)]);
        // Equality ignores the timing channel entirely.
        let mut other = trace.clone();
        other.nd_counters.clear();
        assert_eq!(trace, other);
    }
}
