//! Arena-based clause storage.
//!
//! Clauses live in one contiguous `u32` buffer and are referenced by
//! [`CRef`] offsets, MiniSat-style. A clause is a header word (size, learnt
//! flag, delete mark), an optional activity word for learnt clauses, and the
//! literal payload. Deleted clauses leave garbage that
//! [`ClauseDb::needs_gc`] lets the solver reclaim by rebuilding.

use crate::lit::Lit;

/// Reference to a clause inside a [`ClauseDb`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CRef(u32);

impl CRef {
    /// Sentinel for "no clause" (used for decision/unassigned reasons).
    pub const UNDEF: CRef = CRef(u32::MAX);

    /// `true` unless this is [`CRef::UNDEF`].
    #[inline]
    pub fn is_defined(self) -> bool {
        self != CRef::UNDEF
    }
}

const LEARNT_BIT: u32 = 1;
const DELETED_BIT: u32 = 2;
const SIZE_SHIFT: u32 = 2;

/// The clause arena.
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    buf: Vec<u32>,
    wasted: usize,
}

impl ClauseDb {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ClauseDb::default()
    }

    /// Allocates a clause; `learnt` clauses carry an activity slot.
    ///
    /// # Panics
    ///
    /// Panics if `lits.len() < 2` — unit and empty clauses are handled on
    /// the trail, never stored.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        assert!(lits.len() >= 2, "stored clauses have at least two literals");
        let at = self.buf.len() as u32;
        let header = ((lits.len() as u32) << SIZE_SHIFT) | if learnt { LEARNT_BIT } else { 0 };
        self.buf.push(header);
        if learnt {
            self.buf.push(0f32.to_bits());
        }
        self.buf.extend(lits.iter().map(|l| l.code() as u32));
        CRef(at)
    }

    #[inline]
    fn header(&self, c: CRef) -> u32 {
        self.buf[c.0 as usize]
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn size(&self, c: CRef) -> usize {
        (self.header(c) >> SIZE_SHIFT) as usize
    }

    /// `true` for learnt clauses.
    #[inline]
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.header(c) & LEARNT_BIT != 0
    }

    /// `true` if the clause was marked deleted.
    #[inline]
    pub fn is_deleted(&self, c: CRef) -> bool {
        self.header(c) & DELETED_BIT != 0
    }

    /// Marks the clause deleted (payload stays until garbage collection).
    pub fn delete(&mut self, c: CRef) {
        if !self.is_deleted(c) {
            self.buf[c.0 as usize] |= DELETED_BIT;
            self.wasted += self.total_words(c);
        }
    }

    fn payload_start(&self, c: CRef) -> usize {
        c.0 as usize + 1 + self.is_learnt(c) as usize
    }

    fn total_words(&self, c: CRef) -> usize {
        1 + self.is_learnt(c) as usize + self.size(c)
    }

    /// The clause's literals.
    #[inline]
    pub fn lits(&self, c: CRef) -> &[Lit] {
        let start = self.payload_start(c);
        let size = self.size(c);
        // SAFETY: `Lit` is `#[repr(transparent)]` over `u32` and every code
        // stored in the payload came from `Lit::code`.
        unsafe { std::mem::transmute::<&[u32], &[Lit]>(&self.buf[start..start + size]) }
    }

    /// Mutable access to the clause's literals (for watch reordering).
    #[inline]
    pub fn lits_mut(&mut self, c: CRef) -> &mut [Lit] {
        let start = self.payload_start(c);
        let size = self.size(c);
        // SAFETY: as in `lits`; mutation writes only valid literal codes.
        unsafe { std::mem::transmute::<&mut [u32], &mut [Lit]>(&mut self.buf[start..start + size]) }
    }

    /// Learnt-clause activity.
    pub fn activity(&self, c: CRef) -> f32 {
        debug_assert!(self.is_learnt(c));
        f32::from_bits(self.buf[c.0 as usize + 1])
    }

    /// Sets learnt-clause activity.
    pub fn set_activity(&mut self, c: CRef, activity: f32) {
        debug_assert!(self.is_learnt(c));
        self.buf[c.0 as usize + 1] = activity.to_bits();
    }

    /// `true` when at least 25% of the arena is garbage.
    pub fn needs_gc(&self) -> bool {
        self.wasted * 4 > self.buf.len() && self.buf.len() > 1024
    }

    /// Words currently wasted by deleted clauses.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total arena size in words.
    #[allow(dead_code)]
    pub fn len_words(&self) -> usize {
        self.buf.len()
    }

    /// Copies a live clause into `target`, returning its new reference.
    ///
    /// # Panics
    ///
    /// Panics if the clause is deleted.
    pub fn copy_into(&self, c: CRef, target: &mut ClauseDb) -> CRef {
        assert!(!self.is_deleted(c), "cannot relocate a deleted clause");
        let cref = target.alloc(self.lits(c), self.is_learnt(c));
        if self.is_learnt(c) {
            target.set_activity(cref, self.activity(c));
        }
        cref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 3, 5]), false);
        let b = db.alloc(&lits(&[2, 7]), true);
        assert_eq!(db.size(a), 3);
        assert_eq!(db.size(b), 2);
        assert!(!db.is_learnt(a));
        assert!(db.is_learnt(b));
        assert_eq!(db.lits(a), &lits(&[0, 3, 5])[..]);
        assert_eq!(db.lits(b), &lits(&[2, 7])[..]);
    }

    #[test]
    fn activity_round_trip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[0, 2]), true);
        assert_eq!(db.activity(c), 0.0);
        db.set_activity(c, 3.5);
        assert_eq!(db.activity(c), 3.5);
    }

    #[test]
    fn mutate_literals() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[0, 2, 4]), false);
        db.lits_mut(c).swap(0, 2);
        assert_eq!(db.lits(c), &lits(&[4, 2, 0])[..]);
    }

    #[test]
    fn delete_tracks_waste() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 2, 4]), false);
        let _b = db.alloc(&lits(&[0, 2]), true);
        assert_eq!(db.wasted(), 0);
        db.delete(a);
        assert!(db.is_deleted(a));
        assert_eq!(db.wasted(), 4); // header + 3 lits
        db.delete(a); // idempotent
        assert_eq!(db.wasted(), 4);
    }

    #[test]
    fn copy_into_relocates() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 3]), true);
        db.set_activity(a, 2.0);
        let mut fresh = ClauseDb::new();
        let a2 = db.copy_into(a, &mut fresh);
        assert_eq!(fresh.lits(a2), db.lits(a));
        assert_eq!(fresh.activity(a2), 2.0);
    }

    #[test]
    fn undef_sentinel() {
        assert!(!CRef::UNDEF.is_defined());
        let mut db = ClauseDb::new();
        let c = db.alloc(
            &[Var::from_index(0).positive(), Var::from_index(1).positive()],
            false,
        );
        assert!(c.is_defined());
    }
}
