//! Indexed binary max-heap over variables, ordered by VSIDS activity.

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array.
///
/// The heap stores positions per variable so that activity increases can
/// re-sift a contained variable in `O(log n)` ([`VarHeap::update`]).
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    position: Vec<i32>, // -1 when absent
}

impl VarHeap {
    /// Creates an empty heap.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new() -> Self {
        VarHeap::default()
    }

    /// Extends the position table to cover `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if self.position.len() < num_vars {
            self.position.resize(num_vars, -1);
        }
    }

    /// Number of variables currently in the heap.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if the heap is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` if `var` is in the heap.
    pub fn contains(&self, var: Var) -> bool {
        self.position[var.index()] >= 0
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[parent].index()] >= activity[var.index()] {
                break;
            }
            self.heap[pos] = self.heap[parent];
            self.position[self.heap[pos].index()] = pos as i32;
            pos = parent;
        }
        self.heap[pos] = var;
        self.position[var.index()] = pos as i32;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                right
            } else {
                left
            };
            if activity[self.heap[child].index()] <= activity[var.index()] {
                break;
            }
            self.heap[pos] = self.heap[child];
            self.position[self.heap[pos].index()] = pos as i32;
            pos = child;
        }
        self.heap[pos] = var;
        self.position[var.index()] = pos as i32;
    }

    /// Inserts `var` if absent.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var.index() + 1);
        if !self.contains(var) {
            self.position[var.index()] = self.heap.len() as i32;
            self.heap.push(var);
            self.sift_up(self.heap.len() - 1, activity);
        }
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            let pos = self.position[var.index()] as usize;
            self.sift_up(pos, activity);
        }
    }

    /// Pops the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top.index()] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..4 {
            heap.insert(v(i), &activity);
        }
        assert_eq!(heap.len(), 4);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop(&activity))
            .map(|x| x.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(v(0), &activity);
        heap.insert(v(0), &activity);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn update_resifts() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(v(0), &activity);
        assert_eq!(heap.pop(&activity), Some(v(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut heap = VarHeap::new();
        heap.grow(1);
        assert!(!heap.contains(v(0)));
        heap.insert(v(0), &activity);
        assert!(heap.contains(v(0)));
        heap.pop(&activity);
        assert!(!heap.contains(v(0)));
    }

    #[test]
    fn randomized_against_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1..50);
            let activity: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut heap = VarHeap::new();
            for i in 0..n {
                heap.insert(v(i), &activity);
            }
            let mut popped: Vec<f64> = std::iter::from_fn(|| heap.pop(&activity))
                .map(|x| activity[x.index()])
                .collect();
            let mut sorted = popped.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            assert_eq!(popped.len(), n);
            assert!(popped
                .iter()
                .zip(&sorted)
                .all(|(a, b)| (a - b).abs() < 1e-12));
            popped.clear();
        }
    }
}
