//! The pre-flattening CDCL solver, kept as a benchmarking baseline.
//!
//! [`LegacySolver`] is the seed's engine with per-literal
//! `Vec<Vec<Watcher>>` watch lists — one heap allocation per literal,
//! pointer-chased on every propagation. [`crate::Solver`] replaced that
//! scheme with CSR-style flat watcher lists (see `solver.rs`); this copy
//! stays behind so that
//!
//! * `bench_pr3` / `benches/solver.rs` can measure the flattening as an
//!   apples-to-apples propagation comparison on identical workloads, and
//! * property tests can cross-check the two engines' verdicts (both are
//!   exact, so SAT/UNSAT results and enumerated solution *sets* must
//!   agree even though search trajectories differ).
//!
//! The search logic (1UIP learning, VSIDS, Luby restarts, reduction, GC)
//! is byte-for-byte the seed's; only keep fixes here if a soundness bug is
//! ever found in shared logic. Do not grow features on this type — it is
//! a measurement artefact, not a second production solver.

use crate::clause::{CRef, ClauseDb};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::solver::{SolveResult, SolverStats};

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;

/// The seed's incremental CDCL solver with `Vec<Vec<Watcher>>` watch
/// lists (see the module docs for why it is kept).
#[derive(Clone, Debug, Default)]
pub struct LegacySolver {
    db: ClauseDb,
    clauses: Vec<CRef>,
    learnts: Vec<CRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<CRef>,
    level: Vec<u32>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<LBool>,
    failed_assumptions: Vec<Lit>,
    stats: SolverStats,
    max_learnts: f64,
    conflict_budget: Option<u64>,
}

impl LegacySolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        LegacySolver {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: 0.0,
            ..LegacySolver::default()
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(CRef::UNDEF);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(var, &self.activity);
        var
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            learnt_clauses: self.learnts.len() as u64,
            ..self.stats
        }
    }

    /// Limits the next [`LegacySolver::solve`] call to roughly `budget`
    /// conflicts; `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Current assignment of a literal (during/after search).
    #[inline]
    fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under(lit)
    }

    /// The model value of `lit` after a [`SolveResult::Sat`] outcome.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model
            .get(lit.var().index())
            .and_then(|v| v.under(lit).to_bool())
    }

    /// `true` once the clause set has been proven unsatisfiable outright.
    pub fn is_inconsistent(&self) -> bool {
        !self.ok
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause; returns `false` if the solver became inconsistent.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "add_clause only at root");
        if !self.ok {
            return false;
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut filtered: Vec<Lit> = Vec::with_capacity(sorted.len());
        let mut prev: Option<Lit> = None;
        for &lit in &sorted {
            if let Some(p) = prev {
                if p == !lit {
                    return true; // tautology
                }
            }
            match self.value(lit) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop falsified literal
                LBool::Undef => filtered.push(lit),
            }
            prev = Some(lit);
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], CRef::UNDEF);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&filtered, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: CRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: CRef) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<CRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = 0usize;
            let mut i = 0usize;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == LBool::True {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let lits = self.db.lits_mut(cref);
                    // Ensure the false literal (!p) is at position 1.
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                }
                let first = self.db.lits(cref)[0];
                debug_assert_eq!(self.db.lits(cref)[1], !p);
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[keep] = Watcher {
                        cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let size = self.db.size(cref);
                for k in 2..size {
                    let lk = self.db.lits(cref)[k];
                    if self.value(lk) != LBool::False {
                        self.db.lits_mut(cref).swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[keep] = Watcher {
                    cref,
                    blocker: first,
                };
                keep += 1;
                if self.value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // Copy back remaining watchers.
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(keep);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level as usize];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = lit.is_positive();
            self.reason[v.index()] = CRef::UNDEF;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn rescale_var_activity(&mut self) {
        for a in &mut self.activity {
            *a *= 1e-100;
        }
        self.var_inc *= 1e-100;
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > RESCALE_LIMIT {
            self.rescale_var_activity();
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let a = self.db.activity(cref) + self.cla_inc as f32;
        self.db.set_activity(cref, a);
        if a > 1e20 {
            for &c in &self.learnts {
                let scaled = self.db.activity(c) * 1e-20;
                self.db.set_activity(c, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// 1UIP conflict analysis; returns the learnt clause and the backtrack
    /// level.
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;

        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            let size = self.db.size(cref);
            for k in start..size {
                let q = self.db.lits(cref)[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            cref = self.reason[pl.var().index()];
            debug_assert!(cref.is_defined(), "non-decision must have a reason");
        }

        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = true;
        }
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&lit| !self.literal_redundant(lit))
            .collect();
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }
        learnt.truncate(1);
        learnt.extend(keep);

        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    fn literal_redundant(&self, lit: Lit) -> bool {
        let reason = self.reason[lit.var().index()];
        if !reason.is_defined() {
            return false;
        }
        let lits = self.db.lits(reason);
        lits.iter().skip(1).all(|&q| {
            let v = q.var();
            self.seen[v.index()] || self.level[v.index()] == 0
        })
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt_clauses += 1;
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], CRef::UNDEF);
        } else {
            let cref = self.db.alloc(&learnt, true);
            self.learnts.push(cref);
            self.attach(cref);
            self.bump_clause(cref);
            self.unchecked_enqueue(learnt[0], cref);
        }
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLA_DECAY;
    }

    fn locked(&self, cref: CRef) -> bool {
        let first = self.db.lits(cref)[0];
        self.reason[first.var().index()] == cref && self.value(first) == LBool::True
    }

    fn detach(&mut self, cref: CRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        for code in [(!l0).code(), (!l1).code()] {
            self.watches[code].retain(|w| w.cref != cref);
        }
    }

    fn reduce_learnts(&mut self) {
        let db = &self.db;
        let mut ranked: Vec<CRef> = self.learnts.clone();
        ranked.sort_by(|&a, &b| {
            db.activity(a)
                .partial_cmp(&db.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut removed = 0u64;
        let target = ranked.len() / 2;
        let mut kept: Vec<CRef> = Vec::with_capacity(ranked.len());
        for (i, cref) in ranked.into_iter().enumerate() {
            let small = self.db.size(cref) == 2;
            if i < target && !small && !self.locked(cref) {
                self.detach(cref);
                self.db.delete(cref);
                removed += 1;
            } else {
                kept.push(cref);
            }
        }
        self.learnts = kept;
        self.stats.removed_clauses += removed;
        if self.db.needs_gc() {
            self.collect_garbage();
        }
    }

    /// Rebuilds the clause arena (watches rebuilt from scratch).
    fn collect_garbage(&mut self) {
        let mut fresh = ClauseDb::new();
        let mut remap =
            std::collections::HashMap::with_capacity(self.clauses.len() + self.learnts.len());
        for list in [&mut self.clauses, &mut self.learnts] {
            for cref in list.iter_mut() {
                let new = *remap
                    .entry(*cref)
                    .or_insert_with(|| self.db.copy_into(*cref, &mut fresh));
                *cref = new;
            }
        }
        for r in &mut self.reason {
            if r.is_defined() {
                *r = *remap.get(r).unwrap_or(&CRef::UNDEF);
            }
        }
        self.db = fresh;
        for w in &mut self.watches {
            w.clear();
        }
        let all: Vec<CRef> = self.clauses.iter().chain(&self.learnts).copied().collect();
        for cref in all {
            self.attach(cref);
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assigns[var.index()] == LBool::Undef {
                return Some(var.lit(self.polarity[var.index()]));
            }
        }
        None
    }

    fn luby(i: u64) -> u64 {
        let (mut size, mut seq) = (1u64, 0u32);
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut idx = i;
        while size - 1 != idx {
            size = (size - 1) >> 1;
            seq -= 1;
            idx %= size;
        }
        1u64 << seq
    }

    /// Solves under the given assumption literals.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let before = self.stats;
        let result = self.solve_inner(assumptions);
        self.stats.charge_legacy_solve(&before);
        result
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        self.failed_assumptions.clear();
        if !self.ok || self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        }
        let budget_start = self.stats.conflicts;
        let mut restart_round = 0u64;
        loop {
            let allowed = RESTART_BASE * Self::luby(restart_round);
            match self.search(allowed, assumptions, budget_start) {
                InnerResult::Sat => {
                    self.model = self.assigns.clone();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                InnerResult::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                InnerResult::Unknown => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                InnerResult::Restart => {
                    self.stats.restarts += 1;
                    restart_round += 1;
                    self.cancel_until(0);
                    self.max_learnts *= 1.02;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> InnerResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return InnerResult::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learnt(learnt);
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return InnerResult::Unknown;
                    }
                }
                if conflicts_here >= conflicts_allowed {
                    return InnerResult::Restart;
                }
            } else {
                if self.learnts.len() as f64 - self.trail.len() as f64 > self.max_learnts {
                    self.reduce_learnts();
                }
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // The legacy baseline does not reconstruct
                            // assumption cores; verdict-level use only.
                            return InnerResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        Some(p) => p,
                        None => return InnerResult::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, CRef::UNDEF);
            }
        }
    }
}

enum InnerResult {
    Sat,
    Unsat,
    Unknown,
    Restart,
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hand-written pigeonhole index math
mod tests {
    use super::*;

    fn vars(solver: &mut LegacySolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = LegacySolver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[v[0].negative()]);
        s.add_clause(&[v[1].negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.is_inconsistent());
    }

    #[test]
    fn agrees_with_flat_solver_on_random_instances() {
        use crate::solver::Solver;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for round in 0..40 {
            let n = rng.gen_range(3..14);
            let mut legacy = LegacySolver::new();
            let mut flat = Solver::new();
            let lv = vars(&mut legacy, n);
            let fv: Vec<Var> = (0..n).map(|_| flat.new_var()).collect();
            for _ in 0..rng.gen_range(3..40) {
                let len = rng.gen_range(1..4);
                let idx: Vec<(usize, bool)> = (0..len)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                let lc: Vec<Lit> = idx.iter().map(|&(i, p)| lv[i].lit(p)).collect();
                let fc: Vec<Lit> = idx.iter().map(|&(i, p)| fv[i].lit(p)).collect();
                legacy.add_clause(&lc);
                flat.add_clause(&fc);
            }
            assert_eq!(
                legacy.solve(&[]),
                flat.solve(&[]),
                "round {round}: verdicts drifted between legacy and flat"
            );
        }
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let (n, m) = (4usize, 3usize);
        let mut s = LegacySolver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        let (n, m) = (7usize, 6usize);
        let mut s = LegacySolver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }
}
