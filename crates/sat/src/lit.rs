//! Boolean variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, densely numbered from 0.
///
/// # Examples
///
/// ```
/// use gatediag_sat::Var;
/// let v = Var::from_index(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The variable's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// A literal of this variable with the given polarity.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded MiniSat-style as `var << 1 | negated`, so literals are cheap to
/// copy and index watch lists directly via [`Lit::code`].
///
/// # Examples
///
/// ```
/// use gatediag_sat::{Lit, Var};
/// let v = Var::from_index(0);
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!((!p).var(), v);
/// assert!(p.is_positive());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for the positive literal of the variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code usable as an array index (`2 * var + negated`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub const fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts from DIMACS convention (non-zero; negative = negated).
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(value != 0, "DIMACS literals are non-zero");
        let var = Var((value.unsigned_abs() - 1) as u32);
        var.lit(value > 0)
    }

    /// Converts to DIMACS convention.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().index())
        } else {
            write!(f, "!v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment state of a variable or literal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum LBool {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns the Boolean value if assigned.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::False => Some(false),
            LBool::True => Some(true),
            LBool::Undef => None,
        }
    }

    /// Negation (keeps `Undef`).
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::False => LBool::True,
            LBool::True => LBool::False,
            LBool::Undef => LBool::Undef,
        }
    }

    /// The value of a literal whose variable has this value.
    #[inline]
    pub fn under(self, lit: Lit) -> LBool {
        if lit.is_positive() {
            self
        } else {
            self.negate()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(5);
        assert_eq!(v.positive().code(), 10);
        assert_eq!(v.negative().code(), 11);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        assert_eq!(Lit::from_code(11), v.negative());
    }

    #[test]
    fn dimacs_round_trip() {
        for raw in [1i64, -1, 7, -42] {
            assert_eq!(Lit::from_dimacs(raw).to_dimacs(), raw);
        }
        assert_eq!(Lit::from_dimacs(1).var().index(), 0);
        assert!(Lit::from_dimacs(1).is_positive());
        assert!(!Lit::from_dimacs(-3).is_positive());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::Undef.to_bool(), None);
        let v = Var::from_index(0);
        assert_eq!(LBool::True.under(v.positive()), LBool::True);
        assert_eq!(LBool::True.under(v.negative()), LBool::False);
        assert_eq!(LBool::Undef.under(v.negative()), LBool::Undef);
    }

    #[test]
    fn display() {
        let v = Var::from_index(2);
        assert_eq!(format!("{}", v.positive()), "v2");
        assert_eq!(format!("{}", v.negative()), "!v2");
    }
}
