//! DIMACS CNF serialisation, for debugging and interop with external
//! solvers.

use crate::lit::Lit;
use std::fmt::Write as _;

/// Serialises clauses in DIMACS CNF format.
///
/// # Examples
///
/// ```
/// use gatediag_sat::{write_dimacs, Lit};
/// let text = write_dimacs(2, &[vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]]);
/// assert!(text.starts_with("p cnf 2 1"));
/// ```
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Parses DIMACS CNF text; returns `(num_vars, clauses)`.
///
/// # Errors
///
/// Returns a descriptive message for malformed headers or literals.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), String> {
    let mut num_vars = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut header_seen = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(format!("line {}: expected `p cnf`", lineno + 1));
            }
            num_vars = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad variable count", lineno + 1))?;
            header_seen = true;
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| format!("line {}: bad literal `{token}`", lineno + 1))?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    if !header_seen {
        return Err("missing `p cnf` header".to_string());
    }
    Ok((num_vars, clauses))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let clauses = vec![
            vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)],
            vec![Lit::from_dimacs(3)],
        ];
        let text = write_dimacs(3, &clauses);
        let (n, parsed) = parse_dimacs(&text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(parsed, clauses);
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c comment\np cnf 2 1\n1\n-2 0\n";
        let (n, clauses) = parse_dimacs(text).unwrap();
        assert_eq!(n, 2);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_dimacs("1 -2 0\n").is_err());
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(parse_dimacs("p cnf 1 1\nfoo 0\n").is_err());
    }
}
