//! DIMACS CNF serialisation, for debugging and interop with external
//! solvers.

use crate::lit::Lit;
use std::fmt::Write as _;

/// Serialises clauses in DIMACS CNF format.
///
/// # Examples
///
/// ```
/// use gatediag_sat::{write_dimacs, Lit};
/// let text = write_dimacs(2, &[vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]]);
/// assert!(text.starts_with("p cnf 2 1"));
/// ```
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Parses DIMACS CNF text; returns `(num_vars, clauses)`.
///
/// The parser is strict where silent acceptance would corrupt an
/// instance, and lenient only where the DIMACS ecosystem traditionally
/// is:
///
/// * the `p cnf <vars> <clauses>` header must appear exactly once,
///   before any clause data, with both counts present and numeric;
/// * every literal must be in range (`1 ≤ |lit| ≤ <vars>`) — an
///   out-of-range literal would otherwise silently alias another
///   variable after the internal `u32` narrowing;
/// * the final clause must be terminated by `0` (a trailing unterminated
///   clause is rejected, not silently accepted);
/// * the declared clause *count* is not enforced (many generators get it
///   wrong; the parsed clause list's length is authoritative).
///
/// # Errors
///
/// Returns a descriptive message (with a 1-based line number) for
/// malformed headers, out-of-range or non-numeric literals, clause data
/// before the header, duplicate headers, and a missing terminating `0`.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), String> {
    let mut num_vars = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut header_seen = false;
    let mut current_open = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            if header_seen {
                return Err(format!("line {}: duplicate `p cnf` header", lineno + 1));
            }
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            if parts.next() != Some("cnf") {
                return Err(format!("line {}: expected `p cnf`", lineno + 1));
            }
            num_vars = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad variable count", lineno + 1))?;
            // Literals are stored as `var << 1 | sign` in a `u32`, so a
            // header declaring more variables than that encoding can hold
            // would let the range check below pass on literals that then
            // alias small variables after narrowing.
            if num_vars > (u32::MAX >> 1) as usize {
                return Err(format!(
                    "line {}: variable count {num_vars} exceeds the supported maximum {}",
                    lineno + 1,
                    u32::MAX >> 1
                ));
            }
            let _num_clauses: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad clause count", lineno + 1))?;
            if parts.next().is_some() {
                return Err(format!(
                    "line {}: trailing tokens after `p cnf <vars> <clauses>`",
                    lineno + 1
                ));
            }
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(format!(
                "line {}: clause data before the `p cnf` header",
                lineno + 1
            ));
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| format!("line {}: bad literal `{token}`", lineno + 1))?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
                current_open = false;
            } else {
                if value.unsigned_abs() > num_vars as u64 {
                    return Err(format!(
                        "line {}: literal `{token}` out of range (header declares {num_vars} \
                         variables)",
                        lineno + 1
                    ));
                }
                current.push(Lit::from_dimacs(value));
                current_open = true;
            }
        }
    }
    if current_open {
        return Err("last clause is missing its terminating `0`".to_string());
    }
    if !header_seen {
        return Err("missing `p cnf` header".to_string());
    }
    Ok((num_vars, clauses))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let clauses = vec![
            vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)],
            vec![Lit::from_dimacs(3)],
        ];
        let text = write_dimacs(3, &clauses);
        let (n, parsed) = parse_dimacs(&text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(parsed, clauses);
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c comment\np cnf 2 1\n1\n-2 0\n";
        let (n, clauses) = parse_dimacs(text).unwrap();
        assert_eq!(n, 2);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_dimacs("1 -2 0\n").is_err());
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(parse_dimacs("p cnf 1 1\nfoo 0\n").is_err());
    }

    #[test]
    fn rejects_malformed_headers() {
        // Wrong format tag.
        assert!(parse_dimacs("p sat 2 1\n1 0\n").is_err());
        // Missing clause count.
        assert!(parse_dimacs("p cnf 2\n1 0\n").is_err());
        // Missing both counts.
        assert!(parse_dimacs("p cnf\n").is_err());
        // Non-numeric counts.
        assert!(parse_dimacs("p cnf x 1\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf 2 y\n1 0\n").is_err());
        // Negative counts.
        assert!(parse_dimacs("p cnf -2 1\n1 0\n").is_err());
        // Trailing junk on the header line.
        assert!(parse_dimacs("p cnf 2 1 junk\n1 0\n").is_err());
        // Duplicate header.
        assert!(parse_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n").is_err());
        // Clause data before the header.
        assert!(parse_dimacs("1 0\np cnf 2 1\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_literals() {
        // Variable 3 with only 2 declared.
        let err = parse_dimacs("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(parse_dimacs("p cnf 2 1\n-3 0\n").is_err());
        // Values far beyond the internal u32 range must error, not
        // silently alias a small variable index.
        assert!(parse_dimacs("p cnf 2 1\n4294967297 0\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n-9223372036854775808 0\n").is_err());
        // A header declaring more variables than the u32 literal encoding
        // can hold must be rejected outright — otherwise a huge literal
        // would pass the range check and alias variable 0 after
        // narrowing (4294967297 - 1 ≡ 0 mod 2^32).
        assert!(parse_dimacs("p cnf 4294967297 1\n4294967297 0\n").is_err());
        assert!(parse_dimacs("p cnf 2147483648 1\n1 0\n").is_err());
        // The largest supported count itself is fine.
        assert!(parse_dimacs("p cnf 2147483647 1\n1 0\n").is_ok());
        // Boundary: exactly num_vars is fine.
        assert!(parse_dimacs("p cnf 2 1\n2 -1 0\n").is_ok());
    }

    #[test]
    fn rejects_missing_terminating_zero() {
        let err = parse_dimacs("p cnf 2 1\n1 -2\n").unwrap_err();
        assert!(err.contains("terminating"), "{err}");
        // A clause split across lines is fine as long as the 0 arrives.
        assert!(parse_dimacs("p cnf 2 1\n1\n-2\n0\n").is_ok());
        // Comments and blank lines after the last 0 are fine.
        assert!(parse_dimacs("p cnf 2 1\n1 -2 0\nc done\n\n").is_ok());
    }

    #[test]
    fn empty_clause_is_parsed_not_rejected() {
        let (n, clauses) = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(clauses, vec![Vec::<Lit>::new()]);
    }

    #[test]
    fn declared_clause_count_is_not_enforced() {
        // Authoritative clause list, lenient count (documented behavior).
        let (_, clauses) = parse_dimacs("p cnf 2 5\n1 0\n-2 0\n").unwrap();
        assert_eq!(clauses.len(), 2);
    }
}
