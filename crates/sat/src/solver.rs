//! The CDCL solver: watched-literal propagation, 1UIP learning, VSIDS,
//! phase saving, Luby restarts, learnt-clause reduction and incremental
//! solving under assumptions.

use crate::clause::{CRef, ClauseDb};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The instance is unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Aggregate search statistics.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learnt clauses removed by database reductions.
    pub removed_clauses: u64,
    /// Clause-arena garbage collections performed (arena rebuild + watch
    /// list compaction after reductions waste enough space).
    pub gc_runs: u64,
}

impl SolverStats {
    /// Adds `other`'s counters into `self` — for aggregating the search
    /// cost over several solvers (per-test validity engines, per-branch
    /// cover solvers). All fields sum, including the `learnt_clauses`
    /// gauge, which in an aggregate reads as "learnt clauses held across
    /// all solvers".
    pub fn absorb(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.removed_clauses += other.removed_clauses;
        self.gc_runs += other.gc_runs;
    }

    /// Charges the delta from `before` to `self` to the observability
    /// layer's deterministic counters — called once per `solve()` so the
    /// search loop itself carries no instrumentation. `names` picks the
    /// counter namespace (`sat.*` for [`Solver`], `sat.legacy.*` for the
    /// A/B baseline).
    fn charge_obs(&self, before: &SolverStats, names: &[&'static str; 7]) {
        gatediag_obs::count(names[0], 1);
        gatediag_obs::count(names[1], self.conflicts - before.conflicts);
        gatediag_obs::count(names[2], self.decisions - before.decisions);
        gatediag_obs::count(names[3], self.propagations - before.propagations);
        gatediag_obs::count(names[4], self.restarts - before.restarts);
        gatediag_obs::count(names[5], self.removed_clauses - before.removed_clauses);
        gatediag_obs::count(names[6], self.gc_runs - before.gc_runs);
    }

    pub(crate) fn charge_solve(&self, before: &SolverStats) {
        self.charge_obs(
            before,
            &[
                "sat.solves",
                "sat.conflicts",
                "sat.decisions",
                "sat.propagations",
                "sat.restarts",
                "sat.removed_clauses",
                "sat.gc_runs",
            ],
        );
    }

    pub(crate) fn charge_legacy_solve(&self, before: &SolverStats) {
        self.charge_obs(
            before,
            &[
                "sat.legacy.solves",
                "sat.legacy.conflicts",
                "sat.legacy.decisions",
                "sat.legacy.propagations",
                "sat.legacy.restarts",
                "sat.legacy.removed_clauses",
                "sat.legacy.gc_runs",
            ],
        );
    }
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

impl Watcher {
    /// Filler for unused capacity slots in [`WatchLists`].
    const DUMMY: Watcher = Watcher {
        cref: CRef::UNDEF,
        blocker: Lit::from_code(0),
    };
}

/// CSR-style flat watcher lists: one contiguous `Watcher` buffer with a
/// per-literal `(start, len, cap)` region, replacing the seed's
/// `Vec<Vec<Watcher>>` (one heap allocation per literal, pointer-chased
/// on every propagation — see [`crate::legacy::LegacySolver`]).
///
/// A region that outgrows its capacity is relocated to the end of the
/// buffer with doubled capacity (amortised O(1) push, like `Vec`); the
/// abandoned slots are tracked in `wasted` and reclaimed when the solver
/// rebuilds the lists during clause-arena garbage collection
/// ([`WatchLists::rebuild_exact`] lays the regions back out tightly in
/// literal order). Relocation never moves *other* regions, so propagation
/// may push watchers onto other literals' lists mid-scan while holding
/// only `(start, len)` indices into its own region.
#[derive(Clone, Debug, Default)]
struct WatchLists {
    buf: Vec<Watcher>,
    start: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    wasted: usize,
}

impl WatchLists {
    /// Registers one more literal code (empty region, grown on first push).
    fn add_literal(&mut self) {
        self.start.push(0);
        self.len.push(0);
        self.cap.push(0);
    }

    #[inline]
    fn region(&self, code: usize) -> (usize, usize) {
        (self.start[code] as usize, self.len[code] as usize)
    }

    /// Appends a watcher to `code`'s region, relocating it if full.
    #[inline]
    fn push(&mut self, code: usize, w: Watcher) {
        if self.len[code] == self.cap[code] {
            self.grow(code);
        }
        let at = (self.start[code] + self.len[code]) as usize;
        self.buf[at] = w;
        self.len[code] += 1;
    }

    /// Relocates `code`'s region to the end of the buffer with doubled
    /// capacity, abandoning the old slots until the next rebuild.
    #[cold]
    fn grow(&mut self, code: usize) {
        let (s, l) = self.region(code);
        let new_cap = (self.cap[code] * 2).max(4);
        let new_start = self.buf.len();
        self.buf.extend_from_within(s..s + l);
        self.buf
            .resize(new_start + new_cap as usize, Watcher::DUMMY);
        self.wasted += self.cap[code] as usize;
        self.start[code] = new_start as u32;
        self.cap[code] = new_cap;
    }

    /// Removes every watcher of `cref` from `code`'s region.
    fn remove(&mut self, code: usize, cref: CRef) {
        let (s, l) = self.region(code);
        let region = &mut self.buf[s..s + l];
        let mut keep = 0usize;
        for i in 0..l {
            if region[i].cref != cref {
                region[keep] = region[i];
                keep += 1;
            }
        }
        self.len[code] = keep as u32;
    }

    /// Lays the lists back out tightly: region `code` gets exactly
    /// `counts[code]` slots at consecutive offsets, all lengths zeroed for
    /// re-attachment. Reclaims all waste (the GC compaction step).
    fn rebuild_exact(&mut self, counts: &[u32]) {
        debug_assert_eq!(counts.len(), self.start.len());
        let mut offset = 0u32;
        for (code, &count) in counts.iter().enumerate() {
            self.start[code] = offset;
            self.len[code] = 0;
            self.cap[code] = count;
            offset += count;
        }
        self.buf.clear();
        self.buf.resize(offset as usize, Watcher::DUMMY);
        self.wasted = 0;
    }
}

/// How often the cooperative deadline polls the wall clock: once per this
/// many conflicts (plus once at solve entry). See [`Solver::set_deadline`].
const DEADLINE_CHECK_MASK: u64 = 0x3F;

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;

/// An incremental CDCL SAT solver.
///
/// The feature set mirrors what the paper's diagnosis engines need from
/// Zchaff: clause addition between solves (blocking clauses), solving under
/// assumptions (incremental cardinality bounds), and model extraction
/// (candidate sets from select lines).
///
/// # Examples
///
/// ```
/// use gatediag_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(&[a.positive(), b.positive()]);
/// solver.add_clause(&[a.negative()]);
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// assert_eq!(solver.model_value(b.positive()), Some(true));
/// // Incremental: keep solving with extra constraints.
/// solver.add_clause(&[b.negative()]);
/// assert_eq!(solver.solve(&[]), SolveResult::Unsat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    db: ClauseDb,
    clauses: Vec<CRef>,
    learnts: Vec<CRef>,
    /// Flat CSR watch lists for clauses of three or more literals.
    watches: WatchLists,
    /// Flat CSR watch lists for binary clauses; the watcher's `blocker` is
    /// the *other* literal, so propagation needs no clause-arena access on
    /// the scan (only on enqueue/conflict, to normalise `lits[0]`).
    bin_watches: WatchLists,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<CRef>,
    level: Vec<u32>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<LBool>,
    failed_assumptions: Vec<Lit>,
    stats: SolverStats,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    deadline: Option<std::time::Instant>,
    deadline_hit: bool,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: 0.0,
            ..Solver::default()
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(CRef::UNDEF);
        self.level.push(0);
        self.seen.push(false);
        for _ in 0..2 {
            self.watches.add_literal();
            self.bin_watches.add_literal();
        }
        self.order.insert(var, &self.activity);
        var
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            learnt_clauses: self.learnts.len() as u64,
            ..self.stats
        }
    }

    /// Limits the next [`Solver::solve`] call to roughly `budget` conflicts;
    /// `None` removes the limit. Exceeding the budget yields
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a wall-clock deadline for subsequent [`Solver::solve`]
    /// calls; `None` removes it. The clock is polled only at conflict
    /// boundaries (every 64 conflicts, `DEADLINE_CHECK_MASK`) plus once
    /// at solve entry, so the deadline is cooperative and coarse. Exceeding
    /// it yields [`SolveResult::Unknown`], distinguishable from a conflict
    /// budget stop via [`Solver::deadline_hit`].
    ///
    /// A deadline makes results *time-dependent* — use it only in flows
    /// (like campaign preemption) that quarantine nondeterminism.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// `true` when the most recent [`Solver::solve`] call returned
    /// [`SolveResult::Unknown`] because the deadline passed (rather than
    /// because the conflict budget ran out).
    pub fn deadline_hit(&self) -> bool {
        self.deadline_hit
    }

    /// Sets the saved phase of `var`, biasing future decisions.
    ///
    /// The hybrid diagnosis flow (paper Sec. 6) seeds these from
    /// simulation results.
    pub fn set_polarity(&mut self, var: Var, phase: bool) {
        self.polarity[var.index()] = phase;
    }

    /// Additively bumps `var`'s VSIDS activity, biasing future decisions.
    ///
    /// The hybrid diagnosis flow seeds these from path-tracing mark counts.
    pub fn bump_variable(&mut self, var: Var, amount: f64) {
        self.activity[var.index()] += amount * self.var_inc;
        if self.activity[var.index()] > RESCALE_LIMIT {
            self.rescale_var_activity();
        }
        self.order.update(var, &self.activity);
    }

    /// Current assignment of a literal (during/after search).
    #[inline]
    fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under(lit)
    }

    /// The model value of `lit` after a [`SolveResult::Sat`] outcome.
    ///
    /// Returns `None` if no model is stored or the variable was never
    /// assigned in it.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model
            .get(lit.var().index())
            .and_then(|v| v.under(lit).to_bool())
    }

    /// `true` once the clause set has been proven unsatisfiable outright
    /// (no assumptions involved).
    pub fn is_inconsistent(&self) -> bool {
        !self.ok
    }

    /// After an [`SolveResult::Unsat`] outcome caused by assumptions, the
    /// subset of assumption literals that jointly conflict with the clause
    /// set (an unsat "core" over the assumptions; not necessarily
    /// minimal). Empty when the clause set itself is inconsistent.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    /// MiniSat-style `analyzeFinal`: collect the assumptions responsible
    /// for the falsified assumption literal `p`.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[p.var().index()] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var();
            if !self.seen[v.index()] {
                continue;
            }
            let reason = self.reason[v.index()];
            if reason.is_defined() {
                for &q in self.db.lits(reason).iter().skip(1) {
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            } else {
                // An assumption pseudo-decision contributing to the
                // conflict. At this point every pseudo-decision on the
                // trail is one of the given assumptions, so the trail
                // literal is the assumption in given form.
                core.push(x);
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
        core
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause; returns `false` if the solver became inconsistent.
    ///
    /// May be called between [`Solver::solve`] invocations (the solver is at
    /// decision level 0 then). Duplicate literals are removed, tautologies
    /// dropped, root-level falsified literals stripped.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "add_clause only at root");
        if !self.ok {
            return false;
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut filtered: Vec<Lit> = Vec::with_capacity(sorted.len());
        let mut prev: Option<Lit> = None;
        for &lit in &sorted {
            if let Some(p) = prev {
                if p == !lit {
                    return true; // tautology
                }
            }
            match self.value(lit) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop falsified literal
                LBool::Undef => filtered.push(lit),
            }
            prev = Some(lit);
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], CRef::UNDEF);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&filtered, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: CRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        let lists = if lits.len() == 2 {
            &mut self.bin_watches
        } else {
            &mut self.watches
        };
        lists.push((!l0).code(), Watcher { cref, blocker: l1 });
        lists.push((!l1).code(), Watcher { cref, blocker: l0 });
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: CRef) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    ///
    /// Scans the CSR watch regions of the falsified literal linearly:
    /// binary watchers first (the other literal rides in the watcher
    /// itself, so the scan touches no clause memory), then the long-clause
    /// region, compacted in place as watchers move to new literals. Pushes
    /// onto *other* literals' regions are safe mid-scan — relocation never
    /// moves the region being scanned (see [`WatchLists`]).
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pcode = p.code();

            // Binary watchers: nothing is ever moved or removed here, so
            // the region is stable for the whole scan.
            let (bs, bl) = self.bin_watches.region(pcode);
            for i in bs..bs + bl {
                let w = self.bin_watches.buf[i];
                match self.value(w.blocker) {
                    LBool::True => {}
                    LBool::False => {
                        // Conflict analysis reads all literals of the
                        // conflict clause, in any order — no normalisation
                        // needed.
                        self.qhead = self.trail.len();
                        return Some(w.cref);
                    }
                    LBool::Undef => {
                        // The learning/locking code expects the enqueued
                        // literal at `lits[0]` of its reason clause.
                        if self.db.lits(w.cref)[0] != w.blocker {
                            self.db.lits_mut(w.cref).swap(0, 1);
                        }
                        self.unchecked_enqueue(w.blocker, w.cref);
                    }
                }
            }

            // Long-clause watchers: in-place compaction of the region.
            let (s, l) = self.watches.region(pcode);
            let mut keep = 0usize;
            let mut i = 0usize;
            let mut conflict = None;
            'watchers: while i < l {
                let w = self.watches.buf[s + i];
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == LBool::True {
                    self.watches.buf[s + keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let lits = self.db.lits_mut(cref);
                    // Ensure the false literal (!p) is at position 1.
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                }
                let first = self.db.lits(cref)[0];
                debug_assert_eq!(self.db.lits(cref)[1], !p);
                if first != w.blocker && self.value(first) == LBool::True {
                    self.watches.buf[s + keep] = Watcher {
                        cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let size = self.db.size(cref);
                for k in 2..size {
                    let lk = self.db.lits(cref)[k];
                    if self.value(lk) != LBool::False {
                        self.db.lits_mut(cref).swap(1, k);
                        // `lk` is a distinct variable from `p`, so this
                        // push cannot relocate the region being scanned.
                        self.watches.push(
                            (!lk).code(),
                            Watcher {
                                cref,
                                blocker: first,
                            },
                        );
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                self.watches.buf[s + keep] = Watcher {
                    cref,
                    blocker: first,
                };
                keep += 1;
                if self.value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // Compact the remaining unscanned watchers down.
                    while i < l {
                        self.watches.buf[s + keep] = self.watches.buf[s + i];
                        keep += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            self.watches.len[pcode] = keep as u32;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level as usize];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = lit.is_positive();
            self.reason[v.index()] = CRef::UNDEF;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn rescale_var_activity(&mut self) {
        for a in &mut self.activity {
            *a *= 1e-100;
        }
        self.var_inc *= 1e-100;
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > RESCALE_LIMIT {
            self.rescale_var_activity();
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let a = self.db.activity(cref) + self.cla_inc as f32;
        self.db.set_activity(cref, a);
        if a > 1e20 {
            for &c in &self.learnts {
                let scaled = self.db.activity(c) * 1e-20;
                self.db.set_activity(c, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// 1UIP conflict analysis; returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;

        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            let size = self.db.size(cref);
            for k in start..size {
                let q = self.db.lits(cref)[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            cref = self.reason[pl.var().index()];
            debug_assert!(cref.is_defined(), "non-decision must have a reason");
        }

        // Mark remaining seen for minimisation bookkeeping.
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = true;
        }
        // Basic self-subsumption minimisation: drop literals whose reason is
        // fully covered by the learnt clause.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&lit| !self.literal_redundant(lit))
            .collect();
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }
        learnt.truncate(1);
        learnt.extend(keep);

        // Compute backtrack level; move the max-level literal to slot 1.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    /// `true` if `lit`'s reason clause is entirely made of seen/root
    /// literals, i.e. `lit` is implied by the rest of the learnt clause.
    fn literal_redundant(&self, lit: Lit) -> bool {
        let reason = self.reason[lit.var().index()];
        if !reason.is_defined() {
            return false;
        }
        let lits = self.db.lits(reason);
        lits.iter().skip(1).all(|&q| {
            let v = q.var();
            self.seen[v.index()] || self.level[v.index()] == 0
        })
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt_clauses += 1;
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], CRef::UNDEF);
        } else {
            let cref = self.db.alloc(&learnt, true);
            self.learnts.push(cref);
            self.attach(cref);
            self.bump_clause(cref);
            self.unchecked_enqueue(learnt[0], cref);
        }
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLA_DECAY;
    }

    fn locked(&self, cref: CRef) -> bool {
        let first = self.db.lits(cref)[0];
        self.reason[first.var().index()] == cref && self.value(first) == LBool::True
    }

    fn detach(&mut self, cref: CRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        let lists = if lits.len() == 2 {
            &mut self.bin_watches
        } else {
            &mut self.watches
        };
        for code in [(!l0).code(), (!l1).code()] {
            lists.remove(code, cref);
        }
    }

    fn reduce_learnts(&mut self) {
        let db = &self.db;
        let mut ranked: Vec<CRef> = self.learnts.clone();
        ranked.sort_by(|&a, &b| {
            db.activity(a)
                .partial_cmp(&db.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut removed = 0u64;
        let target = ranked.len() / 2;
        let mut kept: Vec<CRef> = Vec::with_capacity(ranked.len());
        for (i, cref) in ranked.into_iter().enumerate() {
            let small = self.db.size(cref) == 2;
            if i < target && !small && !self.locked(cref) {
                self.detach(cref);
                self.db.delete(cref);
                removed += 1;
            } else {
                kept.push(cref);
            }
        }
        self.learnts = kept;
        self.stats.removed_clauses += removed;
        if self.db.needs_gc() {
            self.collect_garbage();
        }
    }

    /// Rebuilds the clause arena, dropping deleted clauses and remapping all
    /// references. The watch lists are compacted at the same time:
    /// per-literal watcher counts are recomputed and the CSR regions laid
    /// back out tightly ([`WatchLists::rebuild_exact`]), reclaiming every
    /// slot abandoned by region relocations since the last collection.
    fn collect_garbage(&mut self) {
        self.stats.gc_runs += 1;
        let mut fresh = ClauseDb::new();
        let mut remap =
            std::collections::HashMap::with_capacity(self.clauses.len() + self.learnts.len());
        for list in [&mut self.clauses, &mut self.learnts] {
            for cref in list.iter_mut() {
                let new = *remap
                    .entry(*cref)
                    .or_insert_with(|| self.db.copy_into(*cref, &mut fresh));
                *cref = new;
            }
        }
        for r in &mut self.reason {
            if r.is_defined() {
                // Locked clauses are never deleted, so the mapping exists
                // whenever the reason is still referenced.
                *r = *remap.get(r).unwrap_or(&CRef::UNDEF);
            }
        }
        self.db = fresh;
        // Exact per-literal counts, then tight rebuild + re-attachment.
        let codes = self.assigns.len() * 2;
        let mut long_counts = vec![0u32; codes];
        let mut bin_counts = vec![0u32; codes];
        for &cref in self.clauses.iter().chain(&self.learnts) {
            let lits = self.db.lits(cref);
            let counts = if lits.len() == 2 {
                &mut bin_counts
            } else {
                &mut long_counts
            };
            counts[(!lits[0]).code()] += 1;
            counts[(!lits[1]).code()] += 1;
        }
        self.watches.rebuild_exact(&long_counts);
        self.bin_watches.rebuild_exact(&bin_counts);
        let all: Vec<CRef> = self.clauses.iter().chain(&self.learnts).copied().collect();
        for cref in all {
            self.attach(cref);
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assigns[var.index()] == LBool::Undef {
                return Some(var.lit(self.polarity[var.index()]));
            }
        }
        None
    }

    fn luby(i: u64) -> u64 {
        // Sequence 1,1,2,1,1,2,4,... : find the finite subsequence containing
        // index i and its position.
        let (mut size, mut seq) = (1u64, 0u32);
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut idx = i;
        while size - 1 != idx {
            size = (size - 1) >> 1;
            seq -= 1;
            idx %= size;
        }
        1u64 << seq
    }

    /// Solves under the given assumption literals.
    ///
    /// Returns [`SolveResult::Unsat`] either when the clause set itself is
    /// inconsistent or when the assumptions conflict with it; use
    /// [`Solver::is_inconsistent`] to distinguish. Learnt clauses and
    /// variable activities persist across calls (incremental solving).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let before = self.stats;
        let result = self.solve_inner(assumptions);
        self.stats.charge_solve(&before);
        result
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        self.failed_assumptions.clear();
        self.deadline_hit = false;
        if let Some(deadline) = self.deadline {
            // An already-expired deadline gives up before searching at
            // all: a run of back-to-back solves (model enumeration,
            // per-test validity queries) must stop promptly even when the
            // individual solves are conflict-free.
            if std::time::Instant::now() >= deadline {
                self.deadline_hit = true;
                return SolveResult::Unknown;
            }
        }
        if !self.ok || self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        }
        let budget_start = self.stats.conflicts;
        let mut restart_round = 0u64;
        loop {
            let allowed = RESTART_BASE * Self::luby(restart_round);
            match self.search(allowed, assumptions, budget_start) {
                InnerResult::Sat => {
                    self.model = self.assigns.clone();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                InnerResult::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                InnerResult::Unknown => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                InnerResult::Restart => {
                    self.stats.restarts += 1;
                    restart_round += 1;
                    self.cancel_until(0);
                    self.max_learnts *= 1.02;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> InnerResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return InnerResult::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learnt(learnt);
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return InnerResult::Unknown;
                    }
                }
                if let Some(deadline) = self.deadline {
                    // Checkpointed: poll the clock only every few
                    // conflicts, so the hook costs nothing on the hot path.
                    if conflicts_here & DEADLINE_CHECK_MASK == 0
                        && std::time::Instant::now() >= deadline
                    {
                        self.deadline_hit = true;
                        return InnerResult::Unknown;
                    }
                }
                if conflicts_here >= conflicts_allowed {
                    return InnerResult::Restart;
                }
            } else {
                if self.learnts.len() as f64 - self.trail.len() as f64 > self.max_learnts {
                    self.reduce_learnts();
                }
                // Enqueue assumptions as pseudo-decisions.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.failed_assumptions = self.analyze_final(p);
                            return InnerResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        Some(p) => p,
                        None => return InnerResult::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, CRef::UNDEF);
            }
        }
    }
}

enum InnerResult {
    Sat,
    Unsat,
    Unknown,
    Restart,
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hand-written pigeonhole index math
mod tests {
    use super::*;

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let m0 = s.model_value(v[0].positive()).unwrap();
        let m1 = s.model_value(v[1].positive()).unwrap();
        assert!(m0 || m1);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[0].negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.is_inconsistent());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].positive(), v[0].negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn implication_chain() {
        // x0 and chain x_i -> x_{i+1}; final clause forces !x_last => UNSAT.
        let mut s = Solver::new();
        let v = vars(&mut s, 20);
        s.add_clause(&[v[0].positive()]);
        for i in 0..19 {
            s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
        }
        s.add_clause(&[v[19].negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_poison_solver() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        assert_eq!(
            s.solve(&[v[0].negative(), v[1].negative()]),
            SolveResult::Unsat
        );
        assert!(!s.is_inconsistent());
        assert_eq!(s.solve(&[v[0].negative()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1].positive()), Some(true));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn incremental_blocking() {
        // Enumerate all four models of two free variables via blocking.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[0].negative()]); // no-op clause
        let mut count = 0;
        while s.solve(&[]) == SolveResult::Sat {
            count += 1;
            let block: Vec<Lit> = v
                .iter()
                .map(|&var| {
                    if s.model_value(var.positive()).unwrap() {
                        var.negative()
                    } else {
                        var.positive()
                    }
                })
                .collect();
            s.add_clause(&block);
            assert!(count <= 4, "more models than possible");
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes. p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let (n, m) = (5usize, 4usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for round in 0..30 {
            let n = rng.gen_range(3..12);
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let mut clauses = Vec::new();
            for _ in 0..rng.gen_range(3..30) {
                let len = rng.gen_range(1..4);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| v[rng.gen_range(0..n)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(clause.clone());
                s.add_clause(&clause);
            }
            if s.solve(&[]) == SolveResult::Sat {
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&l| s.model_value(l) == Some(true)),
                        "round {round}: model violates {clause:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard pigeonhole with a 1-conflict budget must give up.
        let (n, m) = (7usize, 6usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn expired_deadline_returns_unknown_and_is_removable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        s.set_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_secs(1),
        ));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        assert!(s.deadline_hit());
        // Removing the deadline restores normal solving, and the flag
        // clears on the next call.
        s.set_deadline(None);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(!s.deadline_hit());
    }

    #[test]
    fn generous_deadline_does_not_perturb_solving() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        s.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.deadline_hit());
    }

    #[test]
    fn failed_assumptions_form_a_core() {
        // x0 -> x1 -> x2; assumptions [x0, !x2, x3] conflict via x0 and !x2.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive()]);
        let assumptions = [v[0].positive(), v[2].negative(), v[3].positive()];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let core: Vec<Lit> = s.failed_assumptions().to_vec();
        assert!(!core.is_empty());
        // Core literals are assumptions.
        for l in &core {
            assert!(assumptions.contains(l), "{l:?} not among assumptions");
        }
        // The irrelevant assumption x3 is not in the core.
        assert!(!core.contains(&v[3].positive()));
        // The core alone is still unsatisfiable.
        assert_eq!(s.solve(&core), SolveResult::Unsat);
        // And the solver remains usable.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn contradictory_assumptions_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[1].positive()]); // unrelated
        let assumptions = [v[0].positive(), v[0].negative()];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&v[0].positive()) || core.contains(&v[0].negative()));
        assert_eq!(s.solve(&core), SolveResult::Unsat);
    }

    #[test]
    fn root_falsified_assumption_core_is_singleton() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].negative()]); // x0 false at root
        assert_eq!(
            s.solve(&[v[0].positive(), v[1].positive()]),
            SolveResult::Unsat
        );
        let core = s.failed_assumptions().to_vec();
        assert_eq!(core, vec![v[0].positive()]);
    }

    #[test]
    fn core_on_random_instances_is_sound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..40 {
            let n = rng.gen_range(4..10);
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            for _ in 0..rng.gen_range(5..25) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..4))
                    .map(|_| v[rng.gen_range(0..n)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&clause);
            }
            let assumptions: Vec<Lit> =
                (0..n.min(5)).map(|i| v[i].lit(rng.gen_bool(0.5))).collect();
            if s.solve(&assumptions) == SolveResult::Unsat && !s.is_inconsistent() {
                let core = s.failed_assumptions().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l));
                }
                assert_eq!(s.solve(&core), SolveResult::Unsat, "core not unsat");
            }
        }
    }

    #[test]
    fn long_search_exercises_reduction_and_gc() {
        // A hard instance plus heavy enumeration: forces learnt-clause
        // reduction and arena garbage collection, then cross-checks the
        // final verdicts.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut s = Solver::new();
        let n = 60;
        let v = vars(&mut s, n);
        // Random 3-SAT near the phase transition.
        for _ in 0..250 {
            let clause: Vec<Lit> = (0..3)
                .map(|_| v[rng.gen_range(0..n)].lit(rng.gen_bool(0.5)))
                .collect();
            s.add_clause(&clause);
        }
        // Enumerate models by exact blocking until UNSAT (or 500 models).
        let mut models = 0;
        while s.solve(&[]) == SolveResult::Sat && models < 500 {
            models += 1;
            let block: Vec<Lit> = v
                .iter()
                .map(|&var| var.lit(s.model_value(var.positive()) != Some(true)))
                .collect();
            s.add_clause(&block);
        }
        // The solver must stay coherent: a fresh solver agrees on the final
        // state reachability of a few probes.
        let stats = s.stats();
        assert!(stats.conflicts > 0);
        // After exhausting models (or 500 blocks) the solver still answers
        // assumption queries consistently.
        let final_verdict = s.solve(&[]);
        let again = s.solve(&[]);
        assert_eq!(final_verdict, again, "verdict must be stable");
    }

    #[test]
    fn polarity_hint_is_respected_for_free_vars() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].positive(), v[1].positive()]); // keep it satisfiable
        for &var in &v {
            s.set_polarity(var, true);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Free variables should follow the saved phase.
        assert_eq!(s.model_value(v[2].positive()), Some(true));
        assert_eq!(s.model_value(v[3].positive()), Some(true));
    }
}
