//! A CDCL SAT solver built for the `gatediag` diagnosis library.
//!
//! The paper's SAT-based diagnosis relies on three solver capabilities that
//! Zchaff provided in 2004: *incremental* clause addition between solves
//! (blocking clauses), solving under *assumptions* (to raise the correction
//! cardinality bound without rebuilding the instance), and *model
//! extraction* (reading candidate sets off the select lines). This crate
//! implements a modern equivalent from scratch:
//!
//! * two-watched-literal Boolean constraint propagation over CSR-style
//!   *flat* watch lists (one contiguous watcher buffer with per-literal
//!   regions, compacted during garbage collection) with a dedicated
//!   binary-clause fast path — the seed's `Vec<Vec<Watcher>>` engine
//!   survives as [`LegacySolver`] for baseline measurements;
//! * first-UIP conflict-driven clause learning with basic self-subsumption
//!   minimisation;
//! * VSIDS decision heuristic with phase saving (externally seedable — the
//!   hybrid flow of paper Sec. 6 injects simulation-derived priorities via
//!   [`Solver::bump_variable`] / [`Solver::set_polarity`]);
//! * Luby restarts and activity-based learnt-clause reduction with arena
//!   garbage collection;
//! * [`enumerate_positive_subsets`] — the all-solutions loop with
//!   subset-blocking clauses used by both COV and BSAT.
//!
//! A brute-force [`mod@reference`] solver cross-checks the CDCL engine in
//! tests.
//!
//! # Examples
//!
//! ```
//! use gatediag_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative(), y.negative()]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! let mx = solver.model_value(x.positive()).unwrap();
//! let my = solver.model_value(y.positive()).unwrap();
//! assert_ne!(mx, my);
//! ```
//!
//! The diagnosis loop's shape — enumerate all minimal "select" subsets
//! under an at-least-one constraint, exactly how BSAT reads candidate
//! sets off the select lines:
//!
//! ```
//! use gatediag_sat::{enumerate_positive_subsets, Solver};
//!
//! let mut solver = Solver::new();
//! let selects: Vec<_> = (0..3).map(|_| solver.new_var()).collect();
//! // At least one site must be selected (some gate must be corrected).
//! solver.add_clause(&[selects[0].positive(), selects[1].positive(), selects[2].positive()]);
//! // Sites 0 and 2 conflict (say, incompatible corrections).
//! solver.add_clause(&[selects[0].negative(), selects[2].negative()]);
//! let out = enumerate_positive_subsets(&mut solver, &selects, &[], 100);
//! // Every reported selection satisfies the instance, and subset
//! // blocking guarantees the reported sets form an antichain (no
//! // solution is a superset of an earlier one).
//! assert!(out.complete && !out.solutions.is_empty());
//! for (i, sol) in out.solutions.iter().enumerate() {
//!     assert!(!sol.is_empty());
//!     assert!(!(sol.contains(&selects[0]) && sol.contains(&selects[2])));
//!     for earlier in &out.solutions[..i] {
//!         assert!(!earlier.iter().all(|v| sol.contains(v)));
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clause;
mod dimacs;
mod enumerate;
mod heap;
pub mod legacy;
mod lit;
pub mod reference;
mod solver;

pub use dimacs::{parse_dimacs, write_dimacs};
pub use enumerate::{enumerate_positive_subsets, EnumOutcome};
pub use legacy::LegacySolver;
pub use lit::{LBool, Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
