//! All-solutions enumeration with blocking clauses.
//!
//! Both diagnosis engines that enumerate (`COV` covers, `BSAT` corrections)
//! project models onto a set of *selector* variables and block the positive
//! subset: after reporting `A = {v : model(v) = 1}`, the clause
//! `⋁_{v∈A} ¬v` excludes `A` and every superset. Combined with iterating
//! the cardinality bound `k = 1..K`, this yields exactly the
//! irredundant solutions (paper Lemma 3).

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Result of an enumeration run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumOutcome {
    /// The projected solutions, in discovery order.
    pub solutions: Vec<Vec<Var>>,
    /// `false` if the run stopped because `limit` was reached or the solver
    /// gave up (conflict budget / deadline).
    pub complete: bool,
    /// `true` when the stop was the *solver* giving up
    /// ([`SolveResult::Unknown`]: conflict budget or deadline) rather than
    /// the enumeration `limit`; lets callers report the right truncation
    /// reason. Always `false` when `complete` is `true`.
    pub gave_up: bool,
}

/// Enumerates satisfying assignments projected onto `selectors`, blocking
/// each positive subset (subset-minimal style, see module docs).
///
/// Every reported solution is the set of selector variables assigned true.
/// Enumeration stops after `limit` solutions; blocking clauses stay in the
/// solver, so subsequent calls (e.g. with a larger cardinality assumption)
/// never repeat or cover old solutions.
///
/// If a model assigns *no* selector true, the empty solution is reported
/// and enumeration stops (its blocking clause would be the empty clause).
pub fn enumerate_positive_subsets(
    solver: &mut Solver,
    selectors: &[Var],
    assumptions: &[Lit],
    limit: usize,
) -> EnumOutcome {
    let mut solutions = Vec::new();
    loop {
        if solutions.len() >= limit {
            return EnumOutcome {
                solutions,
                complete: false,
                gave_up: false,
            };
        }
        match solver.solve(assumptions) {
            SolveResult::Sat => {
                let subset: Vec<Var> = selectors
                    .iter()
                    .copied()
                    .filter(|v| solver.model_value(v.positive()) == Some(true))
                    .collect();
                let block: Vec<Lit> = subset.iter().map(|v| v.negative()).collect();
                solutions.push(subset);
                if block.is_empty() {
                    // Empty solution: nothing needs selecting; blocking it
                    // would empty the clause set.
                    return EnumOutcome {
                        solutions,
                        complete: true,
                        gave_up: false,
                    };
                }
                solver.add_clause(&block);
            }
            SolveResult::Unsat => {
                return EnumOutcome {
                    solutions,
                    complete: true,
                    gave_up: false,
                }
            }
            SolveResult::Unknown => {
                return EnumOutcome {
                    solutions,
                    complete: false,
                    gave_up: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_covers_of_two_sets() {
        // Sets {a, b} and {b, c}: minimal hitting sets are {b}, {a,c}.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[b.positive(), c.positive()]);
        // Size bound 1 first: {b} is the only singleton cover.
        // (No cardinality constraint here; enumeration blocks supersets, so
        // we emulate the k-loop by checking containment instead.)
        let out = enumerate_positive_subsets(&mut s, &[a, b, c], &[], 100);
        assert!(out.complete);
        // All solutions hit both sets.
        for sol in &out.solutions {
            assert!(sol.contains(&a) || sol.contains(&b));
            assert!(sol.contains(&b) || sol.contains(&c));
        }
        // No solution is a superset of an earlier one.
        for i in 0..out.solutions.len() {
            for j in 0..i {
                let earlier = &out.solutions[j];
                let later = &out.solutions[i];
                assert!(
                    !earlier.iter().all(|v| later.contains(v)),
                    "solution {later:?} is a superset of {earlier:?}"
                );
            }
        }
    }

    #[test]
    fn empty_solution_short_circuits() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        // Project on a variable set disjoint from the constraint: the first
        // model may or may not set them; force both false via polarity.
        let c = s.new_var();
        s.set_polarity(c, false);
        let out = enumerate_positive_subsets(&mut s, &[c], &[], 10);
        assert!(out.complete);
        assert_eq!(out.solutions, vec![Vec::<Var>::new()]);
    }

    #[test]
    fn limit_truncates() {
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let clause: Vec<Lit> = vs.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
        let out = enumerate_positive_subsets(&mut s, &vs, &[], 2);
        assert!(!out.complete);
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn respects_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        let out = enumerate_positive_subsets(&mut s, &[a, b], &[a.negative()], 10);
        assert!(out.complete);
        for sol in &out.solutions {
            assert!(!sol.contains(&a), "assumption !a violated by {sol:?}");
        }
        assert!(out.solutions.iter().any(|sol| sol.contains(&b)));
    }
}
