//! Brute-force reference solver used to cross-check the CDCL engine.
//!
//! Exhaustive enumeration over all `2^n` assignments — only suitable for
//! tiny instances, which is exactly what the property tests use it for.

use crate::lit::{Lit, Var};

fn clause_satisfied(clause: &[Lit], assignment: u64) -> bool {
    clause.iter().any(|l| {
        let bit = assignment >> l.var().index() & 1 == 1;
        bit == l.is_positive()
    })
}

/// Finds some satisfying assignment by exhaustive search.
///
/// Returns the assignment as a `Vec<bool>` indexed by variable, or `None`
/// if unsatisfiable.
///
/// # Panics
///
/// Panics if `num_vars > 24` (the search is exponential).
pub fn solve_brute(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 24, "brute-force limited to 24 variables");
    for assignment in 0u64..1 << num_vars {
        if clauses.iter().all(|c| clause_satisfied(c, assignment)) {
            return Some((0..num_vars).map(|i| assignment >> i & 1 == 1).collect());
        }
    }
    None
}

/// Counts all satisfying assignments by exhaustive search.
///
/// # Panics
///
/// Panics if `num_vars > 24`.
pub fn count_models_brute(num_vars: usize, clauses: &[Vec<Lit>]) -> u64 {
    assert!(num_vars <= 24, "brute-force limited to 24 variables");
    (0u64..1 << num_vars)
        .filter(|&a| clauses.iter().all(|c| clause_satisfied(c, a)))
        .count() as u64
}

/// Enumerates, over the projection `selectors`, every subset-minimal set of
/// selectors assigned true in some model — the brute-force mirror of
/// [`enumerate_positive_subsets`](crate::enumerate_positive_subsets).
///
/// # Panics
///
/// Panics if `num_vars > 24`.
pub fn minimal_positive_subsets_brute(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    selectors: &[Var],
) -> Vec<Vec<Var>> {
    assert!(num_vars <= 24, "brute-force limited to 24 variables");
    let mut subsets: Vec<Vec<Var>> = Vec::new();
    for assignment in 0u64..1 << num_vars {
        if clauses.iter().all(|c| clause_satisfied(c, assignment)) {
            let subset: Vec<Var> = selectors
                .iter()
                .copied()
                .filter(|v| assignment >> v.index() & 1 == 1)
                .collect();
            if !subsets.iter().any(|s| s == &subset) {
                subsets.push(subset);
            }
        }
    }
    // Keep only subset-minimal ones.
    let minimal: Vec<Vec<Var>> = subsets
        .iter()
        .filter(|s| {
            !subsets
                .iter()
                .any(|t| t.len() < s.len() && t.iter().all(|v| s.contains(v)))
        })
        .cloned()
        .collect();
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn brute_agrees_on_tiny_instances() {
        // (a | b) & (!a | b) => b must hold; 2 models.
        let clauses = vec![
            vec![v(0).positive(), v(1).positive()],
            vec![v(0).negative(), v(1).positive()],
        ];
        let m = solve_brute(2, &clauses).unwrap();
        assert!(m[1]);
        assert_eq!(count_models_brute(2, &clauses), 2);
    }

    #[test]
    fn brute_unsat() {
        let clauses = vec![vec![v(0).positive()], vec![v(0).negative()]];
        assert!(solve_brute(1, &clauses).is_none());
        assert_eq!(count_models_brute(1, &clauses), 0);
    }

    #[test]
    fn minimal_subsets() {
        // Hitting sets of {a,b} and {b,c}.
        let clauses = vec![
            vec![v(0).positive(), v(1).positive()],
            vec![v(1).positive(), v(2).positive()],
        ];
        let minimal = minimal_positive_subsets_brute(3, &clauses, &[v(0), v(1), v(2)]);
        assert!(minimal.contains(&vec![v(1)]));
        assert!(minimal.contains(&vec![v(0), v(2)]));
        assert_eq!(minimal.len(), 2);
    }
}
