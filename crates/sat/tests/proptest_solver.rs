//! Property tests: the CDCL solver against exhaustive brute force on random
//! small instances, including incremental usage patterns.

use gatediag_sat::reference::{count_models_brute, minimal_positive_subsets_brute, solve_brute};
use gatediag_sat::{enumerate_positive_subsets, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random CNF instance over `num_vars` variables.
#[derive(Clone, Debug)]
struct RandomCnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = RandomCnf> {
    (2usize..=max_vars).prop_flat_map(move |num_vars| {
        let lit = (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Var::from_index(v).lit(pos));
        let clause = prop::collection::vec(lit, 1..=3);
        prop::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
    })
}

fn load(cnf: &RandomCnf) -> Solver {
    let mut solver = Solver::new();
    for _ in 0..cnf.num_vars {
        solver.new_var();
    }
    for clause in &cnf.clauses {
        solver.add_clause(clause);
    }
    solver
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL verdict must match brute force, and SAT models must satisfy
    /// every clause.
    #[test]
    fn cdcl_matches_brute_force(cnf in cnf_strategy(10, 40)) {
        let brute = solve_brute(cnf.num_vars, &cnf.clauses);
        let mut solver = load(&cnf);
        match solver.solve(&[]) {
            SolveResult::Sat => {
                prop_assert!(brute.is_some(), "CDCL said SAT, brute force says UNSAT");
                for clause in &cnf.clauses {
                    prop_assert!(
                        clause.iter().any(|&l| solver.model_value(l) == Some(true)),
                        "model violates clause {clause:?}"
                    );
                }
            }
            SolveResult::Unsat => prop_assert!(brute.is_none(), "CDCL said UNSAT, brute force found {brute:?}"),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// Solving under assumptions equals solving the instance with the
    /// assumptions added as unit clauses.
    #[test]
    fn assumptions_equal_units(cnf in cnf_strategy(8, 30), pattern in any::<u16>()) {
        let assumptions: Vec<Lit> = (0..cnf.num_vars.min(4))
            .map(|i| Var::from_index(i).lit(pattern >> i & 1 == 1))
            .collect();
        let mut augmented = cnf.clauses.clone();
        for &a in &assumptions {
            augmented.push(vec![a]);
        }
        let brute = solve_brute(cnf.num_vars, &augmented);
        let mut solver = load(&cnf);
        let result = solver.solve(&assumptions);
        match result {
            SolveResult::Sat => prop_assert!(brute.is_some()),
            SolveResult::Unsat => prop_assert!(brute.is_none()),
            SolveResult::Unknown => prop_assert!(false),
        }
        // The solver must stay usable without assumptions afterwards.
        let unconstrained = solver.solve(&[]);
        let brute_plain = solve_brute(cnf.num_vars, &cnf.clauses);
        prop_assert_eq!(unconstrained == SolveResult::Sat, brute_plain.is_some());
    }

    /// Model enumeration by exact blocking counts exactly the brute-force
    /// model count.
    #[test]
    fn exact_enumeration_counts_models(cnf in cnf_strategy(7, 25)) {
        let expected = count_models_brute(cnf.num_vars, &cnf.clauses);
        let mut solver = load(&cnf);
        let all_vars: Vec<Var> = (0..cnf.num_vars).map(Var::from_index).collect();
        let mut count = 0u64;
        while solver.solve(&[]) == SolveResult::Sat {
            count += 1;
            prop_assert!(count <= expected, "enumerated more models than exist");
            let block: Vec<Lit> = all_vars
                .iter()
                .map(|&v| v.lit(solver.model_value(v.positive()) != Some(true)))
                .collect();
            solver.add_clause(&block);
        }
        prop_assert_eq!(count, expected);
    }

    /// Subset enumeration: no later solution repeats or extends an earlier
    /// one (the blocking-clause guarantee), every brute-force minimal subset
    /// is found, and every solution is consistent with some model.
    ///
    /// Note subset enumeration alone does NOT guarantee global minimality —
    /// an early large solution may strictly contain a later small one. The
    /// paper obtains minimality (Lemma 3) by iterating the cardinality
    /// bound k = 1..K, which the diagnosis engines layer on top.
    #[test]
    fn subset_enumeration_blocks_and_completes(cnf in cnf_strategy(7, 20)) {
        let selectors: Vec<Var> = (0..cnf.num_vars).map(Var::from_index).collect();
        let expected = minimal_positive_subsets_brute(cnf.num_vars, &cnf.clauses, &selectors);
        let mut solver = load(&cnf);
        let out = enumerate_positive_subsets(&mut solver, &selectors, &[], 10_000);
        prop_assert!(out.complete);
        // Later solutions never contain an earlier one.
        for (i, later) in out.solutions.iter().enumerate() {
            for earlier in &out.solutions[..i] {
                prop_assert!(
                    !earlier.iter().all(|v| later.contains(v)),
                    "later {later:?} is a superset of earlier {earlier:?}"
                );
            }
        }
        for minimal in &expected {
            prop_assert!(
                out.solutions.iter().any(|s| s == minimal),
                "minimal subset {minimal:?} missing from enumeration {:?}",
                out.solutions
            );
        }
        for sol in &out.solutions {
            prop_assert!(
                expected.iter().any(|m| m.iter().all(|v| sol.contains(v))),
                "enumerated {sol:?} contains no minimal subset"
            );
        }
    }

    /// Incremental solving: adding clauses one batch at a time gives the
    /// same verdicts as fresh solvers on each prefix.
    #[test]
    fn incremental_prefixes(cnf in cnf_strategy(8, 24)) {
        let mut incremental = Solver::new();
        for _ in 0..cnf.num_vars {
            incremental.new_var();
        }
        for (i, clause) in cnf.clauses.iter().enumerate() {
            incremental.add_clause(clause);
            let verdict = incremental.solve(&[]);
            let brute = solve_brute(cnf.num_vars, &cnf.clauses[..=i]);
            match verdict {
                SolveResult::Sat => prop_assert!(brute.is_some(), "prefix {i}"),
                SolveResult::Unsat => prop_assert!(brute.is_none(), "prefix {i}"),
                SolveResult::Unknown => prop_assert!(false),
            }
            if verdict == SolveResult::Unsat {
                break;
            }
        }
    }
}
