//! Edge cases around conflict budgets, restarts and assumptions.
//!
//! The diagnosis engines drive the solver incrementally — budgeted solves
//! that give up ([`SolveResult::Unknown`]), get resumed, and interleave
//! with assumption probes. These tests pin the corner interactions:
//! budget exhaustion landing mid-restart-cycle, re-solving after
//! `Unknown`, and assumptions interacting with backtracking state left by
//! an aborted run — all cross-checked against the brute-force
//! [`reference`](gatediag_sat::reference) solver.
#![allow(clippy::needless_range_loop)] // hand-written pigeonhole index math

use gatediag_sat::reference::{count_models_brute, solve_brute};
use gatediag_sat::{Lit, SolveResult, Solver, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A pigeonhole instance: hard enough to burn hundreds of conflicts.
fn pigeonhole(solver: &mut Solver, n: usize, m: usize) -> Vec<Vec<Var>> {
    let p: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| solver.new_var()).collect())
        .collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        solver.add_clause(&clause);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                solver.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
            }
        }
    }
    p
}

fn random_3sat(rng: &mut ChaCha8Rng, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn load(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    s
}

#[test]
fn budget_exhaustion_mid_restart_cycle() {
    // The restart schedule is Luby with base 100, so a budget of 150
    // exhausts *after* the first restart fired but before the second
    // inner search completes — the abort lands mid-cycle, not neatly at
    // a restart boundary.
    let mut s = Solver::new();
    pigeonhole(&mut s, 8, 7);
    s.set_conflict_budget(Some(150));
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
    let stats = s.stats();
    assert!(
        stats.restarts >= 1,
        "150-conflict budget must cross the first 100-conflict restart"
    );
    assert!(stats.conflicts >= 150);
    // Giving up is not a verdict: the solver must not be inconsistent.
    assert!(!s.is_inconsistent());
    // Lifting the budget and resuming (learnt clauses persist) still
    // reaches the correct verdict.
    s.set_conflict_budget(None);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    assert!(s.is_inconsistent());
}

#[test]
fn repeated_budgeted_solves_converge_to_reference_verdict() {
    // Drip-feed tiny budgets: every Unknown resumes with the learnt
    // clauses of the previous attempt, so the verdict must eventually
    // arrive and agree with brute force.
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    for round in 0..20 {
        let num_vars = rng.gen_range(8..14);
        let num_clauses = rng.gen_range(30..60);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let expected = if solve_brute(num_vars, &clauses).is_some() {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        let mut s = load(num_vars, &clauses);
        s.set_conflict_budget(Some(3));
        let mut attempts = 0;
        let verdict = loop {
            attempts += 1;
            assert!(attempts < 10_000, "round {round}: no convergence");
            match s.solve(&[]) {
                SolveResult::Unknown => continue,
                verdict => break verdict,
            }
        };
        assert_eq!(verdict, expected, "round {round}: wrong final verdict");
    }
}

#[test]
fn solver_stays_usable_after_unknown() {
    // After an aborted solve the solver must accept new clauses at the
    // root and answer subsequent queries correctly.
    let mut s = Solver::new();
    let p = pigeonhole(&mut s, 7, 6);
    s.set_conflict_budget(Some(2));
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
    // Root-level clause addition after the aborted run.
    assert!(s.add_clause(&[p[0][0].positive()]));
    s.set_conflict_budget(None);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn assumptions_after_unknown_agree_with_reference() {
    // An aborted run leaves learnt clauses and saved phases behind;
    // assumption probes afterwards must still match brute force on the
    // assumption-augmented formula.
    let mut rng = ChaCha8Rng::seed_from_u64(83);
    for round in 0..15 {
        let num_vars = rng.gen_range(8..14);
        let num_clauses = rng.gen_range(25..55);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let mut s = load(num_vars, &clauses);
        s.set_conflict_budget(Some(1));
        let _ = s.solve(&[]); // likely Unknown; whatever it is, keep going
        s.set_conflict_budget(None);
        for probe in 0..6 {
            let assumptions: Vec<Lit> = (0..rng.gen_range(1..4))
                .map(|_| Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                .collect();
            if s.is_inconsistent() {
                break;
            }
            let mut augmented = clauses.clone();
            for &a in &assumptions {
                augmented.push(vec![a]);
            }
            let expected = if solve_brute(num_vars, &augmented).is_some() {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(
                s.solve(&assumptions),
                expected,
                "round {round} probe {probe}: assumptions {assumptions:?}"
            );
            if expected == SolveResult::Unsat && !s.is_inconsistent() {
                // The failed-assumption core must itself be unsat.
                let core = s.failed_assumptions().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l), "{l:?} not an assumption");
                }
                assert_eq!(s.solve(&core), SolveResult::Unsat, "core not unsat");
            }
        }
    }
}

#[test]
fn budget_exhaustion_under_assumptions_is_resumable() {
    // Budget abort while assumption pseudo-decisions are on the trail:
    // cancel_until must unwind them cleanly, and the next (unbudgeted)
    // call under the same assumptions must produce the real verdict.
    let mut s = Solver::new();
    let p = pigeonhole(&mut s, 7, 6);
    let assumptions = [p[0][0].positive(), p[1][1].positive()];
    s.set_conflict_budget(Some(1));
    let first = s.solve(&assumptions);
    assert_ne!(first, SolveResult::Sat, "PHP(7,6) cannot be satisfiable");
    s.set_conflict_budget(None);
    assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
    // The conflict may have been attributed to the assumptions (a core)
    // or discovered at the root; either way, the assumption-free solve
    // must now prove the instance unsat outright.
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    assert!(s.is_inconsistent());
}

#[test]
fn model_after_budgeted_detour_satisfies_all_clauses() {
    // Unknown-then-Sat: the eventual model must satisfy every clause
    // (guards against stale trail/phase state corrupting the model).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..20 {
        let num_vars = rng.gen_range(10..16);
        // Under-constrained: mostly satisfiable.
        let num_clauses = rng.gen_range(15..35);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        if count_models_brute(num_vars, &clauses) == 0 {
            continue;
        }
        let mut s = load(num_vars, &clauses);
        s.set_conflict_budget(Some(1));
        let _ = s.solve(&[]);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for clause in &clauses {
            assert!(
                clause.iter().any(|&l| s.model_value(l) == Some(true)),
                "model violates {clause:?}"
            );
        }
    }
}
