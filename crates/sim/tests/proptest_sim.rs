//! Property tests for the simulation engines: all four engines agree with
//! the scalar reference on random circuits, vectors and forcings.

use gatediag_netlist::{GateId, RandomCircuitSpec};
use gatediag_sim::{
    pack_vectors, simulate, simulate_forced, simulate_packed_forced, simulate_tv,
    simulate_tv_packed, unpack_lane, DeltaSim, Tv,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Workbench {
    seed: u64,
    vector_bits: u64,
    force_bits: u8,
}

fn workbench() -> impl Strategy<Value = Workbench> {
    (0u64..3_000, any::<u64>(), any::<u8>()).prop_map(|(seed, vector_bits, force_bits)| {
        Workbench {
            seed,
            vector_bits,
            force_bits,
        }
    })
}

fn circuit_of(seed: u64) -> gatediag_netlist::Circuit {
    RandomCircuitSpec::new(6, 3, 40).seed(seed).generate()
}

fn vector_of(circuit: &gatediag_netlist::Circuit, bits: u64) -> Vec<bool> {
    (0..circuit.inputs().len())
        .map(|i| bits >> (i % 64) & 1 == 1)
        .collect()
}

fn forcings(circuit: &gatediag_netlist::Circuit, bits: u8) -> Vec<(GateId, bool)> {
    let functional: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect();
    (0..3usize)
        .filter(|i| bits >> i & 1 == 1)
        .map(|i| {
            let g = functional[(i * 7 + bits as usize) % functional.len()];
            (g, bits >> (i + 4) & 1 == 1)
        })
        .filter({
            // Deduplicate gates, keeping the first choice.
            let mut seen = std::collections::HashSet::new();
            move |(g, _)| seen.insert(*g)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packed simulation lane-by-lane equals scalar simulation, with and
    /// without forcings.
    #[test]
    fn packed_equals_scalar(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let forced = forcings(&c, w.force_bits);
        let packed_force: Vec<(GateId, u64)> = forced
            .iter()
            .map(|&(g, v)| (g, if v { !0u64 } else { 0 }))
            .collect();
        let words = simulate_packed_forced(&c, &pack_vectors(&c, &[vector.clone()]), &packed_force);
        let scalar = simulate_forced(&c, &vector, &forced);
        prop_assert_eq!(unpack_lane(&words, 0), scalar);
    }

    /// Three-valued simulation without X equals Boolean simulation; with X
    /// injected, known values never contradict the Boolean run.
    #[test]
    fn tv_is_conservative(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let inject: Vec<GateId> = forcings(&c, w.force_bits).iter().map(|&(g, _)| g).collect();
        let tv_in: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
        let tv = simulate_tv(&c, &tv_in, &inject);
        let boolean = simulate(&c, &vector);
        for (id, _) in c.iter() {
            if inject.contains(&id) {
                prop_assert_eq!(tv[id.index()], Tv::X);
            } else if let Some(v) = tv[id.index()].to_bool() {
                // A known three-valued value must match SOME consistent
                // extension. Setting the injected gates to their Boolean
                // simulation values is one extension, so the value must
                // match the plain Boolean simulation.
                prop_assert_eq!(v, boolean[id.index()], "gate {}", id);
            }
        }
    }

    /// Packed TV equals scalar TV on every used lane.
    #[test]
    fn packed_tv_equals_scalar_tv(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let inject: Vec<GateId> = forcings(&c, w.force_bits).iter().map(|&(g, _)| g).collect();
        let masked: Vec<(GateId, u64)> = inject.iter().map(|&g| (g, 0b10)).collect();
        let packed = simulate_tv_packed(&c, &vector, &masked);
        let tv_in: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
        let with_x = simulate_tv(&c, &tv_in, &inject);
        let without_x = simulate_tv(&c, &tv_in, &[]);
        for (id, _) in c.iter() {
            prop_assert_eq!(packed[id.index()].lane(1), with_x[id.index()]);
            prop_assert_eq!(packed[id.index()].lane(0), without_x[id.index()]);
        }
    }

    /// DeltaSim under arbitrary force/unforce sequences tracks full
    /// forced resimulation.
    #[test]
    fn delta_sim_tracks_reference(w in workbench(), toggles in prop::collection::vec((any::<u8>(), any::<bool>()), 1..12)) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let functional: Vec<GateId> = c
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sim = DeltaSim::new(&c, &vector);
        let mut active: Vec<(GateId, bool)> = Vec::new();
        for (pick, value) in toggles {
            let g = functional[pick as usize % functional.len()];
            active.retain(|&(x, _)| x != g);
            if value || active.len() % 2 == 0 {
                active.push((g, value));
                sim.force(g, value);
            } else {
                sim.unforce(g);
            }
            sim.propagate();
            let reference = simulate_forced(&c, &vector, &active);
            prop_assert_eq!(sim.values(), &reference[..]);
        }
    }
}
