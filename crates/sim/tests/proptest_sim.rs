//! Property tests for the simulation engines: all four engines agree with
//! the scalar reference on random circuits, vectors and forcings.

use gatediag_netlist::{unroll, GateId, GateKind, RandomCircuitSpec, StateView};
use gatediag_sim::{
    pack_vectors, pack_vectors_into, simulate, simulate_forced, simulate_packed_forced,
    simulate_sequence, simulate_tv, simulate_tv_packed, unpack_lane, DeltaSim, PackedSim, Tv,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Workbench {
    seed: u64,
    vector_bits: u64,
    force_bits: u8,
}

fn workbench() -> impl Strategy<Value = Workbench> {
    (0u64..3_000, any::<u64>(), any::<u8>()).prop_map(|(seed, vector_bits, force_bits)| Workbench {
        seed,
        vector_bits,
        force_bits,
    })
}

fn circuit_of(seed: u64) -> gatediag_netlist::Circuit {
    RandomCircuitSpec::new(6, 3, 40).seed(seed).generate()
}

fn vector_of(circuit: &gatediag_netlist::Circuit, bits: u64) -> Vec<bool> {
    (0..circuit.inputs().len())
        .map(|i| bits >> (i % 64) & 1 == 1)
        .collect()
}

fn forcings(circuit: &gatediag_netlist::Circuit, bits: u8) -> Vec<(GateId, bool)> {
    let functional: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect();
    (0..3usize)
        .filter(|i| bits >> i & 1 == 1)
        .map(|i| {
            let g = functional[(i * 7 + bits as usize) % functional.len()];
            (g, bits >> (i + 4) & 1 == 1)
        })
        .filter({
            // Deduplicate gates, keeping the first choice.
            let mut seen = std::collections::HashSet::new();
            move |(g, _)| seen.insert(*g)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packed simulation lane-by-lane equals scalar simulation, with and
    /// without forcings.
    #[test]
    fn packed_equals_scalar(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let forced = forcings(&c, w.force_bits);
        let packed_force: Vec<(GateId, u64)> = forced
            .iter()
            .map(|&(g, v)| (g, if v { !0u64 } else { 0 }))
            .collect();
        let words =
            simulate_packed_forced(&c, &pack_vectors(&c, std::slice::from_ref(&vector)), &packed_force);
        let scalar = simulate_forced(&c, &vector, &forced);
        prop_assert_eq!(unpack_lane(&words, 0), scalar);
    }

    /// Three-valued simulation without X equals Boolean simulation; with X
    /// injected, known values never contradict the Boolean run.
    #[test]
    fn tv_is_conservative(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let inject: Vec<GateId> = forcings(&c, w.force_bits).iter().map(|&(g, _)| g).collect();
        let tv_in: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
        let tv = simulate_tv(&c, &tv_in, &inject);
        let boolean = simulate(&c, &vector);
        for (id, _) in c.iter() {
            if inject.contains(&id) {
                prop_assert_eq!(tv[id.index()], Tv::X);
            } else if let Some(v) = tv[id.index()].to_bool() {
                // A known three-valued value must match SOME consistent
                // extension. Setting the injected gates to their Boolean
                // simulation values is one extension, so the value must
                // match the plain Boolean simulation.
                prop_assert_eq!(v, boolean[id.index()], "gate {}", id);
            }
        }
    }

    /// Packed TV equals scalar TV on every used lane.
    #[test]
    fn packed_tv_equals_scalar_tv(w in workbench()) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let inject: Vec<GateId> = forcings(&c, w.force_bits).iter().map(|&(g, _)| g).collect();
        let masked: Vec<(GateId, u64)> = inject.iter().map(|&g| (g, 0b10)).collect();
        let packed = simulate_tv_packed(&c, &vector, &masked);
        let tv_in: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
        let with_x = simulate_tv(&c, &tv_in, &inject);
        let without_x = simulate_tv(&c, &tv_in, &[]);
        for (id, _) in c.iter() {
            prop_assert_eq!(packed[id.index()].lane(1), with_x[id.index()]);
            prop_assert_eq!(packed[id.index()].lane(0), without_x[id.index()]);
        }
    }

    /// DeltaSim under arbitrary force/unforce sequences tracks full
    /// forced resimulation.
    #[test]
    fn delta_sim_tracks_reference(w in workbench(), toggles in prop::collection::vec((any::<u8>(), any::<bool>()), 1..12)) {
        let c = circuit_of(w.seed);
        let vector = vector_of(&c, w.vector_bits);
        let functional: Vec<GateId> = c
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sim = DeltaSim::new(&c, &vector);
        let mut active: Vec<(GateId, bool)> = Vec::new();
        for (pick, value) in toggles {
            let g = functional[pick as usize % functional.len()];
            active.retain(|&(x, _)| x != g);
            if value || active.len().is_multiple_of(2) {
                active.push((g, value));
                sim.force(g, value);
            } else {
                sim.unforce(g);
            }
            sim.propagate();
            let reference = simulate_forced(&c, &vector, &active);
            prop_assert_eq!(sim.values(), &reference[..]);
        }
    }

    /// `PackedSim` with more than 64 patterns (multi-word) and a random
    /// forced set is lane-for-lane identical to the scalar reference.
    #[test]
    fn packed_sim_multiword_equals_scalar(
        seed in 0u64..3_000,
        pattern_count in 65usize..200,
        lane_bits in any::<u64>(),
        force_bits in any::<u8>(),
    ) {
        let c = circuit_of(seed);
        let vectors: Vec<Vec<bool>> = (0..pattern_count)
            .map(|p| vector_of(&c, lane_bits.rotate_left(p as u32) ^ p as u64))
            .collect();
        let forced = forcings(&c, force_bits);
        let mut packed = Vec::new();
        let words = pack_vectors_into(&c, &vectors, &mut packed);
        prop_assert!(words > 1, "must exercise the multi-word path");
        let mut sim = PackedSim::new(&c);
        sim.reset(words);
        sim.set_input_words(&packed);
        for &(g, v) in &forced {
            // Alternate the forced value across lanes: even lanes get `v`,
            // odd lanes get `!v`.
            let word = if v { 0x5555_5555_5555_5555u64 } else { !0x5555_5555_5555_5555u64 };
            let per_gate: Vec<u64> = (0..words).map(|_| word).collect();
            sim.force(g, &per_gate);
        }
        sim.sweep();
        for (lane, vector) in vectors.iter().enumerate() {
            let lane_forced: Vec<(GateId, bool)> = forced
                .iter()
                .map(|&(g, v)| (g, if lane % 2 == 0 { v } else { !v }))
                .collect();
            let reference = simulate_forced(&c, vector, &lane_forced);
            prop_assert_eq!(sim.unpack_lane(lane), reference, "lane {}", lane);
        }
    }

    /// Incremental propagation after force / clear / kind-override edits
    /// always lands on the same values as a from-scratch sweep, which is
    /// itself anchored to the scalar reference elsewhere.
    #[test]
    fn packed_sim_incremental_equals_fresh_sweep(
        seed in 0u64..3_000,
        lane_bits in any::<u64>(),
        edits in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
    ) {
        let c = circuit_of(seed);
        let vectors: Vec<Vec<bool>> = (0..96)
            .map(|p| vector_of(&c, lane_bits.wrapping_mul(p as u64 + 1)))
            .collect();
        let functional: Vec<GateId> = c
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut packed = Vec::new();
        let words = pack_vectors_into(&c, &vectors, &mut packed);
        let mut sim = PackedSim::new(&c);
        sim.reset(words);
        sim.set_input_words(&packed);
        sim.sweep();
        // Mirror engine: same overlay state, but recomputed from scratch
        // with a full sweep every time.
        let mut fresh = PackedSim::new(&c);
        let mut forced_now: Vec<(GateId, bool)> = Vec::new();
        let mut kinds_now: Vec<(GateId, GateKind)> = Vec::new();
        for (pick, action, value) in edits {
            let g = functional[pick as usize % functional.len()];
            match action % 4 {
                0 => {
                    forced_now.retain(|&(x, _)| x != g);
                    forced_now.push((g, value));
                    sim.force_all_lanes(g, value);
                }
                1 => {
                    let menu = GateKind::compatible_with_arity(c.gate(g).arity());
                    let kind = menu[action as usize % menu.len()];
                    kinds_now.retain(|&(x, _)| x != g);
                    kinds_now.push((g, kind));
                    sim.override_kind(g, kind);
                }
                2 => {
                    forced_now.clear();
                    sim.clear_forced();
                }
                _ => {
                    kinds_now.clear();
                    sim.clear_kind_overrides();
                }
            }
            sim.propagate();
            fresh.reset(words);
            fresh.set_input_words(&packed);
            for &(fg, fv) in &forced_now {
                fresh.force_all_lanes(fg, fv);
            }
            for &(kg, kk) in &kinds_now {
                fresh.override_kind(kg, kk);
            }
            fresh.sweep();
            prop_assert_eq!(sim.values(), fresh.values());
        }
    }

    /// Sequential simulation equals combinational simulation of the
    /// time-frame-expanded circuit: for every frame and every gate, the
    /// unrolled instance computes exactly the value the scalar
    /// frame-by-frame `simulate_sequence` assigns. This is the semantic
    /// bridge the sequential SAT engine rests on — diagnosing the unrolled
    /// circuit IS diagnosing the sequential one.
    #[test]
    fn unrolled_simulation_equals_simulate_sequence(
        seed in 0u64..3_000,
        latches in 1usize..6,
        frames in 1usize..4,
        bits in any::<u64>(),
    ) {
        let c = RandomCircuitSpec::new(6, 3, 40)
            .latches(latches)
            .seed(seed)
            .generate();
        let view = StateView::new(&c);
        let initial_state: Vec<bool> = (0..view.num_latches())
            .map(|i| bits >> (i % 64) & 1 == 1)
            .collect();
        let vectors: Vec<Vec<bool>> = (0..frames)
            .map(|f| {
                (0..view.real_inputs().len())
                    .map(|i| bits.rotate_left(7 * f as u32 + 13) >> (i % 64) & 1 == 1)
                    .collect()
            })
            .collect();
        let scalar = simulate_sequence(&c, &initial_state, &vectors);

        let u = unroll(&c, frames);
        let pos_of = |id: GateId| {
            u.circuit
                .inputs()
                .iter()
                .position(|&p| p == id)
                .expect("an unrolled input")
        };
        let mut flat = vec![false; u.circuit.inputs().len()];
        // Frame 0's latch q instances are the init_* pseudo-inputs.
        for (slot, latch) in c.latches().iter().enumerate() {
            flat[pos_of(u.instance(0, latch.q))] = initial_state[slot];
        }
        for (f, vector) in vectors.iter().enumerate() {
            for (i, &pi) in view.real_inputs().iter().enumerate() {
                flat[pos_of(u.instance(f, pi))] = vector[i];
            }
        }
        let values = simulate(&u.circuit, &flat);
        for (f, frame_values) in scalar.iter().enumerate() {
            for (id, _) in c.iter() {
                prop_assert_eq!(
                    values[u.instance(f, id).index()],
                    frame_values[id.index()],
                    "frame {} gate {}",
                    f,
                    id
                );
            }
        }
    }

    /// The buffer-reusing multi-word packer agrees with the legacy 64-lane
    /// packer on its shared domain.
    #[test]
    fn pack_vectors_into_matches_legacy(seed in 0u64..3_000, count in 1usize..=64, lane_bits in any::<u64>()) {
        let c = circuit_of(seed);
        let vectors: Vec<Vec<bool>> = (0..count)
            .map(|p| vector_of(&c, lane_bits ^ (p as u64) << 3))
            .collect();
        let legacy = pack_vectors(&c, &vectors);
        let mut reused = vec![0xdead_beefu64; 3]; // stale content must be overwritten
        let words = pack_vectors_into(&c, &vectors, &mut reused);
        prop_assert_eq!(words, 1);
        prop_assert_eq!(&reused, &legacy);
    }
}
