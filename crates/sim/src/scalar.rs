//! Single-pattern two-valued simulation, with optional forced gate values.

use gatediag_netlist::{Circuit, GateId, GateKind};

/// Simulates one input vector; returns the value of every gate.
///
/// `inputs` must match `circuit.inputs()` in length and order.
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
///
/// # Examples
///
/// ```
/// let c = gatediag_netlist::c17();
/// let values = gatediag_sim::simulate(&c, &[true, true, false, true, false]);
/// assert_eq!(values.len(), c.len());
/// ```
pub fn simulate(circuit: &Circuit, inputs: &[bool]) -> Vec<bool> {
    simulate_forced(circuit, inputs, &[])
}

/// Simulates one input vector while *forcing* the listed gates to fixed
/// values, ignoring their logic.
///
/// This is the effect-analysis primitive: an arbitrary replacement function
/// at gate `g` can produce either value on any single test, so checking
/// whether a candidate set `C` can rectify a test reduces to trying forced
/// value combinations over `C` (see `gatediag-core`'s validity oracle).
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
pub fn simulate_forced(circuit: &Circuit, inputs: &[bool], forced: &[(GateId, bool)]) -> Vec<bool> {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "input vector width mismatch"
    );
    let mut values = vec![false; circuit.len()];
    for (&id, &v) in circuit.inputs().iter().zip(inputs) {
        values[id.index()] = v;
    }
    let mut force: Vec<Option<bool>> = vec![None; circuit.len()];
    for &(id, v) in forced {
        force[id.index()] = Some(v);
    }
    for &id in circuit.topo_order() {
        if let Some(v) = force[id.index()] {
            values[id.index()] = v;
            continue;
        }
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        values[id.index()] = gate
            .kind()
            .eval_bool(gate.fanins().iter().map(|f| values[f.index()]));
    }
    values
}

/// Extracts the primary output values from a full value assignment.
pub fn output_values(circuit: &Circuit, values: &[bool]) -> Vec<bool> {
    circuit
        .outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::{c17, ripple_carry_adder, CircuitBuilder};

    #[test]
    fn c17_truth() {
        let c = c17();
        // All-zero inputs: NAND trees produce known values.
        let v = simulate(&c, &[false; 5]);
        let g10 = c.find("G10").unwrap();
        let g22 = c.find("G22").unwrap();
        assert!(v[g10.index()]); // NAND(0,0) = 1
                                 // g16 = NAND(0, g11=1) = 1; g22 = NAND(1,1) = 0
        assert!(!v[g22.index()]);
    }

    #[test]
    fn adder_adds() {
        let c = ripple_carry_adder(4);
        for (a, b, cin) in [(3u32, 5u32, 0u32), (15, 1, 0), (7, 8, 1), (15, 15, 1)] {
            let mut inputs = Vec::new();
            for i in 0..4 {
                inputs.push(a >> i & 1 == 1);
            }
            for i in 0..4 {
                inputs.push(b >> i & 1 == 1);
            }
            inputs.push(cin == 1);
            let v = simulate(&c, &inputs);
            let outs = output_values(&c, &v);
            let mut sum = 0u32;
            for (i, &bit) in outs.iter().take(4).enumerate() {
                sum |= (bit as u32) << i;
            }
            let cout = outs[4] as u32;
            assert_eq!(sum | cout << 4, a + b + cin, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn forced_value_overrides_logic() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate(gatediag_netlist::GateKind::Not, vec![a], "g");
        let y = b.gate(gatediag_netlist::GateKind::Buf, vec![g], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let v = simulate(&c, &[true]);
        assert!(!v[y.index()]);
        let v = simulate_forced(&c, &[true], &[(g, true)]);
        assert!(v[y.index()], "forcing g=1 must propagate to y");
    }

    #[test]
    fn forcing_an_input_works() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.gate(gatediag_netlist::GateKind::Buf, vec![a], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let v = simulate_forced(&c, &[false], &[(a, true)]);
        assert!(v[y.index()]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let c = c17();
        let _ = simulate(&c, &[true, false]);
    }
}
