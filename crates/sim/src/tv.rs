//! Three-valued (0/1/X) logic and simulation.
//!
//! X-injection simulation is the forward-implication diagnosis primitive the
//! paper cites from Boppana et al. [5]: inject X at candidate gates and
//! check whether the X *reaches* the erroneous output — a necessary
//! (conservative) condition for the candidates to be able to rectify the
//! test.

use gatediag_netlist::{Circuit, GateId, GateKind};

/// A three-valued logic value.
///
/// # Examples
///
/// ```
/// use gatediag_sim::Tv;
/// assert_eq!(Tv::Zero.and(Tv::X), Tv::Zero); // 0 is controlling
/// assert_eq!(Tv::One.and(Tv::X), Tv::X);
/// assert_eq!(Tv::X.not(), Tv::X);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Tv {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Tv {
    /// Converts a Boolean.
    pub fn from_bool(b: bool) -> Tv {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }

    /// Returns the Boolean value if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tv::Zero => Some(false),
            Tv::One => Some(true),
            Tv::X => None,
        }
    }

    /// `true` if the value is X.
    pub fn is_x(self) -> bool {
        self == Tv::X
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
            (Tv::One, Tv::One) => Tv::One,
            _ => Tv::X,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::One, _) | (_, Tv::One) => Tv::One,
            (Tv::Zero, Tv::Zero) => Tv::Zero,
            _ => Tv::X,
        }
    }

    /// Three-valued exclusive or.
    pub fn xor(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::X, _) | (_, Tv::X) => Tv::X,
            (a, b) => Tv::from_bool((a == Tv::One) ^ (b == Tv::One)),
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tv {
        match self {
            Tv::Zero => Tv::One,
            Tv::One => Tv::Zero,
            Tv::X => Tv::X,
        }
    }
}

/// Evaluates a gate kind over three-valued fan-ins.
///
/// # Panics
///
/// Panics when called on `Input`.
pub fn eval_tv<I>(kind: GateKind, inputs: I) -> Tv
where
    I: IntoIterator<Item = Tv>,
{
    let mut it = inputs.into_iter();
    match kind {
        GateKind::Input => panic!("cannot evaluate a primary input"),
        GateKind::Const0 => Tv::Zero,
        GateKind::Const1 => Tv::One,
        GateKind::And => it.fold(Tv::One, Tv::and),
        GateKind::Nand => it.fold(Tv::One, Tv::and).not(),
        GateKind::Or => it.fold(Tv::Zero, Tv::or),
        GateKind::Nor => it.fold(Tv::Zero, Tv::or).not(),
        GateKind::Xor => it.fold(Tv::Zero, Tv::xor),
        GateKind::Xnor => it.fold(Tv::Zero, Tv::xor).not(),
        GateKind::Not => it.next().expect("NOT requires one fan-in").not(),
        GateKind::Buf => it.next().expect("BUF requires one fan-in"),
    }
}

/// Three-valued simulation with X injected at the given gates.
///
/// `inputs` are the primary input values (may themselves be X); every gate
/// in `inject_x` is forced to X regardless of its logic.
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
///
/// # Examples
///
/// ```
/// use gatediag_sim::{simulate_tv, Tv};
/// let c = gatediag_netlist::c17();
/// let inputs = vec![Tv::Zero; 5];
/// let g10 = c.find("G10").unwrap();
/// let v = simulate_tv(&c, &inputs, &[g10]);
/// assert!(v[g10.index()].is_x());
/// ```
pub fn simulate_tv(circuit: &Circuit, inputs: &[Tv], inject_x: &[GateId]) -> Vec<Tv> {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "input vector width mismatch"
    );
    let mut values = vec![Tv::X; circuit.len()];
    for (&id, &v) in circuit.inputs().iter().zip(inputs) {
        values[id.index()] = v;
    }
    let mut forced_x = vec![false; circuit.len()];
    for &id in inject_x {
        forced_x[id.index()] = true;
    }
    for &id in circuit.topo_order() {
        if forced_x[id.index()] {
            values[id.index()] = Tv::X;
            continue;
        }
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        values[id.index()] = eval_tv(gate.kind(), gate.fanins().iter().map(|f| values[f.index()]));
    }
    values
}

/// Conservative rectifiability test via X-injection.
///
/// Returns `true` if injecting X at every gate of `candidates` makes the
/// value at output `output` unknown (or already correct). If this returns
/// `false`, no assignment of replacement values at `candidates` can change
/// the faulty output for this vector — the candidate set certainly cannot
/// rectify the test. The converse does not hold (X-propagation is
/// conservative), which is exactly why BSIM/COV lack validity guarantees.
pub fn x_may_rectify(
    circuit: &Circuit,
    inputs: &[bool],
    candidates: &[GateId],
    output: GateId,
    expected: bool,
) -> bool {
    let tv_inputs: Vec<Tv> = inputs.iter().map(|&b| Tv::from_bool(b)).collect();
    let values = simulate_tv(circuit, &tv_inputs, candidates);
    match values[output.index()] {
        Tv::X => true,
        v => v == Tv::from_bool(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::simulate;
    use gatediag_netlist::{c17, CircuitBuilder, RandomCircuitSpec, VectorGen};

    #[test]
    fn tv_tables() {
        assert_eq!(Tv::One.and(Tv::One), Tv::One);
        assert_eq!(Tv::One.or(Tv::X), Tv::One);
        assert_eq!(Tv::Zero.or(Tv::X), Tv::X);
        assert_eq!(Tv::X.xor(Tv::One), Tv::X);
        assert_eq!(Tv::One.xor(Tv::One), Tv::Zero);
        assert_eq!(Tv::from_bool(true), Tv::One);
        assert_eq!(Tv::X.to_bool(), None);
        assert_eq!(Tv::One.to_bool(), Some(true));
    }

    #[test]
    fn without_x_matches_boolean_sim() {
        for seed in 0..3 {
            let c = RandomCircuitSpec::new(6, 2, 50).seed(seed).generate();
            let mut gen = VectorGen::new(&c, seed);
            for _ in 0..8 {
                let vector = gen.next_vector();
                let tv_in: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
                let tv = simulate_tv(&c, &tv_in, &[]);
                let bs = simulate(&c, &vector);
                for (t, &b) in tv.iter().zip(&bs) {
                    assert_eq!(*t, Tv::from_bool(b));
                }
            }
        }
    }

    #[test]
    fn x_blocked_by_controlling_value() {
        // AND(a, X) with a=0 stays 0: the X is masked.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x_src = b.input("x");
        let g = b.gate(GateKind::And, vec![a, x_src], "g");
        b.output(g);
        let c = b.finish().unwrap();
        let v = simulate_tv(&c, &[Tv::Zero, Tv::One], &[x_src]);
        assert_eq!(v[g.index()], Tv::Zero);
        let v = simulate_tv(&c, &[Tv::One, Tv::One], &[x_src]);
        assert_eq!(v[g.index()], Tv::X);
    }

    #[test]
    fn x_may_rectify_is_sound() {
        // When x_may_rectify returns false, brute-force forcing confirms
        // that no replacement value can fix the output.
        let c = c17();
        let out = *c.outputs().first().unwrap();
        let mut gen = VectorGen::new(&c, 17);
        for _ in 0..16 {
            let vector = gen.next_vector();
            let base = simulate(&c, &vector);
            let faulty_val = base[out.index()];
            let expected = !faulty_val; // pretend the output is wrong
            for (g, _) in c.iter() {
                if c.gate(g).kind().is_source() {
                    continue;
                }
                if !x_may_rectify(&c, &vector, &[g], out, expected) {
                    for forced in [false, true] {
                        let v = crate::scalar::simulate_forced(&c, &vector, &[(g, forced)]);
                        assert_ne!(
                            v[out.index()],
                            expected,
                            "x_may_rectify said impossible but forcing {g}={forced} worked"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn injecting_at_output_gate_always_may_rectify() {
        let c = c17();
        let out = *c.outputs().first().unwrap();
        let vector = vec![false; 5];
        assert!(x_may_rectify(&c, &vector, &[out], out, true));
        assert!(x_may_rectify(&c, &vector, &[out], out, false));
    }

    use gatediag_netlist::GateKind;
}
