//! Dual-rail packed three-valued simulation: 64 X-injection scenarios per
//! topological sweep.
//!
//! Encoding: per gate two words `(can0, can1)` — bit `p` of `can0` says
//! the gate can be 0 in scenario `p`, bit `p` of `can1` that it can be 1.
//! `(1,0)` = stable 0, `(0,1)` = stable 1, `(1,1)` = X. This evaluates the
//! same conservative three-valued semantics as [`simulate_tv`] but for 64
//! candidate sets at once — the bulk X-rectifiability screen used by the
//! backtracking simulation-based diagnosis when scoring many candidate
//! sets.
//!
//! [`simulate_tv`]: crate::simulate_tv

use crate::tv::Tv;
use gatediag_netlist::{Circuit, GateId, GateKind};

/// Dual-rail word pair: `can0`/`can1` possibility masks for 64 scenarios.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct DualRail {
    /// Bit `p`: the signal can evaluate to 0 in scenario `p`.
    pub can0: u64,
    /// Bit `p`: the signal can evaluate to 1 in scenario `p`.
    pub can1: u64,
}

impl DualRail {
    /// A stable Boolean value in all scenarios.
    pub fn splat(value: bool) -> DualRail {
        if value {
            DualRail { can0: 0, can1: !0 }
        } else {
            DualRail { can0: !0, can1: 0 }
        }
    }

    /// X in all scenarios.
    pub fn all_x() -> DualRail {
        DualRail { can0: !0, can1: !0 }
    }

    /// The three-valued value in scenario `lane`.
    pub fn lane(self, lane: usize) -> Tv {
        match (self.can0 >> lane & 1, self.can1 >> lane & 1) {
            (1, 0) => Tv::Zero,
            (0, 1) => Tv::One,
            _ => Tv::X,
        }
    }
}

fn and2(a: DualRail, b: DualRail) -> DualRail {
    DualRail {
        can0: a.can0 | b.can0,
        can1: a.can1 & b.can1,
    }
}

fn or2(a: DualRail, b: DualRail) -> DualRail {
    DualRail {
        can0: a.can0 & b.can0,
        can1: a.can1 | b.can1,
    }
}

fn xor2(a: DualRail, b: DualRail) -> DualRail {
    // X if either side is X, else boolean xor.
    let ax = a.can0 & a.can1;
    let bx = b.can0 & b.can1;
    let x = ax | bx;
    let v = (a.can1 & !ax) ^ (b.can1 & !bx);
    DualRail {
        can0: x | !v,
        can1: x | v,
    }
}

fn not1(a: DualRail) -> DualRail {
    DualRail {
        can0: a.can1,
        can1: a.can0,
    }
}

/// Evaluates a gate over dual-rail fan-ins.
///
/// # Panics
///
/// Panics when called on `Input`.
pub fn eval_dual_rail<I>(kind: GateKind, inputs: I) -> DualRail
where
    I: IntoIterator<Item = DualRail>,
{
    let mut it = inputs.into_iter();
    match kind {
        GateKind::Input => panic!("cannot evaluate a primary input"),
        GateKind::Const0 => DualRail::splat(false),
        GateKind::Const1 => DualRail::splat(true),
        GateKind::And => it.fold(DualRail::splat(true), and2),
        GateKind::Nand => not1(it.fold(DualRail::splat(true), and2)),
        GateKind::Or => it.fold(DualRail::splat(false), or2),
        GateKind::Nor => not1(it.fold(DualRail::splat(false), or2)),
        GateKind::Xor => it.fold(DualRail::splat(false), xor2),
        GateKind::Xnor => not1(it.fold(DualRail::splat(false), xor2)),
        GateKind::Not => not1(it.next().expect("NOT requires one fan-in")),
        GateKind::Buf => it.next().expect("BUF requires one fan-in"),
    }
}

/// Packed three-valued simulation: one Boolean input vector, 64 X-injection
/// scenarios. `inject_x[i].1` is the scenario mask of gate
/// `inject_x[i].0` — bit `p` set means "inject X at this gate in scenario
/// `p`".
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
pub fn simulate_tv_packed(
    circuit: &Circuit,
    inputs: &[bool],
    inject_x: &[(GateId, u64)],
) -> Vec<DualRail> {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "input vector width mismatch"
    );
    let mut values = vec![DualRail::default(); circuit.len()];
    for (&id, &v) in circuit.inputs().iter().zip(inputs) {
        values[id.index()] = DualRail::splat(v);
    }
    let mut inject = vec![0u64; circuit.len()];
    for &(id, mask) in inject_x {
        inject[id.index()] |= mask;
    }
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        let mut value = if gate.kind() == GateKind::Input {
            values[id.index()]
        } else {
            eval_dual_rail(gate.kind(), gate.fanins().iter().map(|f| values[f.index()]))
        };
        let mask = inject[id.index()];
        if mask != 0 {
            value.can0 |= mask;
            value.can1 |= mask;
        }
        values[id.index()] = value;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tv::simulate_tv;
    use gatediag_netlist::{c17, RandomCircuitSpec, VectorGen};
    use rand::{Rng, SeedableRng};

    #[test]
    fn dual_rail_lane_decoding() {
        assert_eq!(DualRail::splat(false).lane(13), Tv::Zero);
        assert_eq!(DualRail::splat(true).lane(0), Tv::One);
        assert_eq!(DualRail::all_x().lane(63), Tv::X);
    }

    #[test]
    fn packed_matches_scalar_tv_per_lane() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for seed in 0..4 {
            let c = RandomCircuitSpec::new(6, 2, 50).seed(seed).generate();
            let mut gen = VectorGen::new(&c, seed);
            let vector = gen.next_vector();
            let functional: Vec<_> = c
                .iter()
                .filter(|(_, g)| !g.kind().is_source())
                .map(|(id, _)| id)
                .collect();
            // Random per-lane injection sets (up to 3 gates per lane).
            let mut lane_sets: Vec<Vec<gatediag_netlist::GateId>> = Vec::new();
            let mut inject: Vec<(gatediag_netlist::GateId, u64)> = Vec::new();
            for lane in 0..16usize {
                let count = rng.gen_range(0..=3);
                let mut set = Vec::new();
                for _ in 0..count {
                    let g = functional[rng.gen_range(0..functional.len())];
                    if !set.contains(&g) {
                        set.push(g);
                        inject.push((g, 1 << lane));
                    }
                }
                lane_sets.push(set);
            }
            let packed = simulate_tv_packed(&c, &vector, &inject);
            for (lane, set) in lane_sets.iter().enumerate() {
                let tv_inputs: Vec<Tv> = vector.iter().map(|&b| Tv::from_bool(b)).collect();
                let scalar = simulate_tv(&c, &tv_inputs, set);
                for (id, _) in c.iter() {
                    assert_eq!(
                        packed[id.index()].lane(lane),
                        scalar[id.index()],
                        "seed {seed} lane {lane} gate {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_injection_matches_boolean() {
        let c = c17();
        let vector = vec![true, false, true, false, true];
        let packed = simulate_tv_packed(&c, &vector, &[]);
        let scalar = crate::scalar::simulate(&c, &vector);
        for (id, _) in c.iter() {
            assert_eq!(
                packed[id.index()].lane(7),
                Tv::from_bool(scalar[id.index()])
            );
        }
    }

    #[test]
    fn xor_with_x_is_x() {
        let a = DualRail::all_x();
        let b = DualRail::splat(true);
        let r = xor2(a, b);
        assert_eq!(r.lane(0), Tv::X);
        let r2 = xor2(DualRail::splat(true), DualRail::splat(true));
        assert_eq!(r2.lane(5), Tv::Zero);
    }

    #[test]
    fn controlling_value_masks_x_in_dual_rail() {
        let x = DualRail::all_x();
        let zero = DualRail::splat(false);
        assert_eq!(and2(x, zero).lane(3), Tv::Zero);
        let one = DualRail::splat(true);
        assert_eq!(or2(x, one).lane(3), Tv::One);
    }
}
