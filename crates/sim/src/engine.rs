//! `PackedSim`: the reusable multi-word bit-parallel simulation engine.
//!
//! The free functions in [`crate::packed`] allocate fresh buffers per call
//! and cap the batch at 64 patterns. `PackedSim` removes both limits:
//!
//! * it owns all scratch buffers, so repeated sweeps (candidate
//!   screening, test generation, diagnosis over many tests) allocate
//!   nothing after the first [`PackedSim::reset`];
//! * each gate carries `W` 64-bit words, so one topological sweep
//!   evaluates `64 * W` patterns;
//! * forced values and gate-kind overrides are *sparse overlays* (epoch
//!   tagged, O(1) to clear) instead of dense `Vec<Option<u64>>`s;
//! * an event-driven incremental mode ([`PackedSim::propagate`])
//!   re-evaluates only the fan-out cone of changed gates, in level order,
//!   which is what makes per-candidate screening (validity oracles,
//!   repair enumeration) near-free.
//!
//! # Lifecycle
//!
//! ```text
//! new(circuit)                   bind to a circuit, no allocation yet
//!   reset(W)                     size buffers for 64*W patterns, clear overlays
//!     set_input_words / set_inputs_broadcast
//!     sweep()                    full linear topological sweep -> baseline
//!       force / override_kind    sparse overlay edits (schedule the gate)
//!       propagate()              incremental: touched cones only
//!       clear_forced / clear_kind_overrides + propagate()  -> back to baseline
//!   reset(W')                    repartition for a different pattern count
//! ```
//!
//! The engine's per-lane results are bit-identical to the scalar
//! [`crate::simulate_forced`] reference; property tests enforce this.

use gatediag_netlist::{Circuit, GateId, GateKind};

/// Reusable multi-word bit-parallel simulator with sparse forced-value and
/// kind-override overlays and event-driven incremental resimulation.
///
/// See the [crate docs](crate) for the lifecycle. Values are stored
/// gate-major: gate `g`'s patterns live in
/// `values()[g.index() * words_per_gate() ..][.. words_per_gate()]`,
/// with pattern `p` at bit `p % 64` of word `p / 64`.
#[derive(Clone, Debug)]
pub struct PackedSim<'c> {
    circuit: &'c Circuit,
    words: usize,
    values: Vec<u64>,
    input_words: Vec<u64>,
    /// Gate index -> position in `circuit.inputs()`, `u32::MAX` otherwise.
    input_pos: Vec<u32>,

    epoch: u32,
    forced_epoch: Vec<u32>,
    forced_vals: Vec<u64>,
    forced_list: Vec<GateId>,

    kind_epoch: u32,
    kind_mark: Vec<u32>,
    kind_over: Vec<GateKind>,
    kind_list: Vec<GateId>,

    queued: Vec<bool>,
    buckets: Vec<Vec<u32>>,
    pending: usize,
    events: u64,
}

impl<'c> PackedSim<'c> {
    /// Binds an engine to `circuit`. Buffers are sized by the first
    /// [`PackedSim::reset`].
    pub fn new(circuit: &'c Circuit) -> PackedSim<'c> {
        let mut input_pos = vec![u32::MAX; circuit.len()];
        for (p, &id) in circuit.inputs().iter().enumerate() {
            input_pos[id.index()] = p as u32;
        }
        PackedSim {
            circuit,
            words: 0,
            values: Vec::new(),
            input_words: Vec::new(),
            input_pos,
            epoch: 1,
            forced_epoch: Vec::new(),
            forced_vals: Vec::new(),
            forced_list: Vec::new(),
            kind_epoch: 1,
            kind_mark: Vec::new(),
            kind_over: Vec::new(),
            kind_list: Vec::new(),
            queued: Vec::new(),
            buckets: Vec::new(),
            pending: 0,
            events: 0,
        }
    }

    /// The circuit this engine simulates.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Current number of 64-bit words per gate (`0` before the first
    /// [`PackedSim::reset`]).
    #[inline]
    pub fn words_per_gate(&self) -> usize {
        self.words
    }

    /// Number of patterns carried per sweep (`64 * words_per_gate`).
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.words * 64
    }

    /// Total gate evaluations performed by [`PackedSim::propagate`] so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sizes the engine for `words` 64-bit words per gate (`64 * words`
    /// patterns), clearing all values, overlays and pending events.
    ///
    /// Buffers are reused when possible; calling `reset` with the current
    /// width is cheap and simply returns the engine to a pristine state.
    ///
    /// After a `reset`, the first simulation MUST be a full
    /// [`PackedSim::sweep`]: the zeroed value array is not a consistent
    /// assignment, and input setters only schedule *changed* inputs, so
    /// [`PackedSim::propagate`] alone would leave non-input gates stale.
    /// Once one sweep has run, everything can be incremental.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn reset(&mut self, words: usize) {
        assert!(words > 0, "need at least one word per gate");
        let n = self.circuit.len();
        self.words = words;
        self.values.clear();
        self.values.resize(n * words, 0);
        self.input_words.clear();
        self.input_words
            .resize(self.circuit.inputs().len() * words, 0);
        self.forced_epoch.clear();
        self.forced_epoch.resize(n, 0);
        self.forced_vals.clear();
        self.forced_vals.resize(n * words, 0);
        self.forced_list.clear();
        self.epoch = 1;
        self.kind_mark.clear();
        self.kind_mark.resize(n, 0);
        self.kind_over.clear();
        self.kind_over.resize(n, GateKind::Const0);
        self.kind_list.clear();
        self.kind_epoch = 1;
        self.queued.clear();
        self.queued.resize(n, false);
        let depth = self.circuit.depth() as usize + 1;
        if self.buckets.len() < depth {
            self.buckets.resize(depth, Vec::new());
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.pending = 0;
    }

    /// Loads pre-packed input patterns, input-major: input `i`'s words at
    /// `words[i * words_per_gate() ..][.. words_per_gate()]`.
    ///
    /// # Panics
    ///
    /// Panics if the engine was not `reset` or the slice length is not
    /// `circuit.inputs().len() * words_per_gate()`.
    pub fn set_input_words(&mut self, words: &[u64]) {
        assert!(self.words > 0, "reset() must be called first");
        assert_eq!(
            words.len(),
            self.input_words.len(),
            "input word count mismatch"
        );
        let w = self.words;
        let circuit: &Circuit = self.circuit;
        for (i, &id) in circuit.inputs().iter().enumerate() {
            if self.input_words[i * w..(i + 1) * w] != words[i * w..(i + 1) * w] {
                self.input_words[i * w..(i + 1) * w].copy_from_slice(&words[i * w..(i + 1) * w]);
                self.schedule(id);
            }
        }
    }

    /// Broadcasts one scalar input vector to every lane.
    ///
    /// # Panics
    ///
    /// Panics if the engine was not `reset` or the vector width differs
    /// from `circuit.inputs()`.
    pub fn set_inputs_broadcast(&mut self, vector: &[bool]) {
        assert!(self.words > 0, "reset() must be called first");
        assert_eq!(
            vector.len(),
            self.circuit.inputs().len(),
            "input vector width mismatch"
        );
        let w = self.words;
        let circuit: &Circuit = self.circuit;
        for (i, &bit) in vector.iter().enumerate() {
            let word = if bit { !0u64 } else { 0 };
            if self.input_words[i * w..(i + 1) * w]
                .iter()
                .any(|&x| x != word)
            {
                self.input_words[i * w..(i + 1) * w].fill(word);
                self.schedule(circuit.inputs()[i]);
            }
        }
    }

    /// Forces gate `g` to the given pattern words, overriding its logic
    /// until [`PackedSim::clear_forced`]. Takes effect at the next
    /// [`PackedSim::sweep`] or [`PackedSim::propagate`].
    ///
    /// # Panics
    ///
    /// Panics if the engine was not `reset` or `words.len()` differs from
    /// `words_per_gate()`.
    pub fn force(&mut self, g: GateId, words: &[u64]) {
        assert!(self.words > 0, "reset() must be called first");
        assert_eq!(words.len(), self.words, "forced word count mismatch");
        let i = g.index();
        if self.forced_epoch[i] != self.epoch {
            self.forced_epoch[i] = self.epoch;
            self.forced_list.push(g);
        }
        self.forced_vals[i * self.words..(i + 1) * self.words].copy_from_slice(words);
        self.schedule(g);
    }

    /// Forces gate `g` to `value` on every lane (allocation-free).
    pub fn force_all_lanes(&mut self, g: GateId, value: bool) {
        assert!(self.words > 0, "reset() must be called first");
        let word = if value { !0u64 } else { 0 };
        let i = g.index();
        if self.forced_epoch[i] != self.epoch {
            self.forced_epoch[i] = self.epoch;
            self.forced_list.push(g);
        }
        self.forced_vals[i * self.words..(i + 1) * self.words].fill(word);
        self.schedule(g);
    }

    /// Removes every forcing in O(#forced), scheduling the affected gates
    /// so the next [`PackedSim::propagate`] restores their logic values.
    pub fn clear_forced(&mut self) {
        let list = std::mem::take(&mut self.forced_list);
        for &g in &list {
            self.schedule(g);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: invalidate stale marks explicitly.
            self.forced_epoch.fill(u32::MAX);
            self.epoch = 1;
        }
    }

    /// Replaces the Boolean function of gate `g` with `kind` until
    /// [`PackedSim::clear_kind_overrides`] — the "gate change" error model
    /// evaluated without rebuilding the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the engine was not `reset`, `g` is a primary input, or
    /// `kind` is illegal for the gate's arity. Constant gates CAN be
    /// overridden (`Const0` <-> `Const1`), matching
    /// [`Circuit::with_gate_kind`]'s contract — constants are correctable
    /// error sites in the paper's model.
    pub fn override_kind(&mut self, g: GateId, kind: GateKind) {
        assert!(self.words > 0, "reset() must be called first");
        let i = g.index();
        assert!(
            self.circuit.kind(g) != GateKind::Input,
            "cannot override the function of primary input {g}"
        );
        assert!(
            kind != GateKind::Input,
            "cannot override a gate to the Input pseudo-kind"
        );
        assert!(
            kind.arity_ok(self.circuit.fanins(g).len()),
            "kind {kind} illegal for arity {}",
            self.circuit.fanins(g).len()
        );
        if self.kind_mark[i] != self.kind_epoch {
            self.kind_mark[i] = self.kind_epoch;
            self.kind_list.push(g);
        }
        self.kind_over[i] = kind;
        self.schedule(g);
    }

    /// Removes every kind override in O(#overridden), scheduling the
    /// affected gates.
    pub fn clear_kind_overrides(&mut self) {
        let list = std::mem::take(&mut self.kind_list);
        for &g in &list {
            self.schedule(g);
        }
        self.kind_epoch = self.kind_epoch.wrapping_add(1);
        if self.kind_epoch == 0 {
            self.kind_mark.fill(u32::MAX);
            self.kind_epoch = 1;
        }
    }

    #[inline]
    fn effective_kind(&self, i: usize) -> GateKind {
        if self.kind_mark[i] == self.kind_epoch {
            self.kind_over[i]
        } else {
            self.circuit.kinds()[i]
        }
    }

    #[inline]
    fn schedule(&mut self, g: GateId) {
        let i = g.index();
        if !self.queued[i] {
            self.queued[i] = true;
            self.buckets[self.circuit.level(g) as usize].push(i as u32);
            self.pending += 1;
        }
    }

    /// Evaluates gate `i` in place; returns `true` if any word changed.
    ///
    /// `values` is indexed gate-major with `w` words per gate.
    #[inline]
    fn eval_into(&mut self, i: usize) -> bool {
        let w = self.words;
        let base = i * w;
        let mut changed = false;
        if self.forced_epoch[i] == self.epoch {
            for k in 0..w {
                let new = self.forced_vals[base + k];
                changed |= self.values[base + k] != new;
                self.values[base + k] = new;
            }
            return changed;
        }
        let kind = self.effective_kind(i);
        if kind == GateKind::Input {
            let pos = self.input_pos[i] as usize;
            for k in 0..w {
                let new = self.input_words[pos * w + k];
                changed |= self.values[base + k] != new;
                self.values[base + k] = new;
            }
            return changed;
        }
        let circuit: &Circuit = self.circuit;
        let (heads, edges) = circuit.fanin_csr();
        let lo = heads[i] as usize;
        let hi = heads[i + 1] as usize;
        for k in 0..w {
            let new = kind.eval_word(edges[lo..hi].iter().map(|f| self.values[f.index() * w + k]));
            changed |= self.values[base + k] != new;
            self.values[base + k] = new;
        }
        changed
    }

    /// Full linear topological sweep: every gate is evaluated once, in
    /// topo order, honouring the current input words and overlays.
    /// Establishes the baseline for subsequent incremental updates.
    ///
    /// # Panics
    ///
    /// Panics if the engine was not `reset`.
    pub fn sweep(&mut self) {
        assert!(self.words > 0, "reset() must be called first");
        // A full sweep subsumes all pending events.
        if self.pending > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            self.queued.fill(false);
            self.pending = 0;
        }
        let circuit: &Circuit = self.circuit;
        for &id in circuit.topo_order() {
            self.eval_into(id.index());
        }
        // Charged per sweep, not per gate, so the hot loop stays clean.
        let evals = circuit.topo_order().len() as u64;
        gatediag_obs::count("sim.sweeps", 1);
        gatediag_obs::count("sim.gate_evals", evals);
        gatediag_obs::count("sim.words", evals * self.words as u64);
    }

    /// Event-driven incremental resimulation: processes scheduled gates in
    /// level order, following value changes through fan-out cones only.
    /// Returns the number of gate evaluations performed.
    pub fn propagate(&mut self) -> u64 {
        let circuit: &Circuit = self.circuit;
        let mut evals = 0u64;
        let mut level = 0usize;
        while self.pending > 0 && level < self.buckets.len() {
            // Per-level drain; newly scheduled gates land in strictly
            // higher buckets because fan-outs have strictly higher levels.
            while let Some(i) = self.buckets[level].pop() {
                let i = i as usize;
                if !self.queued[i] {
                    continue;
                }
                self.queued[i] = false;
                self.pending -= 1;
                evals += 1;
                if self.eval_into(i) {
                    for &succ in circuit.fanouts(GateId::new(i)) {
                        self.schedule(succ);
                    }
                }
            }
            level += 1;
        }
        self.events += evals;
        gatediag_obs::count("sim.propagate_evals", evals);
        gatediag_obs::count("sim.words", evals * self.words as u64);
        evals
    }

    /// The full packed value array, gate-major (`len() * words_per_gate()`
    /// words). Valid after [`PackedSim::sweep`] / [`PackedSim::propagate`].
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The pattern words of gate `g`.
    #[inline]
    pub fn value_words(&self, g: GateId) -> &[u64] {
        let base = g.index() * self.words;
        &self.values[base..base + self.words]
    }

    /// The value of gate `g` on pattern `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= num_patterns()`.
    #[inline]
    pub fn lane(&self, g: GateId, lane: usize) -> bool {
        assert!(lane < self.num_patterns(), "lane out of range");
        self.values[g.index() * self.words + lane / 64] >> (lane % 64) & 1 == 1
    }

    /// Extracts pattern `lane` over all gates as a `Vec<bool>` (the
    /// multi-word analogue of [`crate::unpack_lane`]).
    pub fn unpack_lane(&self, lane: usize) -> Vec<bool> {
        assert!(lane < self.num_patterns(), "lane out of range");
        let w = self.words;
        (0..self.circuit.len())
            .map(|i| self.values[i * w + lane / 64] >> (lane % 64) & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack_vectors_into;
    use crate::scalar::{simulate, simulate_forced};
    use gatediag_netlist::{c17, RandomCircuitSpec, VectorGen};

    fn vectors_for(c: &Circuit, n: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut gen = VectorGen::new(c, seed);
        (0..n).map(|_| gen.next_vector()).collect()
    }

    #[test]
    fn sweep_matches_scalar_beyond_64_patterns() {
        let c = RandomCircuitSpec::new(8, 3, 80).seed(1).generate();
        let vectors = vectors_for(&c, 200, 1);
        let mut packed = Vec::new();
        let w = pack_vectors_into(&c, &vectors, &mut packed);
        assert_eq!(w, 4);
        let mut sim = PackedSim::new(&c);
        sim.reset(w);
        sim.set_input_words(&packed);
        sim.sweep();
        for (lane, v) in vectors.iter().enumerate() {
            assert_eq!(sim.unpack_lane(lane), simulate(&c, v), "lane {lane}");
        }
    }

    #[test]
    fn forced_overlay_matches_scalar_forced() {
        let c = RandomCircuitSpec::new(6, 2, 50).seed(3).generate();
        let vectors = vectors_for(&c, 96, 3);
        let mut packed = Vec::new();
        let w = pack_vectors_into(&c, &vectors, &mut packed);
        let g = c
            .iter()
            .find(|(_, gate)| !gate.kind().is_source())
            .map(|(id, _)| id)
            .unwrap();
        let mut sim = PackedSim::new(&c);
        sim.reset(w);
        sim.set_input_words(&packed);
        // Force alternating lanes high.
        let force: Vec<u64> = (0..w).map(|_| 0xAAAA_AAAA_AAAA_AAAA).collect();
        sim.force(g, &force);
        sim.sweep();
        for (lane, v) in vectors.iter().enumerate() {
            let fv = lane % 2 == 1;
            assert_eq!(
                sim.unpack_lane(lane),
                simulate_forced(&c, v, &[(g, fv)]),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn incremental_force_then_clear_restores_baseline() {
        let c = RandomCircuitSpec::new(7, 3, 70).seed(5).generate();
        let vectors = vectors_for(&c, 64, 5);
        let mut packed = Vec::new();
        let w = pack_vectors_into(&c, &vectors, &mut packed);
        let mut sim = PackedSim::new(&c);
        sim.reset(w);
        sim.set_input_words(&packed);
        sim.sweep();
        let baseline = sim.values().to_vec();
        let g = c
            .iter()
            .find(|(_, gate)| !gate.kind().is_source())
            .map(|(id, _)| id)
            .unwrap();
        sim.force_all_lanes(g, true);
        sim.propagate();
        for (lane, v) in vectors.iter().enumerate() {
            assert_eq!(sim.unpack_lane(lane), simulate_forced(&c, v, &[(g, true)]));
        }
        sim.clear_forced();
        sim.propagate();
        assert_eq!(sim.values(), &baseline[..], "baseline not restored");
    }

    #[test]
    fn kind_override_matches_with_gate_kind() {
        let c = c17();
        let g = c.find("G16").unwrap();
        let vectors = vectors_for(&c, 32, 9);
        let mut packed = Vec::new();
        let w = pack_vectors_into(&c, &vectors, &mut packed);
        let mut sim = PackedSim::new(&c);
        sim.reset(w);
        sim.set_input_words(&packed);
        sim.sweep();
        let baseline = sim.values().to_vec();
        for kind in [
            gatediag_netlist::GateKind::Or,
            gatediag_netlist::GateKind::Xor,
        ] {
            sim.override_kind(g, kind);
            sim.propagate();
            let mutated = c.with_gate_kind(g, kind);
            for (lane, v) in vectors.iter().enumerate() {
                assert_eq!(sim.unpack_lane(lane), simulate(&mutated, v), "lane {lane}");
            }
        }
        sim.clear_kind_overrides();
        sim.propagate();
        assert_eq!(sim.values(), &baseline[..]);
    }

    #[test]
    fn propagation_is_local() {
        let c = RandomCircuitSpec::new(16, 4, 400).seed(3).generate();
        let vectors = vectors_for(&c, 64, 3);
        let mut packed = Vec::new();
        let w = pack_vectors_into(&c, &vectors, &mut packed);
        let mut sim = PackedSim::new(&c);
        sim.reset(w);
        sim.set_input_words(&packed);
        sim.sweep();
        let deepest = c
            .iter()
            .max_by_key(|(id, _)| c.level(*id))
            .map(|(id, _)| id)
            .unwrap();
        sim.force_all_lanes(deepest, true);
        let evals = sim.propagate();
        assert!(
            evals < c.len() as u64 / 2,
            "incremental propagate touched {evals} of {} gates",
            c.len()
        );
    }

    #[test]
    fn reset_repartitions_cleanly() {
        let c = c17();
        let mut sim = PackedSim::new(&c);
        for &w in &[1usize, 3, 2] {
            let vectors = vectors_for(&c, w * 64, 7 + w as u64);
            let mut packed = Vec::new();
            let got = pack_vectors_into(&c, &vectors, &mut packed);
            assert_eq!(got, w);
            sim.reset(w);
            sim.set_input_words(&packed);
            sim.sweep();
            assert_eq!(sim.words_per_gate(), w);
            for (lane, v) in vectors.iter().enumerate().step_by(17) {
                assert_eq!(sim.unpack_lane(lane), simulate(&c, v));
            }
        }
    }

    #[test]
    fn const_gates_can_be_overridden() {
        // Constants are correctable error sites (Const0 <-> Const1); the
        // override contract matches Circuit::with_gate_kind, which only
        // forbids primary inputs.
        use gatediag_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let k = b.anon_gate(GateKind::Const0, vec![]);
        let y = b.gate(GateKind::Or, vec![a, k], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut sim = PackedSim::new(&c);
        sim.reset(1);
        sim.set_inputs_broadcast(&[false]);
        sim.sweep();
        assert!(!sim.lane(y, 0), "OR(0, Const0) must be 0");
        sim.override_kind(k, GateKind::Const1);
        sim.propagate();
        assert!(sim.lane(y, 0), "OR(0, Const1) must be 1");
        let mutated = c.with_gate_kind(k, GateKind::Const1);
        assert_eq!(sim.unpack_lane(0), simulate(&mutated, &[false]));
    }

    #[test]
    #[should_panic(expected = "reset() must be called first")]
    fn sweep_without_reset_panics() {
        let c = c17();
        let mut sim = PackedSim::new(&c);
        sim.sweep();
    }
}
