//! Frame-major packed sequential simulation.
//!
//! The combinational engines simulate `64 * W` *patterns* per sweep;
//! [`SeqPackedSim`] lifts that to sequential circuits by simulating
//! `64 * W` *sequences* at once, frame-major: every [`SeqPackedSim::step`]
//! evaluates one time frame of all sequences in a single packed
//! sweep/propagate, then latches the next-state words (each latch's `d`
//! value words) so the following frame reads them back through the latch
//! `q` pseudo-inputs. The latch plumbing comes from the explicit
//! combinationalisation lowering
//! ([`StateView`](gatediag_netlist::StateView)); fault injection uses the
//! same sparse overlays as the combinational engine
//! ([`SeqPackedSim::override_kind`] / [`SeqPackedSim::force`]).
//!
//! [`simulate_sequence`] is the scalar frame-by-frame reference with
//! explicit latch stepping; `SeqPackedSim` is lane-for-lane bit-identical
//! to it (property tests pin this).
//!
//! # Examples
//!
//! ```
//! use gatediag_netlist::parse_bench;
//! use gatediag_sim::{pack_rows_into, simulate_sequence, SeqPackedSim};
//!
//! let c = parse_bench(
//!     "INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n",
//! )
//! .unwrap();
//! // Two sequences of three frames: en = 1,1,1 and en = 1,0,0.
//! let seqs = [
//!     vec![vec![true], vec![true], vec![true]],
//!     vec![vec![true], vec![false], vec![false]],
//! ];
//! let initial = vec![vec![false]; 2];
//! let mut sim = SeqPackedSim::new(&c);
//! let mut state = Vec::new();
//! let words = pack_rows_into(1, &initial, &mut state);
//! sim.begin(words, &state);
//! let out = c.find("out").unwrap();
//! let mut packed = Vec::new();
//! for frame in 0..3 {
//!     let rows: Vec<&[bool]> = seqs.iter().map(|s| s[frame].as_slice()).collect();
//!     pack_rows_into(1, &rows, &mut packed);
//!     sim.step(&packed);
//!     for (lane, seq) in seqs.iter().enumerate() {
//!         let scalar = simulate_sequence(&c, &initial[lane], seq);
//!         assert_eq!(sim.lane(out, lane), scalar[frame][out.index()]);
//!     }
//! }
//! ```

use crate::engine::PackedSim;
use crate::scalar::simulate;
use gatediag_netlist::{Circuit, GateId, GateKind, InputSlot, StateView};

/// Packs rows of equal-width boolean vectors column-major into pattern
/// words: column `j`'s words are `out[j * W .. (j + 1) * W]`, with row `r`
/// at bit `r % 64` of word `r / 64` (`W = ceil(rows.len() / 64)`, at
/// least 1). Returns `W`.
///
/// This is [`pack_vectors_into`](crate::pack_vectors_into) generalised to
/// any column count — used for packing per-frame real-input vectors
/// (columns = real inputs, rows = sequences) and initial states (columns
/// = latches, rows = sequences).
///
/// # Panics
///
/// Panics if any row's width differs from `width`.
pub fn pack_rows_into<V: AsRef<[bool]>>(width: usize, rows: &[V], out: &mut Vec<u64>) -> usize {
    for row in rows {
        assert_eq!(row.as_ref().len(), width, "row width mismatch");
    }
    let words = rows.len().div_ceil(64).max(1);
    out.clear();
    out.resize(width * words, 0);
    for (w, block) in rows.chunks(64).enumerate() {
        for j in 0..width {
            let mut word = 0u64;
            for (r, row) in block.iter().enumerate() {
                word |= (row.as_ref()[j] as u64) << r;
            }
            out[j * words + w] = word;
        }
    }
    words
}

/// Scalar sequential simulation: one input sequence, explicit latch
/// stepping. Returns the full value assignment per frame.
///
/// `initial_state` is in `circuit.latches()` order; each vector carries
/// the *real* primary inputs (latch `q` pseudo-inputs excluded), in
/// [`StateView::real_inputs`] order. This is the reference semantics
/// [`SeqPackedSim`] is drift-pinned against.
///
/// # Panics
///
/// Panics if `initial_state` or any vector has the wrong width.
pub fn simulate_sequence(
    circuit: &Circuit,
    initial_state: &[bool],
    vectors: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    let view = StateView::new(circuit);
    assert_eq!(
        initial_state.len(),
        view.num_latches(),
        "initial state width mismatch"
    );
    let mut state: Vec<bool> = initial_state.to_vec();
    let mut frames = Vec::with_capacity(vectors.len());
    for vector in vectors {
        let full = view.assemble_frame_inputs(&state, vector);
        let values = simulate(circuit, &full);
        state = view.latch_d().iter().map(|d| values[d.index()]).collect();
        frames.push(values);
    }
    frames
}

/// Frame-major packed sequential simulator: `64 * W` sequences per frame
/// on one [`PackedSim`], latch state words carried frame-to-frame.
///
/// # Lifecycle
///
/// ```text
/// new(circuit)                bind; derives the StateView lowering
///   begin(W, state_words)     reset for 64*W sequences, load initial state
///     override_kind / force   optional overlays (fault injection)
///     step(real_input_words)  one frame of every sequence; frame 0 is a
///                             full sweep, later frames propagate
///                             incrementally; latches the next state
///     lane / value_words      read any gate at the current frame
///     state_words()           the just-latched next state
///   begin(...)                restart (e.g. after changing overlays)
/// ```
///
/// Overlays installed between `begin` and the first `step` apply to every
/// frame; overlays changed mid-sequence apply from the next `step` on.
#[derive(Debug)]
pub struct SeqPackedSim<'c> {
    sim: PackedSim<'c>,
    input_slots: Vec<InputSlot>,
    latch_d: Vec<GateId>,
    num_reals: usize,
    /// Latch-major state words: latch `s`'s words at `state[s*W..(s+1)*W]`.
    state: Vec<u64>,
    /// Input-major scratch for the assembled frame inputs.
    scratch: Vec<u64>,
    frame: usize,
}

impl<'c> SeqPackedSim<'c> {
    /// Binds a sequential engine to `circuit` (which may also be purely
    /// combinational — frames are then independent).
    pub fn new(circuit: &'c Circuit) -> SeqPackedSim<'c> {
        let view = StateView::new(circuit);
        SeqPackedSim {
            sim: PackedSim::new(circuit),
            input_slots: view.input_slots().to_vec(),
            latch_d: view.latch_d().to_vec(),
            num_reals: view.real_inputs().len(),
            state: Vec::new(),
            scratch: Vec::new(),
            frame: 0,
        }
    }

    /// The circuit this engine simulates.
    pub fn circuit(&self) -> &'c Circuit {
        self.sim.circuit()
    }

    /// Words per gate (sequences are `64 * words_per_gate`).
    pub fn words_per_gate(&self) -> usize {
        self.sim.words_per_gate()
    }

    /// Number of sequence lanes carried per frame.
    pub fn num_sequences(&self) -> usize {
        self.sim.num_patterns()
    }

    /// Frames stepped since the last [`SeqPackedSim::begin`].
    pub fn frames_stepped(&self) -> usize {
        self.frame
    }

    /// Number of real primary inputs (the per-frame vector width).
    pub fn num_real_inputs(&self) -> usize {
        self.num_reals
    }

    /// Number of latches (the state width).
    pub fn num_latches(&self) -> usize {
        self.latch_d.len()
    }

    /// Starts a new batch of `64 * words` sequences from the packed
    /// initial state (latch-major, as produced by [`pack_rows_into`] with
    /// `width = num_latches()`). Clears all overlays.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0` or the state slice length is not
    /// `num_latches() * words`.
    pub fn begin(&mut self, words: usize, initial_state_words: &[u64]) {
        assert_eq!(
            initial_state_words.len(),
            self.latch_d.len() * words,
            "initial state word count mismatch"
        );
        self.sim.reset(words);
        self.state.clear();
        self.state.extend_from_slice(initial_state_words);
        self.frame = 0;
    }

    /// Simulates one frame of every sequence: assembles the combinational
    /// input words from the carried state and `real_input_words`
    /// (real-input-major, `num_real_inputs() * words_per_gate()` words,
    /// as produced by [`pack_rows_into`]), evaluates the frame, and
    /// latches the next-state words.
    ///
    /// # Panics
    ///
    /// Panics if [`SeqPackedSim::begin`] has not been called or the slice
    /// length is wrong.
    pub fn step(&mut self, real_input_words: &[u64]) {
        let w = self.sim.words_per_gate();
        assert!(w > 0, "begin() must be called first");
        assert_eq!(
            real_input_words.len(),
            self.num_reals * w,
            "real input word count mismatch"
        );
        // Assemble the full input-major word array in circuit.inputs()
        // order from the two sources.
        self.scratch.clear();
        for slot in &self.input_slots {
            match *slot {
                InputSlot::Real(r) => self
                    .scratch
                    .extend_from_slice(&real_input_words[r * w..(r + 1) * w]),
                InputSlot::State(s) => self
                    .scratch
                    .extend_from_slice(&self.state[s * w..(s + 1) * w]),
            }
        }
        self.sim.set_input_words(&self.scratch);
        if self.frame == 0 {
            // The first frame after a reset must be a full sweep (the
            // zeroed value array is not a consistent assignment).
            self.sim.sweep();
        } else {
            self.sim.propagate();
        }
        // Latch the next state.
        for (s, &d) in self.latch_d.iter().enumerate() {
            let words = self.sim.value_words(d);
            self.state[s * w..(s + 1) * w].copy_from_slice(words);
        }
        self.frame += 1;
        gatediag_obs::count("sim.seq_frames", 1);
    }

    /// The latched next-state words (latch-major), i.e. the state the
    /// *next* [`SeqPackedSim::step`] will feed into the latch outputs.
    pub fn state_words(&self) -> &[u64] {
        &self.state
    }

    /// The packed value words of gate `g` at the current frame.
    pub fn value_words(&self, g: GateId) -> &[u64] {
        self.sim.value_words(g)
    }

    /// The full packed value array at the current frame (gate-major).
    pub fn values(&self) -> &[u64] {
        self.sim.values()
    }

    /// The value of gate `g` for sequence `lane` at the current frame.
    pub fn lane(&self, g: GateId, lane: usize) -> bool {
        self.sim.lane(g, lane)
    }

    /// Replaces gate `g`'s function with `kind` (the gate-change error
    /// model) until [`SeqPackedSim::clear_kind_overrides`]. Applies from
    /// the next [`SeqPackedSim::step`] (every frame if installed before
    /// the first).
    pub fn override_kind(&mut self, g: GateId, kind: GateKind) {
        self.sim.override_kind(g, kind);
    }

    /// Removes every kind override.
    pub fn clear_kind_overrides(&mut self) {
        self.sim.clear_kind_overrides();
    }

    /// Forces gate `g` to the given pattern words until
    /// [`SeqPackedSim::clear_forced`].
    pub fn force(&mut self, g: GateId, words: &[u64]) {
        self.sim.force(g, words);
    }

    /// Removes every forcing.
    pub fn clear_forced(&mut self) {
        self.sim.clear_forced();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::{parse_bench, RandomCircuitSpec, VectorGen};

    fn toggle() -> Circuit {
        parse_bench("INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n").unwrap()
    }

    /// Random sequences for `n` lanes over `frames` frames: `[lane][frame]`.
    fn random_sequences(
        circuit: &Circuit,
        lanes: usize,
        frames: usize,
        seed: u64,
    ) -> (Vec<Vec<bool>>, Vec<Vec<Vec<bool>>>) {
        let view = StateView::new(circuit);
        let reals = view.real_inputs().len();
        let mut gen = VectorGen::new(circuit, seed);
        // VectorGen yields full-width vectors; slice down deterministically.
        let mut bit = move || {
            let v = gen.next_vector();
            v[0]
        };
        let initial: Vec<Vec<bool>> = (0..lanes)
            .map(|_| (0..view.num_latches()).map(|_| bit()).collect())
            .collect();
        let seqs: Vec<Vec<Vec<bool>>> = (0..lanes)
            .map(|_| {
                (0..frames)
                    .map(|_| (0..reals).map(|_| bit()).collect())
                    .collect()
            })
            .collect();
        (initial, seqs)
    }

    fn assert_packed_matches_scalar(circuit: &Circuit, lanes: usize, frames: usize, seed: u64) {
        let (initial, seqs) = random_sequences(circuit, lanes, frames, seed);
        let view = StateView::new(circuit);
        let mut sim = SeqPackedSim::new(circuit);
        let mut state = Vec::new();
        let words = pack_rows_into(view.num_latches(), &initial, &mut state);
        sim.begin(words, &state);
        let mut packed = Vec::new();
        for frame in 0..frames {
            let rows: Vec<&[bool]> = seqs.iter().map(|s| s[frame].as_slice()).collect();
            pack_rows_into(view.real_inputs().len(), &rows, &mut packed);
            sim.step(&packed);
            for lane in 0..lanes {
                let scalar = simulate_sequence(circuit, &initial[lane], &seqs[lane]);
                for (id, _) in circuit.iter() {
                    assert_eq!(
                        sim.lane(id, lane),
                        scalar[frame][id.index()],
                        "gate {id} lane {lane} frame {frame}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_matches_scalar_on_toggle() {
        assert_packed_matches_scalar(&toggle(), 5, 4, 7);
    }

    #[test]
    fn packed_matches_scalar_on_random_sequential_circuits() {
        for seed in 0..3 {
            let c = RandomCircuitSpec::new(5, 3, 40)
                .latches(3)
                .seed(seed)
                .generate();
            assert_packed_matches_scalar(&c, 9, 3, seed);
        }
    }

    #[test]
    fn packed_matches_scalar_beyond_64_sequences() {
        let c = RandomCircuitSpec::new(4, 2, 30)
            .latches(2)
            .seed(9)
            .generate();
        assert_packed_matches_scalar(&c, 70, 3, 9);
    }

    #[test]
    fn kind_override_matches_mutated_scalar() {
        let c = toggle();
        let d = c.find("d").unwrap();
        let mutated = c.with_gate_kind(d, GateKind::Xnor);
        let (initial, seqs) = random_sequences(&c, 6, 4, 3);
        let mut sim = SeqPackedSim::new(&c);
        let mut state = Vec::new();
        let words = pack_rows_into(1, &initial, &mut state);
        sim.begin(words, &state);
        sim.override_kind(d, GateKind::Xnor);
        let mut packed = Vec::new();
        let out = c.find("out").unwrap();
        for frame in 0..4 {
            let rows: Vec<&[bool]> = seqs.iter().map(|s| s[frame].as_slice()).collect();
            pack_rows_into(1, &rows, &mut packed);
            sim.step(&packed);
            for (lane, seq) in seqs.iter().enumerate() {
                let scalar = simulate_sequence(&mutated, &initial[lane], seq);
                assert_eq!(sim.lane(out, lane), scalar[frame][out.index()]);
            }
        }
    }

    #[test]
    fn begin_restarts_cleanly_after_overlays() {
        let c = toggle();
        let d = c.find("d").unwrap();
        let out = c.find("out").unwrap();
        let seqs = [vec![vec![true], vec![true]]];
        let initial = [vec![false]];
        let run = |sim: &mut SeqPackedSim| -> Vec<bool> {
            let mut state = Vec::new();
            let words = pack_rows_into(1, &initial, &mut state);
            sim.begin(words, &state);
            let mut packed = Vec::new();
            let mut outs = Vec::new();
            for frame in 0..2 {
                let rows: Vec<&[bool]> = seqs.iter().map(|s| s[frame].as_slice()).collect();
                pack_rows_into(1, &rows, &mut packed);
                sim.step(&packed);
                outs.push(sim.lane(out, 0));
            }
            outs
        };
        let mut sim = SeqPackedSim::new(&c);
        let clean = run(&mut sim);
        sim.override_kind(d, GateKind::Xnor);
        let faulty = run(&mut sim);
        // begin() clears overlays, so the faulty pass equals the clean one
        // unless the override is re-installed after begin().
        assert_eq!(clean, faulty);
    }

    #[test]
    fn combinational_circuits_step_independent_frames() {
        let c = gatediag_netlist::c17();
        assert_packed_matches_scalar(&c, 10, 3, 11);
    }

    #[test]
    fn pack_rows_handles_empty_rows_and_zero_width() {
        let mut out = Vec::new();
        assert_eq!(pack_rows_into::<Vec<bool>>(0, &[], &mut out), 1);
        assert!(out.is_empty());
        let rows = vec![vec![true], vec![false], vec![true]];
        assert_eq!(pack_rows_into(1, &rows, &mut out), 1);
        assert_eq!(out, vec![0b101]);
    }

    #[test]
    #[should_panic(expected = "initial state word count mismatch")]
    fn begin_rejects_wrong_state_width() {
        let c = toggle();
        let mut sim = SeqPackedSim::new(&c);
        sim.begin(1, &[0, 0]);
    }
}
