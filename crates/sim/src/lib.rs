//! Logic simulation engines for the `gatediag` diagnosis library.
//!
//! The engines, matching the needs of the paper's simulation-based
//! diagnosis flows:
//!
//! * [`PackedSim`] — the workhorse: a reusable multi-word bit-parallel
//!   engine (arbitrary pattern counts, `64 * W` patterns per topological
//!   sweep) with sparse forced-value and gate-kind-override overlays and
//!   an event-driven incremental mode that re-simulates only the fan-out
//!   cone of a change. All hot diagnosis paths (BSIM batching, validity
//!   screening, repair enumeration, test generation) run on it;
//! * [`simulate`] / [`simulate_forced`] — scalar two-valued simulation
//!   with optional forced gate values (the effect-analysis reference
//!   semantics; `PackedSim` is lane-for-lane bit-identical to it);
//! * [`simulate_packed`] — one-shot 64-way bit-parallel simulation (the
//!   "efficient parallel simulation" of Sec. 1), now a thin wrapper over
//!   `PackedSim` kept for convenience;
//! * [`simulate_tv`] / [`x_may_rectify`] — three-valued X-injection
//!   simulation (the conservative rectifiability check of Boppana et al.,
//!   the paper's reference \[5\]);
//! * [`DeltaSim`] — scalar event-driven incremental resimulation for
//!   backtracking effect analysis (Sec. 2.2's advanced approaches);
//! * [`SeqPackedSim`] / [`simulate_sequence`] — frame-major sequential
//!   simulation: `64 * W` input *sequences* at once per time frame, latch
//!   state words carried frame-to-frame over the explicit
//!   combinationalisation lowering, with the same overlay machinery for
//!   fault injection (scalar frame stepping is the pinned reference);
//! * [`parallel_map_init`] / [`Parallelism`] — a scoped worker pool for
//!   the embarrassingly parallel diagnosis fan-outs (test batches,
//!   candidate cones, repair assignments), built on
//!   [`std::thread::scope`] with one reusable engine per worker and
//!   work-stealing over a shared atomic index. Results are merged in
//!   item order, so parallel diagnosis is bit-identical to sequential.
//!
//! # `PackedSim` lifecycle
//!
//! [`PackedSim::new`] binds to a circuit; [`PackedSim::reset`] sizes the
//! scratch buffers for a pattern count; [`PackedSim::sweep`] runs one
//! full linear topological sweep over the circuit's CSR arrays; after
//! that, [`PackedSim::force`] / [`PackedSim::override_kind`] +
//! [`PackedSim::propagate`] update only affected cones, and
//! [`PackedSim::clear_forced`] / [`PackedSim::clear_kind_overrides`]
//! return to baseline in time proportional to the overlay size. Nothing
//! is allocated after `reset`, so a single engine can screen thousands
//! of candidates.
//!
//! # Examples
//!
//! ```
//! use gatediag_netlist::c17;
//! use gatediag_sim::{simulate, output_values};
//!
//! let c = c17();
//! let values = simulate(&c, &[true, true, false, false, true]);
//! let outs = output_values(&c, &values);
//! assert_eq!(outs.len(), 2);
//! ```
//!
//! Multi-word packed simulation of 128 patterns in one sweep:
//!
//! ```
//! use gatediag_netlist::{c17, VectorGen};
//! use gatediag_sim::{pack_vectors_into, simulate, PackedSim};
//!
//! let c = c17();
//! let mut gen = VectorGen::new(&c, 1);
//! let vectors: Vec<Vec<bool>> = (0..128).map(|_| gen.next_vector()).collect();
//! let mut packed = Vec::new();
//! let words = pack_vectors_into(&c, &vectors, &mut packed);
//! let mut sim = PackedSim::new(&c);
//! sim.reset(words);
//! sim.set_input_words(&packed);
//! sim.sweep();
//! assert_eq!(sim.unpack_lane(100), simulate(&c, &vectors[100]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod event;
mod packed;
mod packed_tv;
mod pool;
mod scalar;
mod sequential;
mod tv;

pub use engine::PackedSim;
pub use event::DeltaSim;
pub use packed::{
    pack_vectors, pack_vectors_into, simulate_packed, simulate_packed_forced, unpack_lane,
};
pub use packed_tv::{eval_dual_rail, simulate_tv_packed, DualRail};
pub use pool::{
    parallel_map_init, parallel_map_init_isolated, parallel_map_init_while, Parallelism,
    PersistentPool, WorkItemFailure, AUTO_WORK_FLOOR, MAX_ENV_WORKERS,
};
pub use scalar::{output_values, simulate, simulate_forced};
pub use sequential::{pack_rows_into, simulate_sequence, SeqPackedSim};
pub use tv::{eval_tv, simulate_tv, x_may_rectify, Tv};
