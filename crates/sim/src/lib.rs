//! Logic simulation engines for the `gatediag` diagnosis library.
//!
//! Three engines, matching the needs of the paper's simulation-based
//! diagnosis flows:
//!
//! * [`simulate`] / [`simulate_forced`] — scalar two-valued simulation with
//!   optional forced gate values (the effect-analysis primitive);
//! * [`simulate_packed`] — 64-way bit-parallel simulation, one topological
//!   sweep per 64 test vectors (the "efficient parallel simulation" of
//!   Sec. 1);
//! * [`simulate_tv`] / [`x_may_rectify`] — three-valued X-injection
//!   simulation (the conservative rectifiability check of Boppana et al.,
//!   the paper's reference \[5\]);
//! * [`DeltaSim`] — event-driven incremental resimulation for backtracking
//!   effect analysis (Sec. 2.2's advanced approaches).
//!
//! # Examples
//!
//! ```
//! use gatediag_netlist::c17;
//! use gatediag_sim::{simulate, output_values};
//!
//! let c = c17();
//! let values = simulate(&c, &[true, true, false, false, true]);
//! let outs = output_values(&c, &values);
//! assert_eq!(outs.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod packed;
mod packed_tv;
mod scalar;
mod tv;

pub use event::DeltaSim;
pub use packed::{pack_vectors, simulate_packed, simulate_packed_forced, unpack_lane};
pub use packed_tv::{eval_dual_rail, simulate_tv_packed, DualRail};
pub use scalar::{output_values, simulate, simulate_forced};
pub use tv::{eval_tv, simulate_tv, x_may_rectify, Tv};
