//! A small scoped worker pool for embarrassingly parallel diagnosis work.
//!
//! The diagnosis flows fan out over *independent* units of work — test
//! batches in BSIM, candidate sets in validity screening, library
//! assignments in repair enumeration, top-level branches in the backtrack
//! searches. Each unit needs mutable per-worker scratch (typically a
//! reusable [`crate::PackedSim`] engine), and the caller needs results in
//! a *deterministic* order so that parallel diagnosis is bit-identical to
//! sequential diagnosis regardless of thread count.
//!
//! The build environment is offline (no rayon), so this module implements
//! the minimal pool those flows need on plain [`std::thread::scope`]:
//!
//! * [`Parallelism`] — the thread-count policy threaded through the
//!   diagnosis option structs ([`Parallelism::Auto`] reads the machine's
//!   [`std::thread::available_parallelism`], overridable with the
//!   `GATEDIAG_WORKERS` environment variable);
//! * [`parallel_map_init`] — map `0..items` through a work function with
//!   per-worker state, stealing items off a shared atomic index and
//!   returning results in item order.
//!
//! # Determinism
//!
//! Work stealing makes the *schedule* nondeterministic, but results are
//! collected per item index and reassembled in index order, so as long as
//! the work function is a pure function of `(state, index)` — true for
//! every diagnosis kernel built on it, because each item's simulation
//! cone is recomputed from scratch relative to the worker engine's
//! baseline — the output of [`parallel_map_init`] is identical for every
//! worker count, including the inlined `workers == 1` path.
//!
//! # Example
//!
//! ```
//! use gatediag_sim::{parallel_map_init, Parallelism};
//!
//! let squares = parallel_map_init(
//!     Parallelism::Fixed(4).workers(16),
//!     16,
//!     || 0u64, // per-worker state (e.g. a PackedSim in the real flows)
//!     |_state, i| (i as u64) * (i as u64),
//! );
//! assert_eq!(squares[7], 49);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count policy for the parallel diagnosis entry points.
///
/// Every parallel flow is bit-identical to its sequential counterpart for
/// any resolved worker count, so this only trades wall time for cores.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// One worker, inline on the calling thread (no spawning at all).
    Sequential,
    /// Exactly this many workers (values of 0 and 1 mean sequential).
    /// Like the `GATEDIAG_WORKERS` override, absurdly large requests clamp
    /// to [`MAX_ENV_WORKERS`] instead of trying to spawn thousands of OS
    /// threads — `--workers 999999` on a large campaign must degrade to
    /// the cap, not exhaust thread limits.
    Fixed(usize),
    /// One worker per available core, as reported by
    /// [`std::thread::available_parallelism`]. The `GATEDIAG_WORKERS`
    /// environment variable, when set to a positive integer, overrides
    /// the probe — useful for pinning CI runs or benchmarking scaling.
    /// Malformed values fall back safely: `0` and non-numeric text are
    /// ignored (the probe runs as if the variable were unset), and
    /// absurdly large values clamp to [`MAX_ENV_WORKERS`] instead of
    /// exhausting OS thread limits.
    #[default]
    Auto,
}

/// Default work floor for [`Parallelism::workers_for`]: roughly the
/// number of scalar operations that dwarfs a thread-spawn cost.
pub const AUTO_WORK_FLOOR: usize = 1 << 17;

/// Hard cap on the worker count accepted from the `GATEDIAG_WORKERS`
/// environment variable. Spawning thousands of scoped threads per
/// diagnosis call would exhaust OS thread limits long before it bought
/// any speed; an absurdly large override is clamped here instead of
/// honoured literally (see [`Parallelism::Auto`]).
pub const MAX_ENV_WORKERS: usize = 1024;

/// Parses a `GATEDIAG_WORKERS` value.
///
/// The override must *never* panic or resolve to zero workers, whatever
/// the environment contains:
///
/// * a positive integer `1..=`[`MAX_ENV_WORKERS`] is honoured as-is;
/// * larger values (including ones that overflow `usize`) clamp to
///   [`MAX_ENV_WORKERS`];
/// * `0`, non-numeric text, and surrounding whitespace-only garbage fall
///   back to `None` — the automatic `available_parallelism` probe — so a
///   misconfigured variable degrades to the default, not to a panic or a
///   zero-worker deadlock.
fn parse_workers(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(0) => None,
        Ok(n) => Some(n.min(MAX_ENV_WORKERS)),
        // Distinguish "too large" (clamp) from "not a number" (ignore):
        // a string of digits that overflows usize still means "as many
        // as possible".
        Err(_) if !value.trim().is_empty() && value.trim().bytes().all(|b| b.is_ascii_digit()) => {
            Some(MAX_ENV_WORKERS)
        }
        Err(_) => None,
    }
}

fn env_workers() -> Option<usize> {
    std::env::var("GATEDIAG_WORKERS")
        .ok()
        .and_then(|v| parse_workers(&v))
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count for `items` units
    /// of work. Never returns 0, and never more workers than items.
    pub fn workers(self, items: usize) -> usize {
        let requested = match self {
            Parallelism::Sequential => 1,
            // Same clamp as the env override: a huge explicit request is a
            // misconfiguration, not a license to spawn a thread army.
            Parallelism::Fixed(n) => n.clamp(1, MAX_ENV_WORKERS),
            Parallelism::Auto => env_workers()
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        };
        requested.min(items.max(1))
    }

    /// [`Parallelism::workers`] with a work floor for
    /// [`Parallelism::Auto`]: when `work` — a caller-supplied estimate of
    /// the total scalar operations (see [`AUTO_WORK_FLOOR`] for the usual
    /// `floor`) — is too small to amortise thread spawning, `Auto`
    /// resolves to one inline worker. An explicit `GATEDIAG_WORKERS`
    /// override or a `Fixed(n)` policy is always honoured regardless of
    /// the floor, so pinned scaling runs measure what they ask for.
    pub fn workers_for(self, items: usize, work: usize, floor: usize) -> usize {
        match self {
            Parallelism::Auto if env_workers().is_none() && work < floor => 1,
            p => p.workers(items),
        }
    }
}

/// Maps `0..items` through `work`, fanning out over `workers` scoped
/// threads with one `init()` state each, and returns the results in item
/// order.
///
/// Items are claimed off a shared atomic counter (work stealing), so an
/// expensive item does not hold up the queue behind a static partition.
/// With `workers <= 1` (or fewer than two items) everything runs inline
/// on the calling thread with a single state and no synchronisation —
/// the sequential reference path.
///
/// # Panics
///
/// Propagates panics from `work` (the scope joins all workers first).
pub fn parallel_map_init<S, R, I, W>(workers: usize, items: usize, init: I, work: W) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
{
    charge_pool_counters(workers, items);
    if workers <= 1 || items <= 1 {
        let mut state = init();
        return (0..items).map(|i| work(&mut state, i)).collect();
    }
    parallel_map_inner(workers, items, init, work)
}

/// Pool observability: the fan-out count and item total are pure
/// functions of the workload (deterministic channel); the thread count
/// actually used varies with the worker policy, so it is quarantined in
/// the timing channel.
fn charge_pool_counters(workers: usize, items: usize) {
    gatediag_obs::count("pool.tasks", 1);
    gatediag_obs::count("pool.items", items as u64);
    let threads = if workers <= 1 || items <= 1 {
        1
    } else {
        workers.min(items)
    };
    gatediag_obs::count_nd("pool.threads", threads as u64);
}

/// [`parallel_map_init`] with a cooperative stop check: `proceed()` is
/// polled before every item claim (on every worker, including the inline
/// sequential path), and once it returns `false` no further items start —
/// skipped items come back as `None`.
///
/// This is the preemption checkpoint of the budget subsystem: the
/// diagnosis flows pass a deadline probe so a wall-clock budget can stop a
/// fan-out *between* work items without poisoning the items already
/// computed. Items are never half-done: an item is either `Some(result)`
/// (claimed before the stop) or `None`. Because workers race the clock
/// independently, *which* items complete under a deadline is
/// nondeterministic — callers quarantine deadline truncation exactly like
/// wall-clock timing. With `proceed` constant-`true` the result is
/// `parallel_map_init` with every element wrapped in `Some`.
pub fn parallel_map_init_while<S, R, I, W, P>(
    workers: usize,
    items: usize,
    init: I,
    work: W,
    proceed: P,
) -> Vec<Option<R>>
where
    R: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
    P: Fn() -> bool + Sync,
{
    charge_pool_counters(workers, items);
    if workers <= 1 || items <= 1 {
        let mut state = init();
        return (0..items)
            .map(|i| proceed().then(|| work(&mut state, i)))
            .collect();
    }
    // Sticky stop: once any worker observes `proceed() == false`, every
    // later claim on every worker is skipped, so the stop is cooperative
    // but prompt even when the probe itself is cheap-but-not-free.
    let stopped = std::sync::atomic::AtomicBool::new(false);
    parallel_map_inner(workers, items, init, |state: &mut S, i| {
        if stopped.load(Ordering::Relaxed) {
            return None;
        }
        if !proceed() {
            stopped.store(true, Ordering::Relaxed);
            return None;
        }
        Some(work(state, i))
    })
}

/// One work item that panicked inside [`parallel_map_init_isolated`].
///
/// The pool stringifies the panic payload (the `String`/`&str` message of
/// an `assert!`/`panic!`, or a placeholder for exotic payloads) and
/// records where the failure happened. The worker index is a *schedule*
/// artifact — it tells you which thread was unlucky, and is therefore
/// nondeterministic across runs; callers that publish deterministic
/// reports must key on `item` and `reason` only.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkItemFailure {
    /// Index of the work item that panicked.
    pub item: usize,
    /// Index of the worker thread that was running it (0 on the inline
    /// sequential path). Nondeterministic under work stealing.
    pub worker: usize,
    /// The panic payload, stringified.
    pub reason: String,
}

impl std::fmt::Display for WorkItemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "work item {} panicked (worker {}): {}",
            self.item, self.worker, self.reason
        )
    }
}

/// Stringifies a caught panic payload: the common `String` / `&'static
/// str` payloads pass through, anything else becomes a placeholder.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// [`parallel_map_init`] with **panic isolation**: each work item runs
/// under [`std::panic::catch_unwind`], so one poisoned item no longer
/// kills its siblings — the pool keeps draining the queue and the item
/// comes back as `Err(WorkItemFailure)` instead of unwinding the caller.
///
/// This is the execution primitive of the fault-tolerant campaign layer;
/// the propagate-by-default [`parallel_map_init`] remains the right
/// choice for the bit-identity-pinned engine flows, where a panic is a
/// bug that must fail the run loudly.
///
/// # State poisoning
///
/// A panic can leave the per-worker state `S` half-mutated (a simulation
/// engine mid-update, a buffer partially written). The pool therefore
/// **discards the worker's state after a caught panic** and lazily
/// re-creates it with `init()` before the next item, so a failure can
/// never leak corruption into later items. (If dropping the poisoned
/// state itself panics, the drop panic is swallowed too.) Panics raised
/// by `init()` itself are *not* isolated — a broken state factory would
/// fail every item, so it propagates like a plain bug.
///
/// # Determinism
///
/// Results and failures are reassembled in item order. As long as `work`
/// is a pure function of `(state, index)` — including any panic it
/// raises and the payload it raises it with — the returned vector
/// (including each failure's `item` and `reason`) is identical for every
/// worker count; only the `worker` field of a failure depends on the
/// schedule.
///
/// # Examples
///
/// ```
/// use gatediag_sim::parallel_map_init_isolated;
///
/// let out = parallel_map_init_isolated(
///     4,
///     4,
///     || (),
///     |(), i| {
///         assert!(i != 2, "item 2 is poisoned");
///         i * 10
///     },
/// );
/// assert_eq!(out[0], Ok(0));
/// assert_eq!(out[3], Ok(30), "items after the panic still ran");
/// let failure = out[2].as_ref().unwrap_err();
/// assert_eq!(failure.item, 2);
/// assert!(failure.reason.contains("item 2 is poisoned"));
/// ```
pub fn parallel_map_init_isolated<S, R, I, W>(
    workers: usize,
    items: usize,
    init: I,
    work: W,
) -> Vec<Result<R, WorkItemFailure>>
where
    R: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    // Runs one item against a lazily (re-)initialised state slot.
    let run_one = |state: &mut Option<S>, worker: usize, i: usize| -> Result<R, WorkItemFailure> {
        let slot = state.get_or_insert_with(&init);
        match catch_unwind(AssertUnwindSafe(|| work(slot, i))) {
            Ok(result) => Ok(result),
            Err(payload) => {
                // The state may be poisoned mid-mutation: throw it away
                // (guarding against drop panics) and re-init lazily.
                let poisoned = state.take();
                let _ = catch_unwind(AssertUnwindSafe(move || drop(poisoned)));
                Err(WorkItemFailure {
                    item: i,
                    worker,
                    reason: panic_reason(payload.as_ref()),
                })
            }
        }
    };
    charge_pool_counters(workers, items);
    if workers <= 1 || items <= 1 {
        let mut state: Option<S> = None;
        return (0..items).map(|i| run_one(&mut state, 0, i)).collect();
    }
    let workers = workers.min(items);
    let next = AtomicUsize::new(0);
    // Forward the caller's observability sink into the workers: their
    // counter charges merge (sums commute, so totals stay deterministic)
    // while span recording remains owner-thread-only.
    let sink = gatediag_obs::current();
    let mut collected: Vec<Vec<(usize, Result<R, WorkItemFailure>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    let next = &next;
                    let sink = &sink;
                    scope.spawn(move || {
                        let _obs = sink.clone().map(gatediag_obs::install);
                        let mut state: Option<S> = None;
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items {
                                break;
                            }
                            out.push((i, run_one(&mut state, w, i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(pairs) => pairs,
                    // Only `init()` (or a pool bug) can still unwind a
                    // worker; that is a caller bug, not an isolated work
                    // failure — re-raise it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
    let mut slots: Vec<Option<Result<R, WorkItemFailure>>> = (0..items).map(|_| None).collect();
    for pairs in &mut collected {
        for (i, r) in pairs.drain(..) {
            debug_assert!(slots[i].is_none(), "item {i} computed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item claimed exactly once"))
        .collect()
}

/// The shared fan-out kernel: `workers >= 2` scoped threads, work-stealing
/// over an atomic index, index-ordered reassembly.
fn parallel_map_inner<S, R, I, W>(workers: usize, items: usize, init: I, work: W) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
{
    let workers = workers.min(items);
    let next = AtomicUsize::new(0);
    // See parallel_map_init_isolated: counters merge across workers,
    // spans stay on the owning thread.
    let sink = gatediag_obs::current();
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let sink = &sink;
                let next = &next;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let _obs = sink.clone().map(gatediag_obs::install);
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        out.push((i, work(&mut state, i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(pairs) => pairs,
                // Re-raise with the original payload so the worker's
                // assertion message reaches the caller intact.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Reassemble in item order: every index appears exactly once.
    let mut slots: Vec<Option<R>> = (0..items).map(|_| None).collect();
    for pairs in &mut collected {
        for (i, r) in pairs.drain(..) {
            debug_assert!(slots[i].is_none(), "item {i} computed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item claimed exactly once"))
        .collect()
}

/// A boxed unit of work queued on a [`PersistentPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between a [`PersistentPool`] handle and its workers.
struct JobQueue {
    jobs: std::sync::Mutex<std::collections::VecDeque<Job>>,
    available: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            jobs: std::sync::Mutex::new(std::collections::VecDeque::new()),
            available: std::sync::Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Blocks until a job is available or shutdown is signalled.
    fn next(&self) -> Option<Job> {
        let mut jobs = self
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            jobs = self
                .available
                .wait(jobs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(job);
        self.available.notify_one();
    }
}

/// A long-lived worker pool for multiplexing independent requests.
///
/// `parallel_map_*` spin up scoped threads per call, which is the right
/// shape for one large fan-out but wasteful for a daemon that fields many
/// small requests: thread spawn cost would land on every request's latency.
/// `PersistentPool` keeps a fixed set of workers alive and hands each
/// submitted job to one of them.
///
/// Two properties matter for the serve layer:
///
/// - **Panic isolation:** a job that panics reports the panic message to its
///   submitter via `Err`; the worker itself survives and keeps draining the
///   queue, so one poisoned request cannot take down the daemon.
/// - **No cross-request observability bleed:** the pool does *not* forward
///   the submitter's obs sink (unlike `parallel_map_inner`). A job that
///   wants counters installs its own sink inside the closure, keeping each
///   request's trace self-contained.
pub struct PersistentPool {
    queue: std::sync::Arc<JobQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PersistentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl PersistentPool {
    /// Spawns a pool with `workers` threads (clamped to `1..=MAX_ENV_WORKERS`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, MAX_ENV_WORKERS);
        let queue = std::sync::Arc::new(JobQueue::new());
        let handles = (0..workers)
            .map(|i| {
                let queue = std::sync::Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("gatediag-pool-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.next() {
                            // The job's own catch_unwind (in `run`) reports
                            // the panic to the submitter; this outer guard
                            // only shields the worker loop from jobs queued
                            // through some future raw path.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        PersistentPool {
            queue,
            workers: handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `job` on a pool worker and blocks until it finishes.
    ///
    /// Returns `Err` with the stringified panic payload if the job panics;
    /// the worker that ran it stays alive either way.
    pub fn run<R, F>(&self, job: F) -> Result<R, String>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        self.queue.push(Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .map_err(|payload| panic_reason(payload.as_ref()));
            // The submitter may have given up waiting; a dead receiver is fine.
            let _ = tx.send(result);
        }));
        match rx.recv() {
            Ok(result) => result,
            // The channel can only drop without a send if the job was lost to
            // shutdown — report that rather than panicking in the caller.
            Err(_) => Err("worker pool shut down before the job completed".to_string()),
        }
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_all_worker_counts() {
        for workers in [1usize, 2, 3, 4, 9] {
            let out = parallel_map_init(workers, 37, || (), |(), i| i * 3);
            assert_eq!(
                out,
                (0..37).map(|i| i * 3).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn zero_items_yields_empty() {
        let out: Vec<usize> = parallel_map_init(4, 0, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map_init(16, 3, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts how many items it processed; the sum
        // over all items of "my state had seen >= 0 items" is trivially
        // items, but more usefully the sequential path must thread ONE
        // state through everything.
        let out = parallel_map_init(
            1,
            5,
            || 0usize,
            |seen, _i| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn worker_panics_propagate_with_original_message() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_init(
                2,
                8,
                || (),
                |(), i| {
                    assert!(i != 5, "item 5 is forbidden");
                    i
                },
            )
        })
        .expect_err("panic must propagate to the caller");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("item 5 is forbidden"),
            "original payload lost: {message:?}"
        );
    }

    /// The isolated pool run used by the satellite coverage tests: item
    /// `i` panics iff `poison(i)`, survivors return `i * 7`.
    fn isolated_run(
        workers: usize,
        items: usize,
        poison: fn(usize) -> bool,
    ) -> Vec<Result<usize, WorkItemFailure>> {
        parallel_map_init_isolated(
            workers,
            items,
            || (),
            move |(), i| {
                assert!(!poison(i), "poisoned item {i}");
                i * 7
            },
        )
    }

    /// Strips the schedule-dependent worker index so outcomes can be
    /// compared across worker counts.
    fn deterministic_view(
        out: &[Result<usize, WorkItemFailure>],
    ) -> Vec<Result<usize, (usize, String)>> {
        out.iter()
            .map(|r| match r {
                Ok(v) => Ok(*v),
                Err(f) => Err((f.item, f.reason.clone())),
            })
            .collect()
    }

    #[test]
    fn isolated_panic_in_first_item_keeps_siblings() {
        for workers in [1usize, 2, 8] {
            let out = isolated_run(workers, 6, |i| i == 0);
            assert_eq!(out.len(), 6, "{workers} workers");
            let failure = out[0].as_ref().expect_err("first item panicked");
            assert_eq!(failure.item, 0);
            assert!(failure.reason.contains("poisoned item 0"));
            for (i, r) in out.iter().enumerate().skip(1) {
                assert_eq!(r, &Ok(i * 7), "{workers} workers, item {i}");
            }
        }
    }

    #[test]
    fn isolated_panic_in_last_item_keeps_siblings() {
        for workers in [1usize, 2, 8] {
            let out = isolated_run(workers, 6, |i| i == 5);
            for (i, r) in out.iter().enumerate().take(5) {
                assert_eq!(r, &Ok(i * 7), "{workers} workers, item {i}");
            }
            let failure = out[5].as_ref().expect_err("last item panicked");
            assert_eq!(failure.item, 5);
            assert!(failure.reason.contains("poisoned item 5"));
        }
    }

    #[test]
    fn isolated_all_items_panic_still_drains_the_queue() {
        for workers in [1usize, 2, 8] {
            let out = isolated_run(workers, 5, |_| true);
            assert_eq!(out.len(), 5, "{workers} workers");
            for (i, r) in out.iter().enumerate() {
                let failure = r.as_ref().expect_err("everything panicked");
                assert_eq!(failure.item, i);
                assert!(failure.reason.contains(&format!("poisoned item {i}")));
            }
        }
    }

    #[test]
    fn isolated_more_workers_than_items() {
        let out = isolated_run(16, 3, |i| i == 1);
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1].as_ref().unwrap_err().item, 1);
        assert_eq!(out[2], Ok(14));
    }

    #[test]
    fn isolated_results_index_ordered_and_identical_across_worker_counts() {
        let baseline = deterministic_view(&isolated_run(1, 41, |i| i % 7 == 3));
        // Survivors must sit at their own index with their own value.
        for (i, r) in baseline.iter().enumerate() {
            match r {
                Ok(v) => assert_eq!(*v, i * 7),
                Err((item, _)) => assert_eq!(*item, i),
            }
        }
        for workers in [2usize, 8] {
            let view = deterministic_view(&isolated_run(workers, 41, |i| i % 7 == 3));
            assert_eq!(view, baseline, "{workers} workers drifted");
        }
    }

    #[test]
    fn isolated_state_is_reinitialised_after_a_panic() {
        // Sequential path: the state is a counter bumped BEFORE the
        // panic, so a poisoned (stale) state would leak inflated counts
        // into later items if it were reused.
        let out = parallel_map_init_isolated(
            1,
            5,
            || 0usize,
            |seen, i| {
                *seen += 1;
                assert!(i != 2, "boom at {i}");
                *seen
            },
        );
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        assert!(out[2].is_err());
        // Fresh state after the panic: counts restart at 1.
        assert_eq!(out[3], Ok(1));
        assert_eq!(out[4], Ok(2));
    }

    #[test]
    fn isolated_zero_items_yields_empty() {
        let out: Vec<Result<usize, WorkItemFailure>> =
            parallel_map_init_isolated(4, 0, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn isolated_stringifies_non_string_payloads() {
        let out = parallel_map_init_isolated(
            1,
            1,
            || (),
            |(), _| -> usize { std::panic::panic_any(42usize) },
        );
        let failure = out[0].as_ref().unwrap_err();
        assert_eq!(failure.reason, "non-string panic payload");
    }

    #[test]
    fn workers_never_exceeds_items_and_never_zero() {
        assert_eq!(Parallelism::Sequential.workers(100), 1);
        assert_eq!(Parallelism::Fixed(0).workers(100), 1);
        assert_eq!(Parallelism::Fixed(8).workers(3), 3);
        assert_eq!(Parallelism::Fixed(8).workers(0), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
        // Explicit Fixed requests clamp exactly like the env override:
        // `--workers 999999` must never try to spawn that many threads.
        assert_eq!(
            Parallelism::Fixed(999_999).workers(usize::MAX),
            MAX_ENV_WORKERS
        );
        assert_eq!(
            Parallelism::Fixed(usize::MAX).workers(usize::MAX),
            MAX_ENV_WORKERS
        );
        assert_eq!(
            Parallelism::Fixed(MAX_ENV_WORKERS).workers(usize::MAX),
            MAX_ENV_WORKERS
        );
        // The clamp never bites below the cap, and items still bound it.
        assert_eq!(
            Parallelism::Fixed(MAX_ENV_WORKERS - 1).workers(usize::MAX),
            { MAX_ENV_WORKERS - 1 }
        );
        assert_eq!(Parallelism::Fixed(999_999).workers(3), 3);
        // The work-floor variant inherits the clamp too.
        assert_eq!(
            Parallelism::Fixed(999_999).workers_for(usize::MAX, 1 << 30, 1000),
            MAX_ENV_WORKERS
        );
    }

    #[test]
    fn env_override_parsing_never_panics_or_yields_zero() {
        // Honoured as-is.
        assert_eq!(parse_workers("1"), Some(1));
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 8 "), Some(8));
        assert_eq!(parse_workers("007"), Some(7));
        // Zero means "no override", never a zero-worker pool.
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers("000"), None);
        // Non-numeric garbage means "no override".
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("  "), None);
        assert_eq!(parse_workers("all"), None);
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("4.5"), None);
        assert_eq!(parse_workers("4x"), None);
        // Absurdly large values clamp instead of spawning a thread army.
        assert_eq!(parse_workers("1000000"), Some(MAX_ENV_WORKERS));
        assert_eq!(
            parse_workers(&usize::MAX.to_string()),
            Some(MAX_ENV_WORKERS)
        );
        // Values that overflow usize entirely still clamp.
        assert_eq!(
            parse_workers("999999999999999999999999999999"),
            Some(MAX_ENV_WORKERS)
        );
        // The cap itself passes through.
        assert_eq!(
            parse_workers(&MAX_ENV_WORKERS.to_string()),
            Some(MAX_ENV_WORKERS)
        );
    }

    #[test]
    fn map_while_true_predicate_matches_plain_map() {
        for workers in [1usize, 2, 4] {
            let out = parallel_map_init_while(workers, 9, || (), |(), i| i * 2, || true);
            assert_eq!(
                out,
                (0..9).map(|i| Some(i * 2)).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn map_while_false_predicate_skips_everything() {
        for workers in [1usize, 3] {
            let out: Vec<Option<usize>> =
                parallel_map_init_while(workers, 5, || (), |(), i| i, || false);
            assert_eq!(out, vec![None; 5], "{workers} workers");
        }
    }

    #[test]
    fn map_while_stop_is_sticky() {
        use std::sync::atomic::AtomicUsize;
        // Allow exactly three claims, then stop: afterwards every item is
        // None and the computed ones are a subset of the claims granted.
        let grants = AtomicUsize::new(3);
        let out = parallel_map_init_while(
            2,
            10,
            || (),
            |(), i| i,
            || {
                // Decrement-style gate: positive means "go".
                loop {
                    let g = grants.load(Ordering::Relaxed);
                    if g == 0 {
                        return false;
                    }
                    if grants
                        .compare_exchange(g, g - 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        return true;
                    }
                }
            },
        );
        let done = out.iter().filter(|r| r.is_some()).count();
        assert!(done <= 3, "more items ran than the gate allowed: {out:?}");
        for (i, r) in out.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn persistent_pool_runs_jobs_and_returns_results() {
        let pool = PersistentPool::new(4);
        assert_eq!(pool.workers(), 4);
        for i in 0..32_u64 {
            assert_eq!(pool.run(move || i * i), Ok(i * i));
        }
    }

    #[test]
    fn persistent_pool_clamps_worker_count() {
        assert_eq!(PersistentPool::new(0).workers(), 1);
        assert_eq!(
            PersistentPool::new(MAX_ENV_WORKERS + 7).workers(),
            MAX_ENV_WORKERS
        );
    }

    #[test]
    fn persistent_pool_survives_a_panicking_job() {
        let pool = PersistentPool::new(2);
        let err = pool
            .run(|| -> u32 { panic!("chaos: deliberate test panic") })
            .unwrap_err();
        assert!(err.contains("deliberate test panic"), "got: {err}");
        // Every worker still drains the queue after the panic.
        for i in 0..8_u64 {
            assert_eq!(pool.run(move || i + 1), Ok(i + 1));
        }
    }

    #[test]
    fn persistent_pool_handles_concurrent_submitters() {
        use std::sync::Arc;
        let pool = Arc::new(PersistentPool::new(3));
        std::thread::scope(|scope| {
            for t in 0..6_u64 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for i in 0..16_u64 {
                        assert_eq!(pool.run(move || t * 1000 + i), Ok(t * 1000 + i));
                    }
                });
            }
        });
    }

    #[test]
    fn persistent_pool_drop_joins_workers() {
        let pool = PersistentPool::new(2);
        assert_eq!(pool.run(|| 7), Ok(7));
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn work_floor_only_gates_auto() {
        // Below the floor, Auto stays inline; explicit Fixed fans out.
        assert_eq!(Parallelism::Auto.workers_for(64, 100, 1000), 1);
        assert_eq!(Parallelism::Fixed(4).workers_for(64, 100, 1000), 4);
        assert_eq!(Parallelism::Sequential.workers_for(64, 1 << 30, 1000), 1);
        // At or above the floor, Auto falls through to the normal probe.
        assert_eq!(
            Parallelism::Auto.workers_for(64, 1000, 1000),
            Parallelism::Auto.workers(64)
        );
    }
}
