//! Event-driven incremental resimulation.
//!
//! The advanced simulation-based diagnosis approaches re-simulate the
//! circuit after every trial correction; an event-driven simulator only
//! touches the fan-out cone of the change, which is what makes the
//! backtrack search of Liu/Veneris-style incremental diagnosis affordable.

use gatediag_netlist::{Circuit, GateId, GateKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Incremental simulator holding a full value assignment that can be
/// updated by changing inputs or forcing gates, propagating only through
/// affected cones.
///
/// # Examples
///
/// ```
/// use gatediag_sim::DeltaSim;
/// let c = gatediag_netlist::c17();
/// let mut sim = DeltaSim::new(&c, &[false; 5]);
/// let before = sim.values().to_vec();
/// sim.set_input(0, true);
/// sim.propagate();
/// // A full resimulation agrees with the incremental result.
/// let mut v = vec![true, false, false, false, false];
/// let full = gatediag_sim::simulate(&c, &v);
/// assert_eq!(sim.values(), &full[..]);
/// # let _ = before; let _ = &mut v;
/// ```
#[derive(Clone, Debug)]
pub struct DeltaSim<'c> {
    circuit: &'c Circuit,
    values: Vec<bool>,
    forced: Vec<Option<bool>>,
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
    events: u64,
}

impl<'c> DeltaSim<'c> {
    /// Creates a simulator initialised with a full simulation of `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != circuit.inputs().len()`.
    pub fn new(circuit: &'c Circuit, inputs: &[bool]) -> Self {
        let values = crate::scalar::simulate(circuit, inputs);
        DeltaSim {
            circuit,
            values,
            forced: vec![None; circuit.len()],
            queue: BinaryHeap::new(),
            queued: vec![false; circuit.len()],
            events: 0,
        }
    }

    /// Current value of a gate (valid after [`DeltaSim::propagate`]).
    #[inline]
    pub fn value(&self, id: GateId) -> bool {
        self.values[id.index()]
    }

    /// The full value assignment (valid after [`DeltaSim::propagate`]).
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Total number of gate evaluations performed by propagation so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn schedule(&mut self, id: GateId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.queue
                .push(Reverse((self.circuit.level(id), id.index() as u32)));
        }
    }

    fn touch(&mut self, id: GateId) {
        // Re-evaluate `id` itself (its forcing or input value changed).
        self.schedule(id);
    }

    /// Changes the `position`-th primary input (by `circuit.inputs()` order).
    pub fn set_input(&mut self, position: usize, value: bool) {
        let id = self.circuit.inputs()[position];
        if self.values[id.index()] != value || self.forced[id.index()].is_some() {
            self.values[id.index()] = value;
            for &f in self.circuit.fanouts(id) {
                self.schedule(f);
            }
        }
    }

    /// Replaces the entire input vector.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from `circuit.inputs()`.
    pub fn set_vector(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.circuit.inputs().len(),
            "input vector width mismatch"
        );
        for (i, &v) in inputs.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Forces a gate to a fixed value (ignoring its logic) until
    /// [`DeltaSim::unforce`] is called.
    pub fn force(&mut self, id: GateId, value: bool) {
        self.forced[id.index()] = Some(value);
        self.touch(id);
    }

    /// Removes a forcing, letting the gate's logic drive it again.
    pub fn unforce(&mut self, id: GateId) {
        if self.forced[id.index()].take().is_some() {
            self.touch(id);
        }
    }

    /// Removes all forcings.
    pub fn unforce_all(&mut self) {
        for i in 0..self.forced.len() {
            if self.forced[i].take().is_some() {
                self.touch(GateId::new(i));
            }
        }
    }

    /// Propagates pending events in level order; returns the number of gate
    /// evaluations performed.
    pub fn propagate(&mut self) -> u64 {
        let mut evals = 0;
        while let Some(Reverse((_lvl, idx))) = self.queue.pop() {
            let id = GateId::new(idx as usize);
            self.queued[id.index()] = false;
            let gate = self.circuit.gate(id);
            let new = match self.forced[id.index()] {
                Some(v) => v,
                None => {
                    if gate.kind() == GateKind::Input {
                        self.values[id.index()]
                    } else {
                        gate.kind()
                            .eval_bool(gate.fanins().iter().map(|f| self.values[f.index()]))
                    }
                }
            };
            evals += 1;
            if new != self.values[id.index()] {
                self.values[id.index()] = new;
                for &f in self.circuit.fanouts(id) {
                    self.schedule(f);
                }
            }
        }
        self.events += evals;
        evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{simulate, simulate_forced};
    use gatediag_netlist::{RandomCircuitSpec, VectorGen};
    use rand::{Rng, SeedableRng};

    #[test]
    fn tracks_full_resimulation_under_input_changes() {
        let c = RandomCircuitSpec::new(8, 3, 80).seed(5).generate();
        let mut gen = VectorGen::new(&c, 5);
        let mut vector = gen.next_vector();
        let mut sim = DeltaSim::new(&c, &vector);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        for _ in 0..50 {
            let i = rng.gen_range(0..vector.len());
            vector[i] = !vector[i];
            sim.set_input(i, vector[i]);
            sim.propagate();
            assert_eq!(sim.values(), &simulate(&c, &vector)[..]);
        }
    }

    #[test]
    fn tracks_full_resimulation_under_forcing() {
        let c = RandomCircuitSpec::new(6, 2, 60).seed(8).generate();
        let mut gen = VectorGen::new(&c, 8);
        let vector = gen.next_vector();
        let mut sim = DeltaSim::new(&c, &vector);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let ids: Vec<_> = c
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut active: Vec<(gatediag_netlist::GateId, bool)> = Vec::new();
        for round in 0..40 {
            if !active.is_empty() && rng.gen_bool(0.4) {
                let (id, _) = active.swap_remove(rng.gen_range(0..active.len()));
                sim.unforce(id);
            } else {
                let id = ids[rng.gen_range(0..ids.len())];
                let v = rng.gen_bool(0.5);
                active.retain(|&(g, _)| g != id);
                active.push((id, v));
                sim.force(id, v);
            }
            sim.propagate();
            let reference = simulate_forced(&c, &vector, &active);
            assert_eq!(sim.values(), &reference[..], "round {round}");
        }
    }

    #[test]
    fn unforce_all_restores_baseline() {
        let c = RandomCircuitSpec::new(5, 2, 30).seed(2).generate();
        let vector = VectorGen::new(&c, 2).next_vector();
        let baseline = simulate(&c, &vector);
        let mut sim = DeltaSim::new(&c, &vector);
        let some_gate = c
            .iter()
            .find(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .unwrap();
        sim.force(some_gate, !baseline[some_gate.index()]);
        sim.propagate();
        assert_ne!(sim.values(), &baseline[..]);
        sim.unforce_all();
        sim.propagate();
        assert_eq!(sim.values(), &baseline[..]);
    }

    #[test]
    fn event_counts_are_local() {
        // Changing a top-level input near the outputs should evaluate far
        // fewer gates than the whole circuit.
        let c = RandomCircuitSpec::new(16, 4, 400).seed(3).generate();
        let vector = VectorGen::new(&c, 3).next_vector();
        let mut sim = DeltaSim::new(&c, &vector);
        sim.propagate();
        let before = sim.events();
        // Force a gate at maximal level: its cone is small.
        let deepest = c
            .iter()
            .max_by_key(|(id, _)| c.level(*id))
            .map(|(id, _)| id)
            .unwrap();
        sim.force(deepest, true);
        sim.propagate();
        let cost = sim.events() - before;
        assert!(
            cost < c.len() as u64 / 2,
            "event-driven resim touched {cost} of {} gates",
            c.len()
        );
    }
}
