//! 64-way bit-parallel two-valued simulation.
//!
//! Each `u64` word carries 64 independent patterns, one per bit lane. This
//! is the "efficient parallel simulation with linear runtime" the paper
//! attributes to simulation-based diagnosis: one topological sweep evaluates
//! 64 test vectors simultaneously.

use gatediag_netlist::{Circuit, GateId};

/// Packs any number of input vectors into per-input pattern words,
/// reusing a caller-provided buffer.
///
/// `vectors[p][i]` is the value of input `i` in pattern `p`. The buffer is
/// filled input-major with `W = ceil(vectors.len() / 64)` words per input:
/// input `i`'s words are `out[i * W .. (i + 1) * W]`, with pattern `p` at
/// bit `p % 64` of word `p / 64` — exactly the layout
/// [`PackedSim::set_input_words`](crate::PackedSim::set_input_words)
/// consumes. Returns `W`.
///
/// The inner loop packs one whole word at a time with branch-free bit
/// accumulation instead of the per-bit test-and-set the pre-CSR packer
/// used, and the buffer reuse makes repeated packing allocation-free.
///
/// # Panics
///
/// Panics if a vector's width differs from `circuit.inputs()`.
pub fn pack_vectors_into<V: AsRef<[bool]>>(
    circuit: &Circuit,
    vectors: &[V],
    out: &mut Vec<u64>,
) -> usize {
    let width = circuit.inputs().len();
    for vector in vectors {
        assert_eq!(vector.as_ref().len(), width, "input vector width mismatch");
    }
    let words = vectors.len().div_ceil(64).max(1);
    out.clear();
    out.resize(width * words, 0);
    for (w, block) in vectors.chunks(64).enumerate() {
        for i in 0..width {
            let mut word = 0u64;
            for (p, vector) in block.iter().enumerate() {
                word |= (vector.as_ref()[i] as u64) << p;
            }
            out[i * words + w] = word;
        }
    }
    words
}

/// Packs up to 64 input vectors into per-input pattern words.
///
/// `vectors[p][i]` is the value of input `i` in pattern `p`; the result has
/// one word per primary input with bit `p` carrying pattern `p`. For more
/// than 64 patterns, or to reuse a buffer across calls, use
/// [`pack_vectors_into`].
///
/// # Panics
///
/// Panics if more than 64 vectors are supplied or a vector has the wrong
/// width.
pub fn pack_vectors(circuit: &Circuit, vectors: &[Vec<bool>]) -> Vec<u64> {
    assert!(vectors.len() <= 64, "at most 64 patterns per word");
    let mut words = Vec::new();
    pack_vectors_into(circuit, vectors, &mut words);
    words
}

/// Simulates 64 patterns at once; returns one word per gate.
///
/// `input_words[i]` carries the 64 patterns of primary input `i`.
///
/// # Panics
///
/// Panics if `input_words.len() != circuit.inputs().len()`.
///
/// # Examples
///
/// ```
/// let c = gatediag_netlist::c17();
/// let vectors = vec![vec![false; 5], vec![true; 5]];
/// let words = gatediag_sim::simulate_packed(&c, &gatediag_sim::pack_vectors(&c, &vectors));
/// // Lane 0 must equal a scalar simulation of the first vector.
/// let scalar = gatediag_sim::simulate(&c, &vectors[0]);
/// for (w, &s) in words.iter().zip(&scalar) {
///     assert_eq!(w & 1 == 1, s);
/// }
/// ```
pub fn simulate_packed(circuit: &Circuit, input_words: &[u64]) -> Vec<u64> {
    simulate_packed_forced(circuit, input_words, &[])
}

/// Packed simulation with per-gate forced pattern words.
///
/// Each `(gate, word)` pair overrides the gate's value lanes with `word`
/// (all 64 lanes forced). Used for bulk effect analysis where a correction
/// candidate takes different trial values across lanes.
///
/// # Panics
///
/// Panics if `input_words.len() != circuit.inputs().len()`.
pub fn simulate_packed_forced(
    circuit: &Circuit,
    input_words: &[u64],
    forced: &[(GateId, u64)],
) -> Vec<u64> {
    assert_eq!(
        input_words.len(),
        circuit.inputs().len(),
        "input word count mismatch"
    );
    let mut sim = crate::PackedSim::new(circuit);
    sim.reset(1);
    sim.set_input_words(input_words);
    for &(id, w) in forced {
        sim.force(id, &[w]);
    }
    sim.sweep();
    sim.values().to_vec()
}

/// Extracts pattern `lane` from packed gate words as a `Vec<bool>`.
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    assert!(lane < 64, "lane must be below 64");
    words.iter().map(|w| w >> lane & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::simulate;
    use gatediag_netlist::{c17, parity_tree, RandomCircuitSpec, VectorGen};

    #[test]
    fn packed_matches_scalar_on_c17() {
        let c = c17();
        let mut gen = VectorGen::new(&c, 99);
        let vectors: Vec<Vec<bool>> = (0..64).map(|_| gen.next_vector()).collect();
        let words = simulate_packed(&c, &pack_vectors(&c, &vectors));
        for (lane, vector) in vectors.iter().enumerate() {
            let scalar = simulate(&c, vector);
            assert_eq!(unpack_lane(&words, lane), scalar, "lane {lane}");
        }
    }

    #[test]
    fn packed_matches_scalar_on_random_circuits() {
        for seed in 0..4 {
            let c = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
            let mut gen = VectorGen::new(&c, seed);
            let vectors: Vec<Vec<bool>> = (0..32).map(|_| gen.next_vector()).collect();
            let words = simulate_packed(&c, &pack_vectors(&c, &vectors));
            for (lane, vector) in vectors.iter().enumerate() {
                assert_eq!(unpack_lane(&words, lane), simulate(&c, vector));
            }
        }
    }

    #[test]
    fn packed_forced_matches_scalar_forced() {
        let c = parity_tree(8);
        let g = c.find("p0").unwrap();
        let mut gen = VectorGen::new(&c, 1);
        let vectors: Vec<Vec<bool>> = (0..8).map(|_| gen.next_vector()).collect();
        // Force alternate lanes to 1.
        let force_word = 0b10101010u64;
        let words = simulate_packed_forced(&c, &pack_vectors(&c, &vectors), &[(g, force_word)]);
        for (lane, vector) in vectors.iter().enumerate() {
            let forced_val = force_word >> lane & 1 == 1;
            let scalar = crate::scalar::simulate_forced(&c, vector, &[(g, forced_val)]);
            assert_eq!(unpack_lane(&words, lane), scalar, "lane {lane}");
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = c17();
        let vectors = vec![
            vec![true, false, true, false, true],
            vec![false, true, false, true, false],
        ];
        let words = pack_vectors(&c, &vectors);
        for (lane, v) in vectors.iter().enumerate() {
            let lane_bits: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
            assert_eq!(&lane_bits, v);
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_too_many_patterns() {
        let c = c17();
        let vectors: Vec<Vec<bool>> = (0..65).map(|_| vec![false; 5]).collect();
        let _ = pack_vectors(&c, &vectors);
    }
}
