//! 64-way bit-parallel two-valued simulation.
//!
//! Each `u64` word carries 64 independent patterns, one per bit lane. This
//! is the "efficient parallel simulation with linear runtime" the paper
//! attributes to simulation-based diagnosis: one topological sweep evaluates
//! 64 test vectors simultaneously.

use gatediag_netlist::{Circuit, GateId, GateKind};

/// Packs up to 64 input vectors into per-input pattern words.
///
/// `vectors[p][i]` is the value of input `i` in pattern `p`; the result has
/// one word per primary input with bit `p` carrying pattern `p`.
///
/// # Panics
///
/// Panics if more than 64 vectors are supplied or a vector has the wrong
/// width.
pub fn pack_vectors(circuit: &Circuit, vectors: &[Vec<bool>]) -> Vec<u64> {
    assert!(vectors.len() <= 64, "at most 64 patterns per word");
    let width = circuit.inputs().len();
    let mut words = vec![0u64; width];
    for (p, vector) in vectors.iter().enumerate() {
        assert_eq!(vector.len(), width, "input vector width mismatch");
        for (i, &bit) in vector.iter().enumerate() {
            if bit {
                words[i] |= 1 << p;
            }
        }
    }
    words
}

/// Simulates 64 patterns at once; returns one word per gate.
///
/// `input_words[i]` carries the 64 patterns of primary input `i`.
///
/// # Panics
///
/// Panics if `input_words.len() != circuit.inputs().len()`.
///
/// # Examples
///
/// ```
/// let c = gatediag_netlist::c17();
/// let vectors = vec![vec![false; 5], vec![true; 5]];
/// let words = gatediag_sim::simulate_packed(&c, &gatediag_sim::pack_vectors(&c, &vectors));
/// // Lane 0 must equal a scalar simulation of the first vector.
/// let scalar = gatediag_sim::simulate(&c, &vectors[0]);
/// for (w, &s) in words.iter().zip(&scalar) {
///     assert_eq!(w & 1 == 1, s);
/// }
/// ```
pub fn simulate_packed(circuit: &Circuit, input_words: &[u64]) -> Vec<u64> {
    simulate_packed_forced(circuit, input_words, &[])
}

/// Packed simulation with per-gate forced pattern words.
///
/// Each `(gate, word)` pair overrides the gate's value lanes with `word`
/// (all 64 lanes forced). Used for bulk effect analysis where a correction
/// candidate takes different trial values across lanes.
///
/// # Panics
///
/// Panics if `input_words.len() != circuit.inputs().len()`.
pub fn simulate_packed_forced(
    circuit: &Circuit,
    input_words: &[u64],
    forced: &[(GateId, u64)],
) -> Vec<u64> {
    assert_eq!(
        input_words.len(),
        circuit.inputs().len(),
        "input word count mismatch"
    );
    let mut values = vec![0u64; circuit.len()];
    for (&id, &w) in circuit.inputs().iter().zip(input_words) {
        values[id.index()] = w;
    }
    let mut force: Vec<Option<u64>> = vec![None; circuit.len()];
    for &(id, w) in forced {
        force[id.index()] = Some(w);
    }
    for &id in circuit.topo_order() {
        if let Some(w) = force[id.index()] {
            values[id.index()] = w;
            continue;
        }
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        values[id.index()] = gate
            .kind()
            .eval_word(gate.fanins().iter().map(|f| values[f.index()]));
    }
    values
}

/// Extracts pattern `lane` from packed gate words as a `Vec<bool>`.
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    assert!(lane < 64, "lane must be below 64");
    words.iter().map(|w| w >> lane & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::simulate;
    use gatediag_netlist::{c17, parity_tree, RandomCircuitSpec, VectorGen};

    #[test]
    fn packed_matches_scalar_on_c17() {
        let c = c17();
        let mut gen = VectorGen::new(&c, 99);
        let vectors: Vec<Vec<bool>> = (0..64).map(|_| gen.next_vector()).collect();
        let words = simulate_packed(&c, &pack_vectors(&c, &vectors));
        for (lane, vector) in vectors.iter().enumerate() {
            let scalar = simulate(&c, vector);
            assert_eq!(unpack_lane(&words, lane), scalar, "lane {lane}");
        }
    }

    #[test]
    fn packed_matches_scalar_on_random_circuits() {
        for seed in 0..4 {
            let c = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
            let mut gen = VectorGen::new(&c, seed);
            let vectors: Vec<Vec<bool>> = (0..32).map(|_| gen.next_vector()).collect();
            let words = simulate_packed(&c, &pack_vectors(&c, &vectors));
            for (lane, vector) in vectors.iter().enumerate() {
                assert_eq!(unpack_lane(&words, lane), simulate(&c, vector));
            }
        }
    }

    #[test]
    fn packed_forced_matches_scalar_forced() {
        let c = parity_tree(8);
        let g = c.find("p0").unwrap();
        let mut gen = VectorGen::new(&c, 1);
        let vectors: Vec<Vec<bool>> = (0..8).map(|_| gen.next_vector()).collect();
        // Force alternate lanes to 1.
        let force_word = 0b10101010u64;
        let words =
            simulate_packed_forced(&c, &pack_vectors(&c, &vectors), &[(g, force_word)]);
        for (lane, vector) in vectors.iter().enumerate() {
            let forced_val = force_word >> lane & 1 == 1;
            let scalar = crate::scalar::simulate_forced(&c, vector, &[(g, forced_val)]);
            assert_eq!(unpack_lane(&words, lane), scalar, "lane {lane}");
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = c17();
        let vectors = vec![
            vec![true, false, true, false, true],
            vec![false, true, false, true, false],
        ];
        let words = pack_vectors(&c, &vectors);
        for (lane, v) in vectors.iter().enumerate() {
            let lane_bits: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
            assert_eq!(&lane_bits, v);
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_too_many_patterns() {
        let c = c17();
        let vectors: Vec<Vec<bool>> = (0..65).map(|_| vec![false; 5]).collect();
        let _ = pack_vectors(&c, &vectors);
    }
}
