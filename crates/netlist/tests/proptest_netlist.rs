//! Property tests for the netlist substrate: structural invariants of
//! generated circuits, `.bench` round-trips, analysis consistency.

use gatediag_netlist::{
    fanin_cone, fanout_cone, ffr_roots, inject_errors, output_idoms, parse_bench,
    undirected_distances, unroll, write_bench, GateId, GateKind, RandomCircuitSpec,
};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = RandomCircuitSpec> {
    (2usize..10, 1usize..5, 5usize..120, 0usize..4, 0u64..5_000).prop_map(
        |(inputs, outputs, gates, latches, seed)| {
            RandomCircuitSpec::new(inputs, outputs, gates)
                .latches(latches)
                .seed(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topological order and levels are mutually consistent on any
    /// generated circuit.
    #[test]
    fn structural_invariants(spec in spec_strategy()) {
        let c = spec.generate();
        let mut position = vec![usize::MAX; c.len()];
        for (i, &id) in c.topo_order().iter().enumerate() {
            position[id.index()] = i;
        }
        prop_assert_eq!(c.topo_order().len(), c.len());
        for (id, gate) in c.iter() {
            for &f in gate.fanins() {
                prop_assert!(position[f.index()] < position[id.index()]);
                prop_assert!(c.level(f) < c.level(id));
                prop_assert!(c.fanouts(f).contains(&id));
            }
            prop_assert!(gate.kind().arity_ok(gate.arity()));
        }
    }

    /// `.bench` write→parse round-trip preserves structure gate-by-gate
    /// (via names).
    #[test]
    fn bench_round_trip(spec in spec_strategy()) {
        let c = spec.generate();
        let text = write_bench(&c);
        let back = parse_bench(&text).expect("own output parses");
        prop_assert_eq!(back.len(), c.len());
        prop_assert_eq!(back.num_functional_gates(), c.num_functional_gates());
        prop_assert_eq!(back.inputs().len(), c.inputs().len());
        prop_assert_eq!(back.outputs().len(), c.outputs().len());
        prop_assert_eq!(back.latches().len(), c.latches().len());
        // Full structural equality modulo gate renumbering: the name map
        // is a graph isomorphism preserving kinds, every fan-in edge, and
        // the output / latch designations.
        let mapped = |id| {
            let name = c.gate_name(id).expect("generated gates are named");
            back.find(name).expect("name preserved")
        };
        for (id, gate) in c.iter() {
            let bid = mapped(id);
            // DFF q nodes stay inputs; everything else keeps its kind.
            prop_assert_eq!(back.gate(bid).kind(), gate.kind());
            let fanins: Vec<_> = gate.fanins().iter().map(|&f| mapped(f)).collect();
            prop_assert_eq!(back.gate(bid).fanins(), &fanins[..]);
        }
        // Latch pseudo-outputs are re-emitted after explicit outputs, so
        // compare the output sets order-insensitively.
        let mut outputs: Vec<_> = c.outputs().iter().map(|&o| mapped(o)).collect();
        outputs.sort();
        let mut back_outputs = back.outputs().to_vec();
        back_outputs.sort();
        prop_assert_eq!(back_outputs, outputs);
        for (l, bl) in c.latches().iter().zip(back.latches()) {
            prop_assert_eq!(bl.q, mapped(l.q));
            prop_assert_eq!(bl.d, mapped(l.d));
        }
    }

    /// Writing is a fixpoint after one round-trip: parse(write(c)) prints
    /// back to exactly the same text.
    #[test]
    fn bench_write_is_a_fixpoint(spec in spec_strategy()) {
        let c = spec.generate();
        let text = write_bench(&c);
        let back = parse_bench(&text).expect("own output parses");
        prop_assert_eq!(write_bench(&back), text);
    }

    /// Cones: the fan-in cone of the outputs and the fan-out cone of the
    /// inputs are duals, and distances respect cone membership.
    #[test]
    fn cone_duality(spec in spec_strategy()) {
        let c = spec.generate();
        for (id, _) in c.iter().take(20) {
            let fi = fanin_cone(&c, &[id]);
            for g in fi.iter() {
                // id must be in g's fanout cone.
                let fo = fanout_cone(&c, &[g]);
                prop_assert!(fo.contains(id));
            }
        }
    }

    /// FFR roots dominate: every path from a gate to an output passes its
    /// FFR root (checked by following the unique fan-out chain).
    #[test]
    fn ffr_roots_on_chains(spec in spec_strategy()) {
        let c = spec.generate();
        let roots = ffr_roots(&c);
        for (id, _) in c.iter() {
            let mut cur = id;
            // Walk the single-fanout chain; it must end at the FFR root.
            while c.fanouts(cur).len() == 1 && !c.is_output(cur) {
                cur = c.fanouts(cur)[0];
            }
            prop_assert_eq!(roots[id.index()], cur);
        }
    }

    /// Immediate dominators, where defined, are reachable from the gate
    /// and at strictly greater level.
    #[test]
    fn idom_sanity(spec in spec_strategy()) {
        let c = spec.generate();
        let idoms = output_idoms(&c);
        for (id, _) in c.iter() {
            if let Some(d) = idoms[id.index()] {
                prop_assert!(c.level(d) > c.level(id), "{:?} idom {:?}", id, d);
                let fo = fanout_cone(&c, &[id]);
                prop_assert!(fo.contains(d), "idom must be downstream");
            }
        }
    }

    /// Distance 0 exactly at sources; triangle-ish consistency along edges.
    #[test]
    fn distance_properties(spec in spec_strategy()) {
        let c = spec.generate();
        let src = GateId::new(0);
        let dist = undirected_distances(&c, &[src]);
        prop_assert_eq!(dist[0], 0);
        for (id, gate) in c.iter() {
            for &f in gate.fanins() {
                let (a, b) = (dist[id.index()], dist[f.index()]);
                if a != u32::MAX && b != u32::MAX {
                    prop_assert!(a.abs_diff(b) <= 1, "edge stretch > 1");
                }
            }
        }
    }

    /// Error injection changes exactly the chosen gates and is reversible
    /// knowledge (original kind recorded).
    #[test]
    fn injection_is_precise(spec in spec_strategy(), p in 1usize..3, seed in 0u64..500) {
        let c = spec.generate();
        if c.num_functional_gates() < p {
            return Ok(());
        }
        let (faulty, sites) = inject_errors(&c, p, seed);
        prop_assert_eq!(sites.len(), p);
        let changed: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
        for (id, gate) in c.iter() {
            if changed.contains(&id) {
                let site = sites.iter().find(|s| s.gate == id).expect("in changed");
                prop_assert_eq!(gate.kind(), site.original);
                prop_assert_eq!(faulty.gate(id).kind(), site.replacement);
                prop_assert!(site.replacement != site.original);
            } else {
                prop_assert_eq!(faulty.gate(id).kind(), gate.kind());
            }
        }
    }

    /// Sequential `.bench` I/O: a circuit with a guaranteed latch
    /// population writes exactly one `DFF(` line per latch, the latch `q`
    /// nodes parse back as input gates wired to the right `d` drivers, and
    /// the written text is already a fixpoint.
    #[test]
    fn dff_bench_round_trip(
        inputs in 2usize..8,
        outputs in 1usize..4,
        gates in 5usize..60,
        latches in 1usize..6,
        seed in 0u64..5_000,
    ) {
        let c = RandomCircuitSpec::new(inputs, outputs, gates)
            .latches(latches)
            .seed(seed)
            .generate();
        prop_assert_eq!(c.latches().len(), latches);
        let text = write_bench(&c);
        prop_assert_eq!(text.matches("DFF(").count(), latches);
        let back = parse_bench(&text).expect("own output parses");
        prop_assert_eq!(back.latches().len(), latches);
        for (l, bl) in c.latches().iter().zip(back.latches()) {
            // The q node is a pseudo-input whose name pairs it with the
            // original latch, and the d driver keeps its name too.
            prop_assert_eq!(back.gate(bl.q).kind(), GateKind::Input);
            prop_assert!(back.inputs().contains(&bl.q), "q must be an input");
            prop_assert_eq!(back.gate_name(bl.q), c.gate_name(l.q));
            prop_assert_eq!(back.gate_name(bl.d), c.gate_name(l.d));
        }
        prop_assert_eq!(write_bench(&back), text);
    }

    /// Unrolling a circuit with latches multiplies functional gates by the
    /// frame count (plus latch-link buffers) and stays acyclic/valid.
    #[test]
    fn unroll_scales(spec in spec_strategy(), frames in 1usize..4) {
        let c = spec.generate();
        let u = unroll(&c, frames);
        let latch_links = c.latches().len() * frames.saturating_sub(1);
        prop_assert_eq!(
            u.circuit.num_functional_gates(),
            c.num_functional_gates() * frames + latch_links
        );
        // All frame instances map to gates of the right kind.
        for frame in 0..frames {
            for (id, gate) in c.iter() {
                let inst = u.instance(frame, id);
                if gate.kind() != GateKind::Input {
                    prop_assert_eq!(u.circuit.gate(inst).kind(), gate.kind());
                }
            }
        }
    }
}
