//! Gate-level netlist substrate for the `gatediag` diagnosis library.
//!
//! This crate provides everything the diagnosis engines need to talk about
//! circuits:
//!
//! * [`Circuit`] / [`CircuitBuilder`] — an immutable combinational DAG of
//!   typed gates with precomputed topological order, fan-out lists and
//!   levels;
//!
//! # CSR storage layout
//!
//! A [`Circuit`] stores no per-gate objects. All connectivity lives in
//! flat compressed-sparse-row (CSR) arrays:
//!
//! ```text
//! kinds:        [GateKind; n]          function of gate i
//! fanin_heads:  [u32; n + 1]           offsets into fanin_edges
//! fanin_edges:  [GateId; sum arity]    all fan-in lists, concatenated
//! fanout_heads: [u32; n + 1]           transposed CSR (fan-outs)
//! fanout_edges: [GateId; sum arity]
//! topo:         [GateId; n]            topological order
//! levels:       [u32; n]               logic levels
//! ```
//!
//! Gate `i`'s fan-ins are `fanin_edges[fanin_heads[i]..fanin_heads[i+1]]`.
//! A topological sweep therefore touches three contiguous arrays in a
//! predictable pattern instead of chasing one heap allocation per gate —
//! the property the bit-parallel simulator's throughput rests on. Hot
//! loops read the arrays directly via [`Circuit::kinds`] /
//! [`Circuit::fanin_csr`]; everything else uses the [`Gate`] *view*
//! ([`Circuit::gate`]), a `Copy` facade that keeps the familiar
//! `kind()` / `fanins()` / `arity()` API at zero cost.
//! * [`parse_bench`] / [`write_bench`] — ISCAS89 `.bench` I/O. Flip-flops
//!   stay first-class (every `q = DFF(d)` is a recorded [`Latch`] pair);
//!   the stored [`Circuit`] is the combinationalised lowering of them, and
//!   [`StateView`] is that lowering made explicit (real vs pseudo I/O,
//!   state slots) for the sequential simulator, unroller and engines;
//! * structural analyses ([`fanin_cone`], [`fanout_cone`], [`ffr_roots`],
//!   [`output_idoms`], [`undirected_distances`]) used by the quality metrics
//!   and the advanced SAT-based diagnosis;
//! * deterministic circuit generators ([`RandomCircuitSpec`], the
//!   ISCAS89-profile stand-ins [`s1423_like`], [`s6669_like`],
//!   [`s38417_like`], and canned textbook circuits such as [`c17`] and
//!   [`ripple_carry_adder`]);
//! * gate-change [error injection](inject_errors) matching the paper's
//!   experimental error model, generalised by [`inject_faults`] into the
//!   wider [`FaultModel`] family (stuck-at, wrong input connection, extra
//!   inverter) used by experiment campaigns;
//! * bulk ISCAS89 ingestion with [`parse_bench_dir`] for directories of
//!   real `.bench` files.
//!
//! # Examples
//!
//! ```
//! use gatediag_netlist::{parse_bench, inject_errors};
//!
//! # fn main() -> Result<(), gatediag_netlist::NetlistError> {
//! let golden = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let (faulty, sites) = inject_errors(&golden, 1, 42);
//! assert_eq!(sites.len(), 1);
//! assert_ne!(faulty.gate(sites[0].gate).kind(), sites[0].original);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod bench_format;
mod circuit;
mod export;
mod gate;
mod generate;
mod inject;
mod state;
mod unroll;

pub use analysis::{
    fanin_cone, fanout_cone, ffr_roots, output_idoms, undirected_distances, GateSet,
};
pub use bench_format::{
    parse_bench, parse_bench_dir, parse_bench_dir_strict, parse_bench_named, write_bench,
    BenchDirLoad, BenchLoadWarning,
};
pub use circuit::{Circuit, CircuitBuilder, Latch, NetlistError};
pub use export::{extract_cone, to_dot};
pub use gate::{Gate, GateId, GateKind};
pub use generate::{
    c17, equality_comparator, mux_tree, parity_tree, ripple_carry_adder, s1423_like, s38417_like,
    s6669_like, RandomCircuitSpec, VectorGen,
};
pub use inject::{
    inject_errors, inject_faults, inject_stuck_at, try_inject_faults, ErrorSite, Fault, FaultKind,
    FaultModel,
};
pub use state::{InputSlot, StateView};
pub use unroll::{unroll, Unrolling};
