//! The combinational circuit container and its builder.

use crate::gate::{Gate, GateId, GateKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A flip-flop that was combinationalised during parsing.
///
/// The flip-flop's output `q` became a pseudo-primary input and its data
/// input `d` a pseudo-primary output, the standard transformation for
/// per-time-frame diagnosis of ISCAS89 netlists.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Latch {
    /// Pseudo-primary input standing in for the flip-flop output.
    pub q: GateId,
    /// Gate feeding the flip-flop (pseudo-primary output).
    pub d: GateId,
}

/// Errors produced while constructing or parsing a circuit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetlistError {
    /// A gate refers to a fan-in id that does not exist.
    DanglingFanin {
        /// The referring gate.
        gate: GateId,
        /// The missing fan-in.
        fanin: GateId,
    },
    /// A gate has an illegal number of fan-ins for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// The number of fan-ins it was given.
        arity: usize,
    },
    /// The gate graph contains a combinational cycle.
    Cyclic {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// A named signal was defined twice.
    DuplicateName(String),
    /// A signal was referenced but never defined.
    UndefinedSignal(String),
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A `.bench` file or directory could not be read, or a file in a
    /// directory scan failed to parse (the inner error's message is
    /// annotated with the offending path).
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O or parse error message.
        message: String,
    },
    /// The circuit has no primary outputs.
    NoOutputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} refers to undefined fan-in {fanin}")
            }
            NetlistError::BadArity { gate, kind, arity } => {
                write!(f, "gate {gate} of kind {kind} has illegal arity {arity}")
            }
            NetlistError::Cyclic { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::DuplicateName(name) => {
                write!(f, "signal `{name}` defined more than once")
            }
            NetlistError::UndefinedSignal(name) => {
                write!(f, "signal `{name}` referenced but never defined")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

/// An immutable combinational gate-level circuit in CSR layout.
///
/// The circuit is a DAG of gates with designated primary inputs and
/// outputs. All per-gate data lives in flat, contiguous arrays:
///
/// * `kinds[i]` — the [`GateKind`] of gate `i`;
/// * `fanin_heads` / `fanin_edges` — a compressed sparse row (CSR)
///   encoding of the fan-in lists: gate `i`'s fan-ins are
///   `fanin_edges[fanin_heads[i] .. fanin_heads[i + 1]]`;
/// * `fanout_heads` / `fanout_edges` — the transposed CSR (fan-outs);
/// * `topo`, `levels` — topological order and logic levels.
///
/// A topological sweep over this layout is a linear scan of three flat
/// arrays with no per-gate pointer chasing, which is what makes the
/// bit-parallel simulator's inner loop memory-bound rather than
/// latency-bound. The per-gate object API ([`Circuit::gate`], returning a
/// [`Gate`] view) is retained as a zero-cost facade over these arrays.
///
/// Topological order, fan-out lists and levels are computed once at
/// construction and shared by all analyses and simulators.
///
/// Sequential `.bench` netlists are combinationalised at parse time: each
/// DFF contributes a pseudo-primary input (its output `q`) and a
/// pseudo-primary output (its data `d`), recorded in [`Circuit::latches`].
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), gatediag_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.gate(GateKind::Nand, vec![a, c], "g");
/// b.output(g);
/// let circuit = b.finish()?;
/// assert_eq!(circuit.len(), 3);
/// assert_eq!(circuit.outputs(), &[g]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Circuit {
    kinds: Vec<GateKind>,
    fanin_heads: Vec<u32>,
    fanin_edges: Vec<GateId>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    latches: Vec<Latch>,
    names: Vec<Option<String>>,
    name_index: HashMap<String, GateId>,
    topo: Vec<GateId>,
    fanout_heads: Vec<u32>,
    fanout_edges: Vec<GateId>,
    levels: Vec<u32>,
    name: String,
}

impl Circuit {
    /// Total number of gates (including primary inputs and constants).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of non-source gates (the "gate count" reported by benchmarks).
    pub fn num_functional_gates(&self) -> usize {
        self.kinds.iter().filter(|k| !k.is_source()).count()
    }

    /// The gate with the given id, as a cheap [`Gate`] view over the CSR
    /// arrays.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gate(&self, id: GateId) -> Gate<'_> {
        Gate::new(self.kinds[id.index()], self.fanins(id))
    }

    /// The Boolean function of gate `id` (direct kind-array access).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn kind(&self, id: GateId) -> GateKind {
        self.kinds[id.index()]
    }

    /// Fan-in gates of `id`, in declaration order (direct CSR access).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn fanins(&self, id: GateId) -> &[GateId] {
        let lo = self.fanin_heads[id.index()] as usize;
        let hi = self.fanin_heads[id.index() + 1] as usize;
        &self.fanin_edges[lo..hi]
    }

    /// The flat kind array, indexed by gate id.
    #[inline]
    pub fn kinds(&self) -> &[GateKind] {
        &self.kinds
    }

    /// The raw fan-in CSR: `(heads, edges)` with gate `i`'s fan-ins at
    /// `edges[heads[i] as usize .. heads[i + 1] as usize]`.
    ///
    /// Hot loops (the packed simulator's topological sweep) index these
    /// arrays directly instead of materialising [`Gate`] views.
    #[inline]
    pub fn fanin_csr(&self) -> (&[u32], &[GateId]) {
        (&self.fanin_heads, &self.fanin_edges)
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, Gate<'_>)> {
        (0..self.len()).map(|i| {
            let id = GateId::new(i);
            (id, self.gate(id))
        })
    }

    /// Primary inputs (including pseudo-primary inputs from flip-flops).
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs (including pseudo-primary outputs from flip-flops).
    #[inline]
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Flip-flops recorded during combinationalisation.
    #[inline]
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Gates in topological order (fan-ins before fan-outs).
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Fan-out gates of `id` (gates that use `id` as a fan-in).
    #[inline]
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        let lo = self.fanout_heads[id.index()] as usize;
        let hi = self.fanout_heads[id.index() + 1] as usize;
        &self.fanout_edges[lo..hi]
    }

    /// Logic level of `id`: 0 for sources, `1 + max(level of fan-ins)`
    /// otherwise.
    #[inline]
    pub fn level(&self, id: GateId) -> u32 {
        self.levels[id.index()]
    }

    /// Maximum level over all gates (circuit depth).
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// The circuit's name (benchmark name, or empty).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of gate `id`, if it has one.
    pub fn gate_name(&self, id: GateId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// Looks up a gate by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.name_index.get(name).copied()
    }

    /// `true` if `id` is a primary output.
    pub fn is_output(&self, id: GateId) -> bool {
        self.outputs.contains(&id)
    }

    /// Returns a copy of this circuit with the function of `id` replaced by
    /// `kind`, keeping the fan-ins (and hence all connectivity, topological
    /// order, fan-outs and levels) unchanged.
    ///
    /// This is the "gate change" error model of the paper's experiments; it
    /// is cheap because derived structures are reused.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is illegal for the gate's arity or if the gate is a
    /// source node.
    pub fn with_gate_kind(&self, id: GateId, kind: GateKind) -> Circuit {
        let gate = self.gate(id);
        assert!(
            gate.kind() != GateKind::Input,
            "cannot replace the function of primary input {id}"
        );
        assert!(
            kind.arity_ok(gate.arity()),
            "kind {kind} illegal for arity {}",
            gate.arity()
        );
        let mut clone = self.clone();
        clone.kinds[id.index()] = kind;
        clone
    }

    /// Renames the circuit (fluent helper for generators).
    pub fn with_name(mut self, name: impl Into<String>) -> Circuit {
        self.name = name.into();
        self
    }
}

/// Incremental constructor for [`Circuit`].
///
/// Gates are created in any order as long as fan-ins are created first;
/// parsers create gates with empty fan-ins and wire them afterwards with
/// [`CircuitBuilder::set_fanins`]. [`CircuitBuilder::finish`]
/// validates arities and acyclicity, flattens the per-gate fan-in lists
/// into the circuit's CSR arrays, and computes the derived structures.
#[derive(Clone, Debug, Default)]
pub struct CircuitBuilder {
    kinds: Vec<GateKind>,
    fanins: Vec<Vec<GateId>>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    latches: Vec<Latch>,
    names: Vec<Option<String>>,
    name_index: HashMap<String, GateId>,
    name: String,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the circuit name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    fn push(&mut self, kind: GateKind, fanins: Vec<GateId>, name: Option<String>) -> GateId {
        let id = GateId::new(self.kinds.len());
        self.kinds.push(kind);
        self.fanins.push(fanins);
        if let Some(ref n) = name {
            self.name_index.insert(n.clone(), id);
        }
        self.names.push(name);
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push(GateKind::Input, Vec::new(), Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds an anonymous primary input.
    pub fn anon_input(&mut self) -> GateId {
        let id = self.push(GateKind::Input, Vec::new(), None);
        self.inputs.push(id);
        id
    }

    /// Adds a named gate.
    pub fn gate(&mut self, kind: GateKind, fanins: Vec<GateId>, name: impl Into<String>) -> GateId {
        self.push(kind, fanins, Some(name.into()))
    }

    /// Adds an anonymous gate.
    pub fn anon_gate(&mut self, kind: GateKind, fanins: Vec<GateId>) -> GateId {
        self.push(kind, fanins, None)
    }

    /// Replaces the fan-in list of an existing gate.
    ///
    /// Parser-style construction creates gates first (so names resolve) and
    /// wires them afterwards. Validation happens in [`CircuitBuilder::finish`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn set_fanins(&mut self, id: GateId, fanins: Vec<GateId>) -> &mut Self {
        self.fanins[id.index()] = fanins;
        self
    }

    /// Marks an existing gate as a primary output.
    pub fn output(&mut self, id: GateId) -> &mut Self {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        self
    }

    /// Records a combinationalised flip-flop (`q` must be an input gate).
    pub fn latch(&mut self, q: GateId, d: GateId) -> &mut Self {
        self.latches.push(Latch { q, d });
        self
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if no gates were added yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Looks up a previously added named gate.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.name_index.get(name).copied()
    }

    /// The kind of a previously added gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn kind_of(&self, id: GateId) -> GateKind {
        self.kinds[id.index()]
    }

    /// Validates the netlist and produces the immutable [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if a fan-in id is out of range, a gate has an
    /// illegal arity, the graph is cyclic, or there are no outputs.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let n = self.kinds.len();
        // Arity and dangling-fanin checks.
        for i in 0..n {
            let id = GateId::new(i);
            for &f in &self.fanins[i] {
                if f.index() >= n {
                    return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
                }
            }
            if !self.kinds[i].arity_ok(self.fanins[i].len()) {
                return Err(NetlistError::BadArity {
                    gate: id,
                    kind: self.kinds[i],
                    arity: self.fanins[i].len(),
                });
            }
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }

        // Flatten the fan-in lists into CSR form.
        let mut fanin_heads = Vec::with_capacity(n + 1);
        fanin_heads.push(0u32);
        let total: usize = self.fanins.iter().map(Vec::len).sum();
        let mut fanin_edges = Vec::with_capacity(total);
        for fanins in &self.fanins {
            fanin_edges.extend_from_slice(fanins);
            fanin_heads.push(fanin_edges.len() as u32);
        }

        // Build the transposed (fan-out) CSR.
        let mut fanout_count = vec![0u32; n + 1];
        for &f in &fanin_edges {
            fanout_count[f.index() + 1] += 1;
        }
        let mut fanout_heads = fanout_count.clone();
        for i in 1..=n {
            fanout_heads[i] += fanout_heads[i - 1];
        }
        let mut cursor = fanout_heads.clone();
        let mut fanout_edges = vec![GateId::new(0); fanout_heads[n] as usize];
        for (i, fanins) in self.fanins.iter().enumerate() {
            for &f in fanins {
                fanout_edges[cursor[f.index()] as usize] = GateId::new(i);
                cursor[f.index()] += 1;
            }
        }

        // Kahn topological sort over the CSR.
        let indegree: Vec<u32> = self.fanins.iter().map(|f| f.len() as u32).collect();
        let mut stack: Vec<GateId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(GateId::new)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut remaining = indegree;
        while let Some(id) = stack.pop() {
            topo.push(id);
            let lo = fanout_heads[id.index()] as usize;
            let hi = fanout_heads[id.index() + 1] as usize;
            for &succ in &fanout_edges[lo..hi] {
                remaining[succ.index()] -= 1;
                if remaining[succ.index()] == 0 {
                    stack.push(succ);
                }
            }
        }
        if topo.len() != n {
            let cyclic = (0..n)
                .map(GateId::new)
                .find(|id| remaining[id.index()] > 0)
                .expect("cycle must involve a gate with remaining indegree");
            return Err(NetlistError::Cyclic { gate: cyclic });
        }

        // Levels.
        let mut levels = vec![0u32; n];
        for &id in &topo {
            let lo = fanin_heads[id.index()] as usize;
            let hi = fanin_heads[id.index() + 1] as usize;
            let lvl = fanin_edges[lo..hi]
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[id.index()] = lvl;
        }

        // Every successfully built circuit — parsed, generated,
        // injected, unrolled — passes through here, so this one counter
        // is the "did anything rebuild a netlist?" probe the serve
        // layer's warm-hit proof reads.
        gatediag_obs::count("netlist.builds", 1);

        Ok(Circuit {
            kinds: self.kinds,
            fanin_heads,
            fanin_edges,
            inputs: self.inputs,
            outputs: self.outputs,
            latches: self.latches,
            names: self.names,
            name_index: self.name_index,
            topo,
            fanout_heads,
            fanout_edges,
            levels,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate(GateKind::And, vec![a, c], "g1");
        let g2 = b.gate(GateKind::Not, vec![g1], "g2");
        b.output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let c = tiny();
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_functional_gates(), 2);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.find("g1"), Some(GateId::new(2)));
        assert_eq!(c.gate_name(GateId::new(2)), Some("g1"));
        assert_eq!(c.gate(GateId::new(2)).kind(), GateKind::And);
    }

    #[test]
    fn topo_order_respects_edges() {
        let c = tiny();
        let pos: Vec<usize> = {
            let mut pos = vec![0; c.len()];
            for (i, &id) in c.topo_order().iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for (id, gate) in c.iter() {
            for &f in gate.fanins() {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let c = tiny();
        for (id, gate) in c.iter() {
            for &f in gate.fanins() {
                assert!(c.fanouts(f).contains(&id));
            }
        }
        assert_eq!(c.fanouts(GateId::new(2)), &[GateId::new(3)]);
        assert!(c.fanouts(GateId::new(3)).is_empty());
    }

    #[test]
    fn levels() {
        let c = tiny();
        assert_eq!(c.level(GateId::new(0)), 0);
        assert_eq!(c.level(GateId::new(2)), 1);
        assert_eq!(c.level(GateId::new(3)), 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::And, vec![a], "g");
        b.output(g);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { arity: 1, .. }));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        // g1 and g2 feed each other.
        let g1 = b.gate(GateKind::And, vec![a, GateId::new(2)], "g1");
        let g2 = b.gate(GateKind::Or, vec![a, g1], "g2");
        b.output(g2);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::Cyclic { .. }));
    }

    #[test]
    fn rejects_dangling() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g1 = b.gate(GateKind::Buf, vec![GateId::new(9)], "g1");
        let _ = a;
        b.output(g1);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::DanglingFanin { .. }));
    }

    #[test]
    fn rejects_no_outputs() {
        let mut b = CircuitBuilder::new();
        b.input("a");
        assert!(matches!(b.finish(), Err(NetlistError::NoOutputs)));
    }

    #[test]
    fn with_gate_kind_replaces_function_only() {
        let c = tiny();
        let id = c.find("g1").unwrap();
        let mutated = c.with_gate_kind(id, GateKind::Or);
        assert_eq!(mutated.gate(id).kind(), GateKind::Or);
        assert_eq!(mutated.gate(id).fanins(), c.gate(id).fanins());
        assert_eq!(mutated.topo_order(), c.topo_order());
        // original untouched
        assert_eq!(c.gate(id).kind(), GateKind::And);
    }

    #[test]
    #[should_panic(expected = "illegal for arity")]
    fn with_gate_kind_rejects_bad_arity() {
        let c = tiny();
        let id = c.find("g1").unwrap();
        let _ = c.with_gate_kind(id, GateKind::Not);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = NetlistError::DuplicateName("x".into());
        assert!(format!("{e}").contains("x"));
        let e = NetlistError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(format!("{e}").contains("line 3"));
    }
}
