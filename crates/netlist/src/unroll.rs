//! Time-frame expansion of sequential circuits.
//!
//! The paper's SAT-based diagnosis was extended to sequential errors in
//! Ali et al. (its reference [4]) by unrolling the circuit over `n` time
//! frames: flip-flops become frame-to-frame connections, the first frame's
//! state is a free (or constrained) pseudo-input, and every frame exposes
//! the primary outputs. [`unroll`] reproduces that construction on the
//! combinationalised circuits this crate produces.

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};
use crate::state::StateView;

/// Mapping from the original circuit into an unrolled one.
#[derive(Clone, Debug)]
pub struct Unrolling {
    /// The unrolled (purely combinational) circuit.
    pub circuit: Circuit,
    /// `map[frame][gate.index()]` = the unrolled gate implementing `gate`
    /// in that time frame.
    pub map: Vec<Vec<GateId>>,
    /// The initial-state pseudo-inputs, one per latch (frame 0's `q`).
    pub initial_state: Vec<GateId>,
}

impl Unrolling {
    /// The unrolled instance of `gate` in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` or `gate` are out of range.
    pub fn instance(&self, frame: usize, gate: GateId) -> GateId {
        self.map[frame][gate.index()]
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.map.len()
    }
}

/// Unrolls `circuit` over `frames` time frames.
///
/// Per frame, every primary input becomes a fresh input named
/// `<name>@<frame>`; every latch's `q` input is driven by the previous
/// frame's `d` gate (frame 0's `q` becomes an `init_*` pseudo-input);
/// every primary output is exposed as an output of each frame. Gate-change
/// errors replicate across frames exactly like the shared select lines of
/// sequential SAT-based diagnosis require: use
/// [`Unrolling::instance`] to gang the per-frame instances of a gate
/// together.
///
/// # Panics
///
/// Panics if `frames == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gatediag_netlist::NetlistError> {
/// let c = gatediag_netlist::parse_bench(
///     "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = AND(a, q)\ny = NOT(q)\n",
/// )?;
/// let unrolled = gatediag_netlist::unroll(&c, 3);
/// assert_eq!(unrolled.frames(), 3);
/// // 3 frames x 1 real input + 1 initial state input.
/// assert_eq!(unrolled.circuit.inputs().len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn unroll(circuit: &Circuit, frames: usize) -> Unrolling {
    assert!(frames > 0, "need at least one time frame");
    // One O(n) lowering view instead of repeated latch-list scans: the
    // frame loop below is O(frames * n) overall.
    let view = StateView::new(circuit);
    let mut b = CircuitBuilder::new();
    b.name(format!("{}@x{}", circuit.name(), frames));

    let mut map: Vec<Vec<GateId>> = Vec::with_capacity(frames);
    let mut initial_state = Vec::with_capacity(view.num_latches());

    for frame in 0..frames {
        let mut frame_map = vec![GateId::new(usize::MAX >> 1); circuit.len()];
        for &id in circuit.topo_order() {
            let gate = circuit.gate(id);
            let fallback = format!("n{}", id.index());
            let base_name = circuit.gate_name(id).unwrap_or(fallback.as_str());
            let new_id = if gate.kind() == GateKind::Input {
                if let Some(slot) = view.latch_slot_of(id) {
                    if frame == 0 {
                        // Free initial state.
                        let init = b.input(format!("init_{base_name}"));
                        initial_state.push(init);
                        init
                    } else {
                        // Driven by the previous frame's latch data.
                        let prev_d = view.latch_d()[slot];
                        let driver = map[frame - 1][prev_d.index()];
                        b.gate(GateKind::Buf, vec![driver], format!("{base_name}@{frame}"))
                    }
                } else {
                    b.input(format!("{base_name}@{frame}"))
                }
            } else {
                let fanins = gate.fanins().iter().map(|f| frame_map[f.index()]).collect();
                b.gate(gate.kind(), fanins, format!("{base_name}@{frame}"))
            };
            frame_map[id.index()] = new_id;
        }
        // Expose the real primary outputs of this frame (not the latch
        // data pseudo-outputs, which became internal frame links).
        for &o in view.real_outputs() {
            b.output(frame_map[o.index()]);
        }
        // The final frame's latch data is observable state.
        if frame == frames - 1 {
            for &d in view.latch_d() {
                b.output(frame_map[d.index()]);
            }
        }
        map.push(frame_map);
    }

    Unrolling {
        circuit: b.finish().expect("unrolling preserves acyclicity"),
        map,
        initial_state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    fn counter() -> Circuit {
        // 1-bit toggle: q' = q XOR en, out = q.
        parse_bench("INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n").unwrap()
    }

    #[test]
    fn unroll_shapes() {
        let c = counter();
        for frames in 1..=4 {
            let u = unroll(&c, frames);
            assert_eq!(u.frames(), frames);
            // inputs: en per frame + one initial state.
            assert_eq!(u.circuit.inputs().len(), frames + 1);
            assert_eq!(u.initial_state.len(), 1);
            // outputs: `out` per frame + final latch data.
            assert_eq!(u.circuit.outputs().len(), frames + 1);
        }
    }

    #[test]
    fn unrolled_counter_toggles() {
        use gatediag_sim_shim::simulate;
        let c = counter();
        let u = unroll(&c, 3);
        // inputs order: init first (frame 0 processes latch q first? no —
        // topo order), so resolve by name instead.
        let mut inputs = vec![false; u.circuit.inputs().len()];
        let set = |inputs: &mut Vec<bool>, u: &Unrolling, name: &str, v: bool| {
            let id = u.circuit.find(name).expect("input exists");
            let pos = u
                .circuit
                .inputs()
                .iter()
                .position(|&p| p == id)
                .expect("is an input");
            inputs[pos] = v;
        };
        // init q = 0; enable toggling every frame.
        set(&mut inputs, &u, "init_q", false);
        for f in 0..3 {
            set(&mut inputs, &u, &format!("en@{f}"), true);
        }
        let values = simulate(&u.circuit, &inputs);
        // out@f = q at frame f: 0, 1, 0.
        let out_at = |f: usize| {
            let id = u.circuit.find(&format!("out@{f}")).unwrap();
            values[id.index()]
        };
        assert!(!out_at(0));
        assert!(out_at(1));
        assert!(!out_at(2));
    }

    #[test]
    fn instance_mapping_is_consistent() {
        let c = counter();
        let u = unroll(&c, 2);
        for (id, gate) in c.iter() {
            for frame in 0..2 {
                let inst = u.instance(frame, id);
                let unrolled_gate = u.circuit.gate(inst);
                if gate.kind() != GateKind::Input {
                    assert_eq!(unrolled_gate.kind(), gate.kind(), "{id} frame {frame}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one time frame")]
    fn zero_frames_rejected() {
        let c = counter();
        let _ = unroll(&c, 0);
    }

    /// Minimal local simulator so the netlist crate's tests need not depend
    /// on `gatediag-sim` (which depends on this crate).
    mod gatediag_sim_shim {
        use crate::circuit::Circuit;
        use crate::gate::GateKind;

        pub fn simulate(circuit: &Circuit, inputs: &[bool]) -> Vec<bool> {
            let mut values = vec![false; circuit.len()];
            for (&id, &v) in circuit.inputs().iter().zip(inputs) {
                values[id.index()] = v;
            }
            for &id in circuit.topo_order() {
                let gate = circuit.gate(id);
                if gate.kind() == GateKind::Input {
                    continue;
                }
                values[id.index()] = gate
                    .kind()
                    .eval_bool(gate.fanins().iter().map(|f| values[f.index()]));
            }
            values
        }
    }
}
