//! Structural analyses: cones, fan-out-free regions, dominators and
//! distances.
//!
//! These back two parts of the reproduction:
//!
//! * the *quality metrics* of Table 3 need the shortest structural distance
//!   from a candidate gate to the nearest injected error site
//!   ([`undirected_distances`]);
//! * the *advanced SAT-based approach* (Sec. 2.3 of the paper) inserts
//!   correction multiplexers only at dominators in a first pass —
//!   fan-out-free region roots dominate their region, which
//!   [`ffr_roots`] computes.

use crate::circuit::Circuit;
use crate::gate::GateId;
use std::collections::VecDeque;

/// A dense gate-indexed bit set.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{GateId, GateSet};
/// let mut s = GateSet::new(8);
/// s.insert(GateId::new(3));
/// assert!(s.contains(GateId::new(3)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GateSet {
    bits: Vec<u64>,
    universe: usize,
}

impl GateSet {
    /// Creates an empty set over a universe of `universe` gates.
    pub fn new(universe: usize) -> Self {
        GateSet {
            bits: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Inserts a gate; returns `true` if it was newly inserted.
    pub fn insert(&mut self, id: GateId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let fresh = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        fresh
    }

    /// Removes a gate; returns `true` if it was present.
    pub fn remove(&mut self, id: GateId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let present = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: GateId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// Number of gates in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = GateId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(GateId::new(w * 64 + b))
                }
            })
        })
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &GateSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }
}

impl FromIterator<GateId> for GateSet {
    /// Collects gates into a set sized to the maximum id seen.
    ///
    /// Prefer [`GateSet::new`] + inserts when the circuit size is known.
    fn from_iter<T: IntoIterator<Item = GateId>>(iter: T) -> Self {
        let ids: Vec<GateId> = iter.into_iter().collect();
        let universe = ids.iter().map(|g| g.index() + 1).max().unwrap_or(0);
        let mut set = GateSet::new(universe);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl Extend<GateId> for GateSet {
    fn extend<T: IntoIterator<Item = GateId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Transitive fan-in cone of `roots` (including the roots themselves).
pub fn fanin_cone(circuit: &Circuit, roots: &[GateId]) -> GateSet {
    let mut seen = GateSet::new(circuit.len());
    let mut stack: Vec<GateId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if seen.insert(id) {
            stack.extend(circuit.gate(id).fanins().iter().copied());
        }
    }
    seen
}

/// Transitive fan-out cone of `roots` (including the roots themselves).
pub fn fanout_cone(circuit: &Circuit, roots: &[GateId]) -> GateSet {
    let mut seen = GateSet::new(circuit.len());
    let mut stack: Vec<GateId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if seen.insert(id) {
            stack.extend(circuit.fanouts(id).iter().copied());
        }
    }
    seen
}

/// Multi-source BFS distance (in gates) over the *undirected* gate graph.
///
/// `distance[g] == 0` for gates in `sources`; unreachable gates get
/// `u32::MAX`. This is the paper's quality metric: "the number of gates on a
/// shortest path to any error".
pub fn undirected_distances(circuit: &Circuit, sources: &[GateId]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; circuit.len()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(id) = queue.pop_front() {
        let d = dist[id.index()];
        let neighbours = circuit
            .gate(id)
            .fanins()
            .iter()
            .copied()
            .chain(circuit.fanouts(id).iter().copied());
        for n in neighbours {
            if dist[n.index()] == u32::MAX {
                dist[n.index()] = d + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Fan-out-free region root of every gate.
///
/// `roots[g]` is the nearest transitive fan-out of `g` (possibly `g` itself)
/// that has fan-out ≠ 1 or is a primary output. Every path from `g` to a
/// primary output passes through `roots[g]`, i.e. the root *dominates* its
/// region — the property the advanced SAT-based diagnosis exploits when it
/// instruments only dominators in its first pass.
pub fn ffr_roots(circuit: &Circuit) -> Vec<GateId> {
    let mut roots: Vec<GateId> = (0..circuit.len()).map(GateId::new).collect();
    // Reverse topological order: fan-outs are finalised before fan-ins.
    for &id in circuit.topo_order().iter().rev() {
        let fanouts = circuit.fanouts(id);
        if fanouts.len() == 1 && !circuit.is_output(id) {
            roots[id.index()] = roots[fanouts[0].index()];
        } else {
            roots[id.index()] = id;
        }
    }
    roots
}

/// Immediate dominators of each gate towards the primary outputs.
///
/// The graph is viewed with a virtual sink fed by every primary output;
/// `idom[g]` is the unique gate through which every `g`→output path passes
/// first (or `None` when the only common dominator is the virtual sink).
/// Iterative Cooper–Harvey–Kennedy over the reverse DAG.
pub fn output_idoms(circuit: &Circuit) -> Vec<Option<GateId>> {
    let n = circuit.len();
    // Process in reverse topo order so "predecessors" (fanouts) are done first.
    let order: Vec<GateId> = circuit.topo_order().iter().rev().copied().collect();
    let mut rank = vec![0usize; n]; // position in `order`
    for (i, &id) in order.iter().enumerate() {
        rank[id.index()] = i;
    }
    const SINK: usize = usize::MAX;
    let mut idom: Vec<Option<usize>> = vec![None; n]; // rank-based, SINK = virtual sink

    let intersect = |idom: &Vec<Option<usize>>, mut a: usize, mut b: usize| -> usize {
        // Walk up the dominator tree in rank space; sink dominates everything.
        while a != b {
            if a == SINK {
                return SINK;
            }
            if b == SINK {
                return SINK;
            }
            while a > b {
                match idom[order[a].index()] {
                    Some(x) => a = x,
                    None => return SINK,
                }
                if a == SINK {
                    return SINK;
                }
            }
            while b > a {
                match idom[order[b].index()] {
                    Some(x) => b = x,
                    None => return SINK,
                }
                if b == SINK {
                    return SINK;
                }
            }
        }
        a
    };

    // DAG: a single pass in reverse-topo order converges.
    for (i, &id) in order.iter().enumerate() {
        let mut new_idom: Option<usize> = None;
        if circuit.is_output(id) {
            new_idom = Some(SINK);
        }
        for &f in circuit.fanouts(id) {
            let p = rank[f.index()];
            // Predecessor in reversed graph; processed already since DAG.
            new_idom = Some(match new_idom {
                None => p,
                Some(cur) => intersect(&idom, cur, p),
            });
        }
        idom[id.index()] = new_idom;
        let _ = i;
    }

    idom.into_iter()
        .map(|d| match d {
            Some(SINK) | None => None,
            Some(r) => Some(order[r]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::gate::GateKind;

    /// a, b -> g1=AND(a,b); g2=NOT(g1); g3=OR(g1, b); outputs g2, g3
    fn diamondish() -> (Circuit, Vec<GateId>) {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let g1 = b.gate(GateKind::And, vec![a, bb], "g1");
        let g2 = b.gate(GateKind::Not, vec![g1], "g2");
        let g3 = b.gate(GateKind::Or, vec![g1, bb], "g3");
        b.output(g2);
        b.output(g3);
        let c = b.finish().unwrap();
        (c, vec![a, bb, g1, g2, g3])
    }

    #[test]
    fn gateset_basics() {
        let mut s = GateSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(GateId::new(0)));
        assert!(s.insert(GateId::new(129)));
        assert!(!s.insert(GateId::new(129)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(GateId::new(129)));
        assert!(!s.contains(GateId::new(64)));
        let members: Vec<GateId> = s.iter().collect();
        assert_eq!(members, vec![GateId::new(0), GateId::new(129)]);
        assert!(s.remove(GateId::new(0)));
        assert!(!s.remove(GateId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn gateset_union() {
        let mut a = GateSet::new(10);
        a.insert(GateId::new(1));
        let mut b = GateSet::new(10);
        b.insert(GateId::new(2));
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn gateset_from_iter() {
        let s: GateSet = vec![GateId::new(2), GateId::new(5)].into_iter().collect();
        assert!(s.contains(GateId::new(5)));
        assert_eq!(s.universe(), 6);
    }

    #[test]
    fn cones() {
        let (c, ids) = diamondish();
        let (a, b, g1, g2, g3) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let fi = fanin_cone(&c, &[g2]);
        assert!(fi.contains(g2) && fi.contains(g1) && fi.contains(a) && fi.contains(b));
        assert!(!fi.contains(g3));
        let fo = fanout_cone(&c, &[a]);
        assert!(fo.contains(a) && fo.contains(g1) && fo.contains(g2) && fo.contains(g3));
        assert!(!fo.contains(b));
    }

    #[test]
    fn distances() {
        let (c, ids) = diamondish();
        let (a, b, g1, g2, g3) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let d = undirected_distances(&c, &[g1]);
        assert_eq!(d[g1.index()], 0);
        assert_eq!(d[a.index()], 1);
        assert_eq!(d[b.index()], 1);
        assert_eq!(d[g2.index()], 1);
        assert_eq!(d[g3.index()], 1);
        // Multi-source takes the nearest.
        let d2 = undirected_distances(&c, &[a, g3]);
        assert_eq!(d2[g1.index()], 1);
        assert_eq!(d2[b.index()], 1);
        assert_eq!(d2[g2.index()], 2);
    }

    #[test]
    fn distances_unreachable() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Not, vec![a], "g");
        b.output(g);
        b.output(x); // x is isolated from a/g
        let c = b.finish().unwrap();
        let d = undirected_distances(&c, &[a]);
        assert_eq!(d[x.index()], u32::MAX);
    }

    #[test]
    fn ffr_roots_chain_and_stem() {
        // a -> n1 -> n2 -> out (chain), a also feeds n3 (stem at a)
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, vec![a], "n1");
        let n2 = b.gate(GateKind::Not, vec![n1], "n2");
        let n3 = b.gate(GateKind::Buf, vec![a], "n3");
        b.output(n2);
        b.output(n3);
        let c = b.finish().unwrap();
        let roots = ffr_roots(&c);
        assert_eq!(roots[n1.index()], n2); // chain collapses into its PO
        assert_eq!(roots[n2.index()], n2);
        assert_eq!(roots[a.index()], a); // fanout 2 => stem
        assert_eq!(roots[n3.index()], n3);
    }

    #[test]
    fn idoms_diamond() {
        // g1 feeds both outputs: its only dominator is the virtual sink.
        let (c, ids) = diamondish();
        let (a, b, g1, g2, g3) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let idom = output_idoms(&c);
        assert_eq!(idom[g1.index()], None);
        assert_eq!(idom[g2.index()], None); // g2 is itself an output
        assert_eq!(idom[g3.index()], None);
        assert_eq!(idom[a.index()], Some(g1)); // a only reaches outputs via g1
        assert_eq!(idom[b.index()], None); // b reaches g1 and g3 directly
    }

    #[test]
    fn idoms_chain() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, vec![a], "n1");
        let n2 = b.gate(GateKind::Not, vec![n1], "n2");
        b.output(n2);
        let c = b.finish().unwrap();
        let idom = output_idoms(&c);
        assert_eq!(idom[a.index()], Some(n1));
        assert_eq!(idom[n1.index()], Some(n2));
        assert_eq!(idom[n2.index()], None);
    }

    #[test]
    fn ffr_root_dominates_region() {
        // Property glue: for every gate, its FFR root must appear on every
        // path to an output. Check via idoms: walking the idom chain from g
        // reaches root (or g == root).
        let (c, _) = diamondish();
        let roots = ffr_roots(&c);
        let idom = output_idoms(&c);
        for (id, _) in c.iter() {
            let root = roots[id.index()];
            if root == id {
                continue;
            }
            let mut cur = id;
            let mut found = false;
            while let Some(d) = idom[cur.index()] {
                if d == root {
                    found = true;
                    break;
                }
                cur = d;
            }
            assert!(found, "{id} not dominated by its FFR root {root}");
        }
    }
}
