//! ISCAS89 `.bench` netlist reader and writer.
//!
//! The `.bench` dialect accepted here is the one used by the ISCAS85/89
//! benchmark distributions:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G11 = DFF(G10)
//! ```
//!
//! Sequential elements (`DFF`) are combinationalised on the fly: the DFF
//! output becomes a pseudo-primary input and its data signal a
//! pseudo-primary output, matching how the paper's combinational diagnosis
//! treats the ISCAS89 circuits. The original latch pairing is retained in
//! [`Circuit::latches`].

use crate::circuit::{Circuit, CircuitBuilder, NetlistError};
use crate::gate::{GateId, GateKind};
use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Clone, Debug)]
enum Stmt {
    Input(String),
    Output(String),
    Gate {
        target: String,
        op: String,
        args: Vec<String>,
    },
}

fn parse_line(line_no: usize, raw: &str) -> Result<Option<Stmt>, NetlistError> {
    let line = match raw.find('#') {
        Some(pos) => &raw[..pos],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return Ok(None);
    }
    let err = |message: String| NetlistError::Parse {
        line: line_no,
        message,
    };

    if let Some(eq) = line.find('=') {
        let target = line[..eq].trim();
        let rhs = line[eq + 1..].trim();
        if target.is_empty() {
            return Err(err("missing target signal before `=`".into()));
        }
        let open = rhs
            .find('(')
            .ok_or_else(|| err(format!("expected `OP(args)` after `=`, got `{rhs}`")))?;
        if !rhs.ends_with(')') {
            return Err(err(format!("missing closing `)` in `{rhs}`")));
        }
        let op = rhs[..open].trim().to_string();
        let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if op.is_empty() {
            return Err(err("missing operator name".into()));
        }
        return Ok(Some(Stmt::Gate {
            target: target.to_string(),
            op,
            args,
        }));
    }

    let upper = line.to_ascii_uppercase();
    for (kw, ctor) in [
        ("INPUT", Stmt::Input as fn(String) -> Stmt),
        ("OUTPUT", Stmt::Output as fn(String) -> Stmt),
    ] {
        if upper.starts_with(kw) {
            let rest = line[kw.len()..].trim();
            if !rest.starts_with('(') || !rest.ends_with(')') {
                return Err(err(format!("expected `{kw}(name)`, got `{line}`")));
            }
            let name = rest[1..rest.len() - 1].trim();
            if name.is_empty() {
                return Err(err(format!("empty signal name in `{line}`")));
            }
            return Ok(Some(ctor(name.to_string())));
        }
    }
    Err(err(format!("unrecognised statement `{line}`")))
}

/// Parses a `.bench` netlist from a string.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::DuplicateName`] / [`NetlistError::UndefinedSignal`] for
/// inconsistent signal usage, and the structural errors of
/// [`CircuitBuilder::finish`] for bad arity or cyclic definitions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gatediag_netlist::NetlistError> {
/// let c = gatediag_netlist::parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
/// )?;
/// assert_eq!(c.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit, NetlistError> {
    parse_bench_named(text, "")
}

/// Parses a `.bench` netlist and names the resulting circuit.
///
/// # Errors
///
/// Same as [`parse_bench`].
pub fn parse_bench_named(text: &str, name: &str) -> Result<Circuit, NetlistError> {
    let mut stmts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(stmt) = parse_line(i + 1, raw)? {
            stmts.push(stmt);
        }
    }

    let mut builder = CircuitBuilder::new();
    builder.name(name);

    // Pass 1: create nodes for inputs and gate targets. DFF targets become
    // pseudo-primary inputs.
    let mut defined: HashMap<String, GateId> = HashMap::new();
    let mut dff_data: Vec<(GateId, String)> = Vec::new(); // (q node, d signal name)
    let mut pending: Vec<(GateId, GateKind, Vec<String>)> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();

    for stmt in &stmts {
        match stmt {
            Stmt::Input(name) => {
                if defined.contains_key(name) {
                    return Err(NetlistError::DuplicateName(name.clone()));
                }
                let id = builder.input(name.clone());
                defined.insert(name.clone(), id);
            }
            Stmt::Output(name) => output_names.push(name.clone()),
            Stmt::Gate { target, op, args } => {
                if defined.contains_key(target) {
                    return Err(NetlistError::DuplicateName(target.clone()));
                }
                if op.eq_ignore_ascii_case("DFF") {
                    let q = builder.input(target.clone());
                    defined.insert(target.clone(), q);
                    let data = args.first().cloned().unwrap_or_default();
                    dff_data.push((q, data));
                } else {
                    let kind = GateKind::from_bench_name(op).ok_or(NetlistError::Parse {
                        line: 0,
                        message: format!("unknown gate type `{op}` for `{target}`"),
                    })?;
                    // Placeholder fanins resolved in pass 2.
                    let id = builder.gate(kind, Vec::new(), target.clone());
                    defined.insert(target.clone(), id);
                    pending.push((id, kind, args.clone()));
                }
            }
        }
    }

    // Pass 2: resolve fan-in names.
    let resolve = |name: &String| -> Result<GateId, NetlistError> {
        defined
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UndefinedSignal(name.clone()))
    };
    let mut resolved: Vec<(GateId, Vec<GateId>)> = Vec::with_capacity(pending.len());
    for (id, _kind, args) in &pending {
        let fanins = args.iter().map(resolve).collect::<Result<Vec<_>, _>>()?;
        resolved.push((*id, fanins));
    }
    for (id, fanins) in resolved {
        builder.set_fanins(id, fanins);
    }

    for name in &output_names {
        let id = resolve(name)?;
        builder.output(id);
    }
    for (q, data_name) in &dff_data {
        if data_name.is_empty() {
            return Err(NetlistError::Parse {
                line: 0,
                message: "DFF with no data input".into(),
            });
        }
        let d = resolve(data_name)?;
        builder.latch(*q, d);
        builder.output(d); // pseudo-primary output
    }

    builder.finish()
}

/// One `.bench` file a lenient [`parse_bench_dir`] load skipped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchLoadWarning {
    /// Path of the skipped file.
    pub path: String,
    /// Why it was skipped (IO or parse error text).
    pub message: String,
}

impl std::fmt::Display for BenchLoadWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "skipped {}: {}", self.path, self.message)
    }
}

/// Result of a lenient [`parse_bench_dir`] load: the circuits that
/// parsed plus a warning per skipped file.
#[derive(Clone, Debug, Default)]
pub struct BenchDirLoad {
    /// Successfully loaded circuits, sorted by file name.
    pub circuits: Vec<(String, Circuit)>,
    /// One warning per unreadable or malformed `.bench` file, in file
    /// order.
    pub warnings: Vec<BenchLoadWarning>,
}

/// Loads every `.bench` file in a directory, sorted by file name,
/// **skipping** unreadable or malformed files and recording one
/// [`BenchLoadWarning`] per skip.
///
/// Each circuit is named after the file stem (`s1423.bench` → `s1423`).
/// Non-`.bench` entries are ignored; the extension comparison is
/// case-insensitive. Returns an empty circuit list for a directory with
/// no `.bench` files — callers typically fall back to synthetic circuits
/// in that case.
///
/// One corrupt file in a large corpus used to abort the whole load; a
/// long campaign should instead run the 99 good circuits and *surface*
/// the one bad file (the campaign CLI prints the warnings and embeds
/// them in the report header). Callers that prefer the old fail-fast
/// contract — e.g. a benchmark harness whose numbers would silently
/// change if a circuit vanished — use [`parse_bench_dir_strict`].
///
/// # Errors
///
/// Returns [`NetlistError::Io`] only when the directory itself cannot be
/// read; per-file problems become warnings.
///
/// # Examples
///
/// ```no_run
/// let load = gatediag_netlist::parse_bench_dir(std::path::Path::new("benchmarks/")).unwrap();
/// for w in &load.warnings {
///     eprintln!("warning: {w}");
/// }
/// for (name, circuit) in &load.circuits {
///     println!("{name}: {} gates", circuit.num_functional_gates());
/// }
/// ```
pub fn parse_bench_dir(dir: &std::path::Path) -> Result<BenchDirLoad, NetlistError> {
    let mut load = BenchDirLoad::default();
    for path in bench_files(dir)? {
        match load_bench_file(&path) {
            Ok(named) => load.circuits.push(named),
            Err(e) => load.warnings.push(BenchLoadWarning {
                path: path.display().to_string(),
                message: match e {
                    // The per-file annotation already names the path;
                    // keep only the underlying message.
                    NetlistError::Io { message, .. } => message,
                    other => other.to_string(),
                },
            }),
        }
    }
    Ok(load)
}

/// [`parse_bench_dir`] with the fail-fast contract: the first unreadable
/// or malformed `.bench` file aborts the whole load.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] when the directory or a `.bench` file
/// cannot be read, and the parse errors of [`parse_bench`] (annotated
/// with the offending file path) for malformed netlists.
pub fn parse_bench_dir_strict(
    dir: &std::path::Path,
) -> Result<Vec<(String, Circuit)>, NetlistError> {
    let mut circuits = Vec::new();
    for path in bench_files(dir)? {
        circuits.push(load_bench_file(&path)?);
    }
    Ok(circuits)
}

/// The sorted `.bench` paths of a directory.
fn bench_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, NetlistError> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| NetlistError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| x.eq_ignore_ascii_case("bench"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Reads and parses one `.bench` file; errors are annotated with the
/// offending path (in a multi-file corpus a bare "parse error on line 7"
/// is undebuggable).
fn load_bench_file(path: &std::path::Path) -> Result<(String, Circuit), NetlistError> {
    let annotate = |message: String| NetlistError::Io {
        path: path.display().to_string(),
        message,
    };
    let text = std::fs::read_to_string(path).map_err(|e| annotate(e.to_string()))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    let circuit = parse_bench_named(&text, &name).map_err(|e| annotate(e.to_string()))?;
    Ok((name, circuit))
}

/// Serialises a circuit back to `.bench` text.
///
/// Flip-flops recorded in [`Circuit::latches`] are re-emitted as `DFF`
/// statements; their pseudo-primary inputs/outputs are folded back. Unnamed
/// gates receive synthetic `n<id>` names.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gatediag_netlist::NetlistError> {
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let c = gatediag_netlist::parse_bench(src)?;
/// let round = gatediag_netlist::parse_bench(&gatediag_netlist::write_bench(&c))?;
/// assert_eq!(round.len(), c.len());
/// # Ok(())
/// # }
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "# {}", circuit.name());
    }
    let gate_name = |id: GateId| -> String {
        circuit
            .gate_name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", id.index()))
    };

    let latch_qs: Vec<GateId> = circuit.latches().iter().map(|l| l.q).collect();
    let latch_ds: Vec<GateId> = circuit.latches().iter().map(|l| l.d).collect();

    for &pi in circuit.inputs() {
        if !latch_qs.contains(&pi) {
            let _ = writeln!(out, "INPUT({})", gate_name(pi));
        }
    }
    for &po in circuit.outputs() {
        if !latch_ds.contains(&po) {
            let _ = writeln!(out, "OUTPUT({})", gate_name(po));
        }
    }
    for latch in circuit.latches() {
        let _ = writeln!(out, "{} = DFF({})", gate_name(latch.q), gate_name(latch.d));
    }
    for (id, gate) in circuit.iter() {
        if gate.kind().is_source() {
            if matches!(gate.kind(), GateKind::Const0 | GateKind::Const1) {
                let _ = writeln!(out, "{} = {}()", gate_name(id), gate.kind().bench_name());
            }
            continue;
        }
        let args: Vec<String> = gate.fanins().iter().map(|&f| gate_name(f)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            gate_name(id),
            gate.kind().bench_name(),
            args.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    const C17: &str = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse_bench_named(C17, "c17").unwrap();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.num_functional_gates(), 6);
        assert_eq!(c.name(), "c17");
        let g22 = c.find("22").unwrap();
        assert_eq!(c.gate(g22).kind(), GateKind::Nand);
        assert_eq!(c.gate(g22).arity(), 2);
        assert!(c.is_output(g22));
    }

    #[test]
    fn parses_dff_as_pseudo_io() {
        let src = "\
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
y = NOT(q)
";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.latches().len(), 1);
        let latch = c.latches()[0];
        // q is a pseudo input, d a pseudo output.
        assert!(c.inputs().contains(&latch.q));
        assert!(c.outputs().contains(&latch.d));
        assert_eq!(c.gate(latch.q).kind(), GateKind::Input);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 2);
    }

    #[test]
    fn round_trips_c17() {
        let c = parse_bench_named(C17, "c17").unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench_named(&text, "c17").unwrap();
        assert_eq!(c2.len(), c.len());
        assert_eq!(c2.inputs().len(), c.inputs().len());
        assert_eq!(c2.outputs().len(), c.outputs().len());
        // Same structure gate-by-gate via names.
        for (id, gate) in c.iter() {
            let name = c.gate_name(id).unwrap();
            let id2 = c2.find(name).unwrap();
            assert_eq!(c2.gate(id2).kind(), gate.kind());
        }
    }

    #[test]
    fn round_trips_dff() {
        let src = "\
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
y = NOT(q)
";
        let c = parse_bench(src).unwrap();
        let c2 = parse_bench(&write_bench(&c)).unwrap();
        assert_eq!(c2.latches().len(), 1);
        assert_eq!(c2.len(), c.len());
    }

    #[test]
    fn accepts_out_of_order_definitions() {
        let src = "\
OUTPUT(y)
y = AND(x, a)
x = NOT(a)
INPUT(a)
";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.num_functional_gates(), 2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "\n# hello\n  \nINPUT(a) # trailing\nOUTPUT(y)\ny = NOT(a)\n";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        let err = parse_bench(src).unwrap_err();
        assert!(format!("{err}").contains("FROB"));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
        assert!(matches!(
            parse_bench(src),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn rejects_undefined_signal() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(matches!(
            parse_bench(src),
            Err(NetlistError::UndefinedSignal(_))
        ));
    }

    #[test]
    fn rejects_garbage_line() {
        let src = "INPUT(a)\nwat\n";
        assert!(matches!(parse_bench(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn parse_error_carries_line_number() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a,\n";
        match parse_bench(src) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
