//! Circuit generators: seeded random DAGs, ISCAS89-profile-matched
//! synthetics, and small canned textbook circuits.
//!
//! The original ISCAS89 `.bench` files cannot be redistributed here, so the
//! experiments run on *profile-matched* synthetic circuits: same primary
//! input/output counts, same flip-flop count (combinationalised into
//! pseudo-I/O exactly like the parser does), same functional gate count and
//! a comparable fan-in distribution. Real `.bench` files drop in unchanged
//! through [`parse_bench`](crate::parse_bench).

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for the seeded random circuit generator.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::RandomCircuitSpec;
/// let c = RandomCircuitSpec::new(8, 4, 64).seed(7).generate();
/// assert_eq!(c.inputs().len(), 8);
/// assert!(c.outputs().len() >= 4);
/// assert!(c.num_functional_gates() >= 64);
/// ```
#[derive(Clone, Debug)]
pub struct RandomCircuitSpec {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    num_gates: usize,
    num_latches: usize,
    max_fanin: usize,
    locality: f64,
    seed: u64,
}

impl RandomCircuitSpec {
    /// Creates a spec with `num_inputs` primary inputs, at least
    /// `num_outputs` primary outputs and roughly `num_gates` functional
    /// gates.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs == 0` or `num_gates == 0`.
    pub fn new(num_inputs: usize, num_outputs: usize, num_gates: usize) -> Self {
        assert!(num_inputs > 0, "need at least one input");
        assert!(num_gates > 0, "need at least one gate");
        RandomCircuitSpec {
            name: String::new(),
            num_inputs,
            num_outputs: num_outputs.max(1),
            num_gates,
            num_latches: 0,
            max_fanin: 4,
            locality: 3.0,
            seed: 0,
        }
    }

    /// Sets the circuit name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the RNG seed (generation is fully deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of flip-flops to model as pseudo-primary input/output pairs.
    pub fn latches(mut self, num_latches: usize) -> Self {
        self.num_latches = num_latches;
        self
    }

    /// Maximum gate fan-in (default 4, minimum 2).
    pub fn max_fanin(mut self, max_fanin: usize) -> Self {
        self.max_fanin = max_fanin.max(2);
        self
    }

    /// Locality exponent: larger values bias fan-in selection towards
    /// recently created gates, producing deeper circuits (default 3.0).
    pub fn locality(mut self, locality: f64) -> Self {
        self.locality = locality.max(1.0);
        self
    }

    /// Generates the circuit.
    ///
    /// Guarantees: exactly `num_inputs + num_latches` inputs, at least
    /// `num_outputs` outputs, no dead gates (every gate reaches some
    /// output), acyclic by construction.
    pub fn generate(&self) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut b = CircuitBuilder::new();
        b.name(self.name.clone());

        let mut nodes: Vec<GateId> = Vec::new();
        for i in 0..self.num_inputs {
            nodes.push(b.input(format!("pi{i}")));
        }
        let mut latch_qs = Vec::new();
        for i in 0..self.num_latches {
            let q = b.input(format!("ff{i}_q"));
            latch_qs.push(q);
            nodes.push(q);
        }

        let arity_weights = match self.max_fanin {
            2 => vec![(1usize, 8u32), (2, 72)],
            3 => vec![(1, 8), (2, 60), (3, 12)],
            _ => vec![(1, 8), (2, 56), (3, 12), (4, 4)],
        };
        let arity_dist = WeightedIndex::new(arity_weights.iter().map(|&(_, w)| w))
            .expect("static weights are valid");
        // ISCAS-ish mix: NAND/NOR heavy, some AND/OR, a sprinkle of XOR.
        let kind2 = [
            (GateKind::Nand, 30u32),
            (GateKind::Nor, 18),
            (GateKind::And, 22),
            (GateKind::Or, 18),
            (GateKind::Xor, 7),
            (GateKind::Xnor, 5),
        ];
        let kind2_dist =
            WeightedIndex::new(kind2.iter().map(|&(_, w)| w)).expect("static weights are valid");

        // `fanout_free` may hold stale entries; `has_fanout` is the truth.
        // Stale entries are discarded lazily when sampled (amortised O(1)).
        let mut fanout_free: Vec<GateId> = Vec::new();
        let mut has_fanout = vec![false; self.num_inputs + self.num_latches + self.num_gates + 8];

        let pick = |rng: &mut ChaCha8Rng, nodes: &[GateId], locality: f64| -> GateId {
            let u: f64 = rng.gen::<f64>();
            // u^(1/locality) biased towards 1.0 => recent nodes.
            let idx = ((u.powf(1.0 / locality)) * nodes.len() as f64) as usize;
            nodes[idx.min(nodes.len() - 1)]
        };

        for g in 0..self.num_gates {
            let arity = arity_weights[arity_dist.sample(&mut rng)].0;
            let (kind, arity) = if arity == 1 {
                (
                    if rng.gen_bool(0.7) {
                        GateKind::Not
                    } else {
                        GateKind::Buf
                    },
                    1,
                )
            } else {
                (kind2[kind2_dist.sample(&mut rng)].0, arity)
            };
            let mut fanins: Vec<GateId> = Vec::with_capacity(arity);
            // Prefer a not-yet-consumed node for the first fan-in half of the
            // time so no logic is left dangling.
            if rng.gen_bool(0.5) {
                while !fanout_free.is_empty() {
                    let i = rng.gen_range(0..fanout_free.len());
                    let cand = fanout_free.swap_remove(i);
                    if !has_fanout[cand.index()] {
                        fanins.push(cand);
                        break;
                    }
                }
            }
            let mut guard = 0;
            while fanins.len() < arity {
                let cand = pick(&mut rng, &nodes, self.locality);
                if !fanins.contains(&cand) {
                    fanins.push(cand);
                } else {
                    guard += 1;
                    if guard > 64 {
                        // tiny node pool; allow fewer fan-ins by switching kind
                        break;
                    }
                }
            }
            let (kind, fanins) = if fanins.len() < 2 && arity >= 2 {
                (GateKind::Not, vec![fanins[0]])
            } else {
                (kind, fanins)
            };
            for &f in &fanins {
                has_fanout[f.index()] = true;
            }
            let id = b.gate(kind, fanins, format!("n{g}"));
            if id.index() >= has_fanout.len() {
                has_fanout.resize(id.index() + 1, false);
            }
            nodes.push(id);
            fanout_free.push(id);
        }

        // Sinks become outputs; merge down or promote up to hit num_outputs.
        let want = self.num_outputs + self.num_latches;
        let mut sinks: Vec<GateId> = nodes
            .iter()
            .copied()
            .filter(|&id| !has_fanout[id.index()] && !b.kind_of(id).is_source())
            .collect();
        if sinks.is_empty() {
            sinks.push(*nodes.last().expect("num_gates > 0 guarantees a node"));
        }
        let mut merge_idx = 0usize;
        while sinks.len() > want {
            let take = (sinks.len() - want + 1).clamp(2, self.max_fanin.max(2));
            let group: Vec<GateId> = sinks.drain(..take).collect();
            let kind = kind2[kind2_dist.sample(&mut rng)].0;
            let id = b.gate(kind, group, format!("m{merge_idx}"));
            merge_idx += 1;
            sinks.push(id);
        }
        let mut promoted: Vec<GateId> = Vec::new();
        if sinks.len() < want {
            // Promote internal gates (most recent first for observability).
            for &id in nodes.iter().rev() {
                if sinks.len() + promoted.len() >= want {
                    break;
                }
                if !sinks.contains(&id) && !promoted.contains(&id) {
                    promoted.push(id);
                }
            }
        }

        let mut all_outputs: Vec<GateId> = sinks;
        all_outputs.extend(promoted);
        // The first `num_latches` outputs become latch data inputs.
        for (i, &q) in latch_qs.iter().enumerate() {
            let d = all_outputs[i % all_outputs.len()];
            b.latch(q, d);
        }
        for &o in &all_outputs {
            b.output(o);
        }

        b.finish()
            .expect("generator invariants guarantee a valid DAG")
    }
}

/// Profile-matched stand-in for ISCAS89 `s1423` (17 PI, 5 PO, 74 FF,
/// ~657 gates). See the module docs for why a synthetic profile is used.
pub fn s1423_like(seed: u64) -> Circuit {
    RandomCircuitSpec::new(17, 5, 657)
        .latches(74)
        .seed(seed)
        .name(format!("s1423_like[{seed}]"))
        .generate()
}

/// Profile-matched stand-in for ISCAS89 `s6669` (83 PI, 55 PO, 239 FF,
/// ~3402 gates).
pub fn s6669_like(seed: u64) -> Circuit {
    RandomCircuitSpec::new(83, 55, 3402)
        .latches(239)
        .seed(seed)
        .name(format!("s6669_like[{seed}]"))
        .generate()
}

/// Profile-matched stand-in for ISCAS89 `s38417` (28 PI, 106 PO, 1636 FF,
/// ~23815 gates).
pub fn s38417_like(seed: u64) -> Circuit {
    RandomCircuitSpec::new(28, 106, 23815)
        .latches(1636)
        .seed(seed)
        .name(format!("s38417_like[{seed}]"))
        .generate()
}

/// The ISCAS85 `c17` benchmark (6 NAND gates), the classic smoke-test
/// circuit.
pub fn c17() -> Circuit {
    crate::bench_format::parse_bench_named(
        "\
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
",
        "c17",
    )
    .expect("c17 source is well-formed")
}

/// An `n`-bit ripple-carry adder: inputs `a0..a(n-1)`, `b0..b(n-1)`, `cin`;
/// outputs `s0..s(n-1)`, `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new();
    b.name(format!("rca{n}"));
    let a: Vec<GateId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<GateId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..n {
        let axb = b.gate(GateKind::Xor, vec![a[i], bb[i]], format!("axb{i}"));
        let s = b.gate(GateKind::Xor, vec![axb, carry], format!("s{i}"));
        let t1 = b.gate(GateKind::And, vec![axb, carry], format!("t1_{i}"));
        let t2 = b.gate(GateKind::And, vec![a[i], bb[i]], format!("t2_{i}"));
        let c = b.gate(GateKind::Or, vec![t1, t2], format!("c{i}"));
        b.output(s);
        carry = c;
    }
    b.output(carry);
    b.finish().expect("adder construction is valid")
}

/// A balanced XOR parity tree over `width` inputs; single output `parity`.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn parity_tree(width: usize) -> Circuit {
    assert!(width >= 2, "parity needs at least two inputs");
    let mut b = CircuitBuilder::new();
    b.name(format!("parity{width}"));
    let mut layer: Vec<GateId> = (0..width).map(|i| b.input(format!("x{i}"))).collect();
    let mut idx = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.gate(GateKind::Xor, vec![pair[0], pair[1]], format!("p{idx}")));
                idx += 1;
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    b.output(layer[0]);
    b.finish().expect("parity construction is valid")
}

/// A `2^sel_bits`-to-1 multiplexer tree built from AND/OR/NOT gates.
///
/// Inputs: `d0..d(2^sel_bits - 1)` data lines, `s0..s(sel_bits-1)` selects.
///
/// # Panics
///
/// Panics if `sel_bits == 0` or `sel_bits > 6`.
pub fn mux_tree(sel_bits: usize) -> Circuit {
    assert!(
        (1..=6).contains(&sel_bits),
        "sel_bits must be between 1 and 6"
    );
    let mut b = CircuitBuilder::new();
    b.name(format!("mux{}", 1 << sel_bits));
    let data: Vec<GateId> = (0..1usize << sel_bits)
        .map(|i| b.input(format!("d{i}")))
        .collect();
    let sels: Vec<GateId> = (0..sel_bits).map(|i| b.input(format!("s{i}"))).collect();
    let mut layer = data;
    for (bit, &s) in sels.iter().enumerate() {
        let ns = b.gate(GateKind::Not, vec![s], format!("ns{bit}"));
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (j, pair) in layer.chunks(2).enumerate() {
            let lo = b.gate(GateKind::And, vec![pair[0], ns], format!("lo{bit}_{j}"));
            let hi = b.gate(GateKind::And, vec![pair[1], s], format!("hi{bit}_{j}"));
            next.push(b.gate(GateKind::Or, vec![lo, hi], format!("m{bit}_{j}")));
        }
        layer = next;
    }
    b.output(layer[0]);
    b.finish().expect("mux construction is valid")
}

/// An `n`-bit equality comparator: output 1 iff `a == b`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn equality_comparator(n: usize) -> Circuit {
    assert!(n > 0, "comparator width must be positive");
    let mut b = CircuitBuilder::new();
    b.name(format!("eq{n}"));
    let a: Vec<GateId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<GateId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let eqs: Vec<GateId> = (0..n)
        .map(|i| b.gate(GateKind::Xnor, vec![a[i], bb[i]], format!("eq{i}")))
        .collect();
    let out = if eqs.len() == 1 {
        eqs[0]
    } else {
        b.gate(GateKind::And, eqs, "all_eq")
    };
    b.output(out);
    b.finish().expect("comparator construction is valid")
}

/// Deterministic pseudo-random input vector generator for a circuit.
///
/// Produces `Vec<bool>` assignments over `circuit.inputs()` order.
#[derive(Clone, Debug)]
pub struct VectorGen {
    rng: ChaCha8Rng,
    width: usize,
}

impl VectorGen {
    /// Creates a generator for `circuit`-width vectors.
    pub fn new(circuit: &Circuit, seed: u64) -> Self {
        VectorGen {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d),
            width: circuit.inputs().len(),
        }
    }

    /// Next pseudo-random input vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        (0..self.width).map(|_| self.rng.gen_bool(0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fanout_cone;

    #[test]
    fn random_is_deterministic() {
        let a = RandomCircuitSpec::new(6, 3, 40).seed(42).generate();
        let b = RandomCircuitSpec::new(6, 3, 40).seed(42).generate();
        assert_eq!(a, b);
        let c = RandomCircuitSpec::new(6, 3, 40).seed(43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn random_respects_profile() {
        let c = RandomCircuitSpec::new(10, 4, 100)
            .latches(5)
            .seed(1)
            .generate();
        assert_eq!(c.inputs().len(), 15);
        assert!(c.outputs().len() >= 9, "outputs: {}", c.outputs().len());
        assert!(c.num_functional_gates() >= 100);
        assert_eq!(c.latches().len(), 5);
    }

    #[test]
    fn random_has_no_dead_logic() {
        let c = RandomCircuitSpec::new(8, 3, 120).seed(9).generate();
        // every functional gate reaches at least one output
        let mut reach = crate::analysis::GateSet::new(c.len());
        for &o in c.outputs() {
            let cone = crate::analysis::fanin_cone(&c, &[o]);
            reach.union_with(&cone);
        }
        for (id, g) in c.iter() {
            if !g.kind().is_source() {
                assert!(reach.contains(id), "dead gate {id}");
            }
        }
    }

    #[test]
    fn random_inputs_feed_something() {
        let c = RandomCircuitSpec::new(8, 3, 120).seed(11).generate();
        for &pi in c.inputs() {
            let cone = fanout_cone(&c, &[pi]);
            // At least itself plus usually some fanout; inputs may rarely be
            // dangling if the RNG never picked them, but the generator biases
            // against it. Tolerate sinks only for latch queues.
            assert!(!cone.is_empty());
        }
    }

    #[test]
    fn profiles_match_iscas_counts() {
        let c = s1423_like(3);
        assert_eq!(c.inputs().len(), 17 + 74);
        assert!(c.outputs().len() >= 5 + 74);
        assert!(c.num_functional_gates() >= 657);
        assert_eq!(c.latches().len(), 74);
    }

    #[test]
    fn c17_structure() {
        let c = c17();
        assert_eq!(c.num_functional_gates(), 6);
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn adder_counts() {
        let c = ripple_carry_adder(4);
        assert_eq!(c.inputs().len(), 9);
        assert_eq!(c.outputs().len(), 5);
        assert_eq!(c.num_functional_gates(), 4 * 5);
    }

    #[test]
    fn parity_counts() {
        let c = parity_tree(8);
        assert_eq!(c.inputs().len(), 8);
        assert_eq!(c.num_functional_gates(), 7);
        assert_eq!(c.depth(), 3);
        let c3 = parity_tree(3);
        assert_eq!(c3.num_functional_gates(), 2);
    }

    #[test]
    fn mux_counts() {
        let c = mux_tree(2);
        assert_eq!(c.inputs().len(), 6);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn comparator_counts() {
        let c = equality_comparator(3);
        assert_eq!(c.inputs().len(), 6);
        assert_eq!(c.num_functional_gates(), 4);
    }

    #[test]
    fn vector_gen_deterministic() {
        let c = c17();
        let mut g1 = VectorGen::new(&c, 5);
        let mut g2 = VectorGen::new(&c, 5);
        assert_eq!(g1.next_vector(), g2.next_vector());
        assert_eq!(g1.next_vector().len(), 5);
    }
}
