//! Gate primitives: identifiers, gate kinds and their Boolean semantics.

use std::fmt;

/// Index of a gate inside a [`Circuit`](crate::Circuit).
///
/// `GateId`s are dense (`0..circuit.len()`) and stable: structural analyses,
/// simulators and diagnosis engines all use them as direct array indices.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::GateId;
/// let g = GateId::new(3);
/// assert_eq!(g.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates a gate id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        GateId(index as u32)
    }

    /// Returns the dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The Boolean function computed by a gate.
///
/// `Input` marks primary inputs (including pseudo-primary inputs created for
/// flip-flop outputs when a sequential `.bench` netlist is combinationalised).
/// `Const0`/`Const1` are constant drivers. All other kinds are the standard
/// ISCAS gate library; `And`/`Nand`/`Or`/`Nor`/`Xor`/`Xnor` accept two or more
/// fan-ins, `Not`/`Buf` exactly one.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::GateKind;
/// assert_eq!(GateKind::And.eval_bool([true, false]), false);
/// assert_eq!(GateKind::Nand.controlling_value(), Some(false));
/// assert!(GateKind::Xor.controlling_value().is_none());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GateKind {
    /// Primary input (no fan-ins).
    Input,
    /// Constant 0 driver (no fan-ins).
    Const0,
    /// Constant 1 driver (no fan-ins).
    Const1,
    /// Logical conjunction.
    And,
    /// Negated conjunction.
    Nand,
    /// Logical disjunction.
    Or,
    /// Negated disjunction.
    Nor,
    /// Parity (odd number of true fan-ins).
    Xor,
    /// Negated parity.
    Xnor,
    /// Inverter (single fan-in).
    Not,
    /// Buffer (single fan-in).
    Buf,
}

impl GateKind {
    /// All gate kinds that compute a function of at least one fan-in.
    pub const FUNCTIONAL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Gate kinds admissible for a gate with `arity` fan-ins.
    ///
    /// Used by the error injector: a "gate change" error replaces a gate's
    /// function with a different function of the same fan-ins.
    pub fn compatible_with_arity(arity: usize) -> &'static [GateKind] {
        match arity {
            0 => &[GateKind::Const0, GateKind::Const1],
            1 => &[GateKind::Not, GateKind::Buf],
            n if n >= 2 => &[
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ],
            _ => &[],
        }
    }

    /// Returns `true` if this kind denotes a source node (no fan-ins).
    #[inline]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// The fan-in count this kind requires, if fixed.
    ///
    /// Returns `None` for the n-ary kinds (`And`, `Or`, `Xor`, and their
    /// complements) which accept any arity of two or more.
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Not | GateKind::Buf => Some(1),
            _ => None,
        }
    }

    /// Checks whether `arity` fan-ins are legal for this kind.
    pub fn arity_ok(self, arity: usize) -> bool {
        match self.fixed_arity() {
            Some(a) => a == arity,
            None => arity >= 2,
        }
    }

    /// The controlling input value of the gate, if any.
    ///
    /// An input at its controlling value determines the gate output
    /// regardless of the other inputs (e.g. a 0 on an AND). Path tracing
    /// ([`Fig. 1` of the paper]) branches on this notion. Parity gates and
    /// single-input gates have no controlling value.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts its "base" function (`Nand`, `Nor`, `Xnor`,
    /// `Not`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluates the gate over `bool` fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if called on a source kind (`Input`) — sources have no
    /// function to evaluate — or if the iterator arity is illegal in debug
    /// builds.
    pub fn eval_bool<I>(self, inputs: I) -> bool
    where
        I: IntoIterator<Item = bool>,
    {
        let mut it = inputs.into_iter();
        match self {
            GateKind::Input => panic!("cannot evaluate a primary input"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::And => it.all(|b| b),
            GateKind::Nand => !it.all(|b| b),
            GateKind::Or => it.any(|b| b),
            GateKind::Nor => !it.any(|b| b),
            GateKind::Xor => it.fold(false, |acc, b| acc ^ b),
            GateKind::Xnor => !it.fold(false, |acc, b| acc ^ b),
            GateKind::Not => !it.next().expect("NOT requires one fan-in"),
            GateKind::Buf => it.next().expect("BUF requires one fan-in"),
        }
    }

    /// Evaluates the gate bit-parallel over 64-pattern words.
    ///
    /// Each bit position is an independent simulation pattern; this is the
    /// kernel of the [parallel simulator](../gatediag_sim/index.html).
    ///
    /// # Panics
    ///
    /// Panics if called on a source kind (`Input`).
    pub fn eval_word<I>(self, inputs: I) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut it = inputs.into_iter();
        match self {
            GateKind::Input => panic!("cannot evaluate a primary input"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::And => it.fold(!0u64, |acc, w| acc & w),
            GateKind::Nand => !it.fold(!0u64, |acc, w| acc & w),
            GateKind::Or => it.fold(0u64, |acc, w| acc | w),
            GateKind::Nor => !it.fold(0u64, |acc, w| acc | w),
            GateKind::Xor => it.fold(0u64, |acc, w| acc ^ w),
            GateKind::Xnor => !it.fold(0u64, |acc, w| acc ^ w),
            GateKind::Not => !it.next().expect("NOT requires one fan-in"),
            GateKind::Buf => it.next().expect("BUF requires one fan-in"),
        }
    }

    /// The canonical `.bench` spelling of the kind (`AND`, `NOT`, …).
    ///
    /// Source kinds have no `.bench` operator; they return a descriptive
    /// token that the writer never emits on the right-hand side of `=`.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }

    /// Parses a `.bench` operator token (case-insensitive).
    ///
    /// `DFF` is not a [`GateKind`]; the parser handles it separately by
    /// splitting it into a pseudo-input / pseudo-output pair.
    pub fn from_bench_name(token: &str) -> Option<GateKind> {
        let t = token.to_ascii_uppercase();
        Some(match t.as_str() {
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "CONST0" | "GND" => GateKind::Const0,
            "CONST1" | "VDD" => GateKind::Const1,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// A borrowed view of a single gate: its kind plus its fan-in slice.
///
/// Since the CSR flattening of [`Circuit`](crate::Circuit), gates are no
/// longer stored as individual objects; the circuit keeps one contiguous
/// kind array and one flat fan-in buffer with per-gate offsets, and
/// `Gate` is a cheap `Copy` view into those arrays. The view keeps the
/// pre-CSR call sites (`gate.kind()`, `gate.fanins()`, `gate.arity()`)
/// source-compatible while the storage underneath is pointer-chase-free.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Gate<'a> {
    kind: GateKind,
    fanins: &'a [GateId],
}

impl<'a> Gate<'a> {
    /// Creates a view over a kind and a fan-in slice. Arity legality is
    /// checked by the circuit builder, not here.
    #[inline]
    pub fn new(kind: GateKind, fanins: &'a [GateId]) -> Gate<'a> {
        Gate { kind, fanins }
    }

    /// The gate's Boolean function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fan-in gates, in declaration order.
    ///
    /// The slice borrows from the circuit's flat fan-in buffer, not from
    /// this view, so it stays usable after the view is dropped.
    #[inline]
    pub fn fanins(&self) -> &'a [GateId] {
        self.fanins
    }

    /// Number of fan-ins.
    #[inline]
    pub fn arity(&self) -> usize {
        self.fanins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bool_truth_tables() {
        use GateKind::*;
        let cases: &[(GateKind, &[bool], bool)] = &[
            (And, &[true, true], true),
            (And, &[true, false], false),
            (Nand, &[true, true], false),
            (Nand, &[false, false], true),
            (Or, &[false, false], false),
            (Or, &[false, true], true),
            (Nor, &[false, false], true),
            (Nor, &[true, false], false),
            (Xor, &[true, true], false),
            (Xor, &[true, false], true),
            (Xor, &[true, true, true], true),
            (Xnor, &[true, false], false),
            (Xnor, &[true, true, true], false),
            (Not, &[true], false),
            (Not, &[false], true),
            (Buf, &[true], true),
        ];
        for &(kind, ins, expect) in cases {
            assert_eq!(
                kind.eval_bool(ins.iter().copied()),
                expect,
                "{kind} {ins:?}"
            );
        }
    }

    #[test]
    fn eval_word_matches_eval_bool() {
        use GateKind::*;
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for a in 0..2u64 {
                for b in 0..2u64 {
                    for c in 0..2u64 {
                        let word = kind.eval_word([a * !0, b * !0, c * !0]);
                        let boolean = kind.eval_bool([a == 1, b == 1, c == 1]);
                        assert_eq!(word == !0, boolean, "{kind} {a}{b}{c}");
                        assert!(word == 0 || word == !0);
                    }
                }
            }
        }
        for kind in [Not, Buf] {
            for a in 0..2u64 {
                let word = kind.eval_word([a * !0]);
                let boolean = kind.eval_bool([a == 1]);
                assert_eq!(word == !0, boolean);
            }
        }
        assert_eq!(Const0.eval_word(std::iter::empty()), 0);
        assert_eq!(Const1.eval_word(std::iter::empty()), !0);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        for k in [GateKind::Xor, GateKind::Xnor, GateKind::Not, GateKind::Buf] {
            assert_eq!(k.controlling_value(), None);
        }
    }

    #[test]
    fn controlling_value_determines_output() {
        // If any input sits at the controlling value, the output is fixed.
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let cv = kind.controlling_value().unwrap();
            let out_with_cv = kind.eval_bool([cv, true]);
            assert_eq!(kind.eval_bool([cv, false]), out_with_cv);
            assert_eq!(kind.eval_bool([true, cv]), out_with_cv);
            assert_eq!(kind.eval_bool([false, cv]), out_with_cv);
        }
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in GateKind::FUNCTIONAL {
            assert_eq!(GateKind::from_bench_name(kind.bench_name()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_name("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::from_bench_name("DFF"), None);
        assert_eq!(GateKind::from_bench_name("bogus"), None);
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::And.arity_ok(2));
        assert!(GateKind::And.arity_ok(5));
        assert!(!GateKind::And.arity_ok(1));
        assert!(GateKind::Input.arity_ok(0));
        assert_eq!(GateKind::compatible_with_arity(1).len(), 2);
        assert_eq!(GateKind::compatible_with_arity(2).len(), 6);
        assert_eq!(GateKind::compatible_with_arity(0).len(), 2);
    }

    #[test]
    fn gate_id_display() {
        assert_eq!(format!("{}", GateId::new(7)), "g7");
        assert_eq!(format!("{:?}", GateId::new(7)), "g7");
    }
}
