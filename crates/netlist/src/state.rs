//! The explicit combinationalisation lowering of a sequential circuit.
//!
//! `.bench` flip-flops are kept *first-class* by the parser: every
//! `q = DFF(d)` is recorded as a [`Latch`](crate::Latch) pair, while the
//! stored [`Circuit`] is the classic combinationalised lowering (the
//! latch output `q` as a pseudo-primary input, the latch data `d` as a
//! pseudo-primary output). Historically every consumer re-derived which
//! inputs/outputs are "real" by scanning the latch list — an O(|I| × |L|)
//! pattern repeated in the unroller, the sequential simulator and the
//! sequential engines. [`StateView`] is that lowering made explicit,
//! computed once in O(n): membership sets for latch pseudo-I/O, the real
//! input/output lists, and the slot map needed to assemble a
//! combinational input vector from `(state, real inputs)`.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), gatediag_netlist::NetlistError> {
//! let c = gatediag_netlist::parse_bench(
//!     "INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n",
//! )?;
//! let view = gatediag_netlist::StateView::new(&c);
//! assert!(view.is_sequential());
//! assert_eq!(view.real_inputs().len(), 1); // en (q is state)
//! assert_eq!(view.real_outputs().len(), 1); // out (d is state)
//! assert_eq!(view.num_latches(), 1);
//! # Ok(())
//! # }
//! ```

use crate::circuit::Circuit;
use crate::gate::GateId;

/// Where one position of `circuit.inputs()` gets its value from when the
/// combinationalised circuit simulates one time frame.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InputSlot {
    /// A real primary input: index into [`StateView::real_inputs`].
    Real(usize),
    /// A latch output pseudo-input: index into `circuit.latches()` (the
    /// current-state slot feeding this frame).
    State(usize),
}

/// Precomputed lowering metadata for a (possibly sequential) circuit.
///
/// Construction is O(n); all queries are O(1) or return precomputed
/// slices.
#[derive(Clone, Debug)]
pub struct StateView {
    real_inputs: Vec<GateId>,
    real_outputs: Vec<GateId>,
    /// Per position of `circuit.inputs()`: where the value comes from.
    input_slots: Vec<InputSlot>,
    /// Gate index -> latch slot of its `q`, `u32::MAX` otherwise.
    latch_q_slot: Vec<u32>,
    /// Gate index -> `true` iff the gate is some latch's `d`.
    is_latch_d: Vec<bool>,
    /// The latch `d` gates, in `circuit.latches()` order.
    latch_d: Vec<GateId>,
    num_latches: usize,
}

impl StateView {
    /// Computes the lowering view of `circuit` in O(n).
    pub fn new(circuit: &Circuit) -> StateView {
        let n = circuit.len();
        let mut latch_q_slot = vec![u32::MAX; n];
        let mut is_latch_d = vec![false; n];
        let mut latch_d = Vec::with_capacity(circuit.latches().len());
        for (slot, latch) in circuit.latches().iter().enumerate() {
            latch_q_slot[latch.q.index()] = slot as u32;
            is_latch_d[latch.d.index()] = true;
            latch_d.push(latch.d);
        }
        let mut real_inputs = Vec::new();
        let mut input_slots = Vec::with_capacity(circuit.inputs().len());
        for &pi in circuit.inputs() {
            let slot = latch_q_slot[pi.index()];
            if slot == u32::MAX {
                input_slots.push(InputSlot::Real(real_inputs.len()));
                real_inputs.push(pi);
            } else {
                input_slots.push(InputSlot::State(slot as usize));
            }
        }
        let real_outputs = circuit
            .outputs()
            .iter()
            .copied()
            .filter(|o| !is_latch_d[o.index()])
            .collect();
        StateView {
            real_inputs,
            real_outputs,
            input_slots,
            latch_q_slot,
            is_latch_d,
            latch_d,
            num_latches: circuit.latches().len(),
        }
    }

    /// `true` iff the circuit has at least one latch.
    pub fn is_sequential(&self) -> bool {
        self.num_latches > 0
    }

    /// Number of latches (the state width).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// The real primary inputs (excluding latch `q` pseudo-inputs), in
    /// `circuit.inputs()` order.
    pub fn real_inputs(&self) -> &[GateId] {
        &self.real_inputs
    }

    /// The real primary outputs (excluding latch `d` pseudo-outputs), in
    /// `circuit.outputs()` order.
    pub fn real_outputs(&self) -> &[GateId] {
        &self.real_outputs
    }

    /// The latch `d` (next-state) gates, in `circuit.latches()` order.
    pub fn latch_d(&self) -> &[GateId] {
        &self.latch_d
    }

    /// One [`InputSlot`] per position of `circuit.inputs()`.
    pub fn input_slots(&self) -> &[InputSlot] {
        &self.input_slots
    }

    /// The latch slot of gate `g` if it is some latch's `q`.
    pub fn latch_slot_of(&self, g: GateId) -> Option<usize> {
        match self.latch_q_slot[g.index()] {
            u32::MAX => None,
            slot => Some(slot as usize),
        }
    }

    /// `true` iff `g` is some latch's `d` (a pseudo-primary output).
    pub fn is_latch_d(&self, g: GateId) -> bool {
        self.is_latch_d[g.index()]
    }

    /// Assembles the combinational input vector for one time frame from
    /// the current `state` (in `circuit.latches()` order) and the real
    /// input values `reals` (in [`StateView::real_inputs`] order), in
    /// `circuit.inputs()` order.
    ///
    /// # Panics
    ///
    /// Panics if either slice has the wrong width.
    pub fn assemble_frame_inputs(&self, state: &[bool], reals: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.num_latches, "state width mismatch");
        assert_eq!(
            reals.len(),
            self.real_inputs.len(),
            "real input width mismatch"
        );
        self.input_slots
            .iter()
            .map(|slot| match *slot {
                InputSlot::Real(r) => reals[r],
                InputSlot::State(s) => state[s],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;
    use crate::generate::RandomCircuitSpec;

    fn toggle() -> Circuit {
        parse_bench("INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n").unwrap()
    }

    #[test]
    fn combinational_circuit_has_trivial_view() {
        let c = crate::generate::c17();
        let view = StateView::new(&c);
        assert!(!view.is_sequential());
        assert_eq!(view.real_inputs(), c.inputs());
        assert_eq!(view.real_outputs(), c.outputs());
        assert_eq!(view.num_latches(), 0);
        for (i, slot) in view.input_slots().iter().enumerate() {
            assert_eq!(*slot, InputSlot::Real(i));
        }
    }

    #[test]
    fn latch_pseudo_io_is_excluded_from_real_io() {
        let c = toggle();
        let view = StateView::new(&c);
        let en = c.find("en").unwrap();
        let q = c.find("q").unwrap();
        let d = c.find("d").unwrap();
        let out = c.find("out").unwrap();
        assert_eq!(view.real_inputs(), &[en]);
        assert_eq!(view.real_outputs(), &[out]);
        assert_eq!(view.latch_slot_of(q), Some(0));
        assert_eq!(view.latch_slot_of(en), None);
        assert!(view.is_latch_d(d));
        assert!(!view.is_latch_d(out));
        assert_eq!(view.latch_d(), &[d]);
    }

    #[test]
    fn assemble_frame_inputs_respects_slot_map() {
        let c = toggle();
        let view = StateView::new(&c);
        let full = view.assemble_frame_inputs(&[true], &[false]);
        assert_eq!(full.len(), c.inputs().len());
        for (pos, &pi) in c.inputs().iter().enumerate() {
            if view.latch_slot_of(pi).is_some() {
                assert!(full[pos], "state slot must carry the state bit");
            } else {
                assert!(!full[pos], "real slot must carry the real bit");
            }
        }
    }

    #[test]
    fn view_matches_filtering_on_random_sequential_circuits() {
        for seed in 0..4 {
            let c = RandomCircuitSpec::new(6, 3, 40)
                .latches(4)
                .seed(seed)
                .generate();
            let view = StateView::new(&c);
            assert_eq!(view.num_latches(), c.latches().len());
            let latch_q: Vec<GateId> = c.latches().iter().map(|l| l.q).collect();
            let expect_reals: Vec<GateId> = c
                .inputs()
                .iter()
                .copied()
                .filter(|pi| !latch_q.contains(pi))
                .collect();
            assert_eq!(view.real_inputs(), expect_reals.as_slice());
            let latch_d: Vec<GateId> = c.latches().iter().map(|l| l.d).collect();
            let expect_outs: Vec<GateId> = c
                .outputs()
                .iter()
                .copied()
                .filter(|o| !latch_d.contains(o))
                .collect();
            assert_eq!(view.real_outputs(), expect_outs.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn assemble_rejects_wrong_state_width() {
        let c = toggle();
        StateView::new(&c).assemble_frame_inputs(&[], &[true]);
    }
}
