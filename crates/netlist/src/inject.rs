//! Design-error injection: the paper's gate-change model plus the wider
//! fault-model family used by campaign-style experiments.
//!
//! The paper's experiments inject "1-4 gate change errors": the function of
//! a gate is replaced by a different Boolean function over the same fan-ins.
//! [`inject_errors`] reproduces that model deterministically from a seed.
//!
//! Experiment campaigns additionally need the other classic gate-level
//! design-error models (Abadir et al.'s taxonomy): stuck-at ties,
//! wrong-input-connection errors and extra inverters. [`inject_faults`]
//! generalises [`inject_errors`] into one seeded entry point over the
//! [`FaultModel`] enum; every model keeps the primary input/output shape of
//! the golden circuit, so failing-test generation and the validity oracles
//! work unchanged on the faulty circuit.

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A single injected error: gate `gate` had its function changed from
/// `original` to `replacement`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ErrorSite {
    /// The mutated gate.
    pub gate: GateId,
    /// The gate's correct function.
    pub original: GateKind,
    /// The injected (faulty) function.
    pub replacement: GateKind,
}

/// Injects `count` gate-change errors into distinct functional gates.
///
/// Returns the faulty circuit together with the injected [`ErrorSite`]s.
/// The replacement kind always differs from the original and has the same
/// arity. Injection is deterministic in `seed`.
///
/// Note that an injected error is not guaranteed to be *detectable* (a
/// redundant gate may mask it); callers that need failing tests should use a
/// test generator that checks observability (see `gatediag-core`'s
/// `testgen`).
///
/// # Panics
///
/// Panics if the circuit has fewer than `count` functional gates.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_errors};
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 2, 7);
/// assert_eq!(sites.len(), 2);
/// for site in &sites {
///     assert_eq!(faulty.gate(site.gate).kind(), site.replacement);
///     assert_eq!(golden.gate(site.gate).kind(), site.original);
/// }
/// ```
pub fn inject_errors(circuit: &Circuit, count: usize, seed: u64) -> (Circuit, Vec<ErrorSite>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let candidates: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect();
    assert!(
        candidates.len() >= count,
        "cannot inject {count} errors into {} functional gates",
        candidates.len()
    );
    let chosen: Vec<GateId> = candidates
        .choose_multiple(&mut rng, count)
        .copied()
        .collect();

    let mut faulty = circuit.clone();
    let mut sites = Vec::with_capacity(count);
    for gate in chosen {
        let original = circuit.gate(gate).kind();
        let pool: Vec<GateKind> = GateKind::compatible_with_arity(circuit.gate(gate).arity())
            .iter()
            .copied()
            .filter(|&k| k != original)
            .collect();
        let replacement = *pool
            .choose(&mut rng)
            .expect("every functional arity has at least one alternative kind");
        faulty = faulty.with_gate_kind(gate, replacement);
        sites.push(ErrorSite {
            gate,
            original,
            replacement,
        });
    }
    (faulty, sites)
}

/// Injects a stuck-at fault: gate `gate`'s output is tied to `value`.
///
/// This is the production-test fault model the paper's introduction
/// mentions alongside design errors. Unlike [`inject_errors`] the gate's
/// fan-ins are disconnected (the gate becomes a constant driver), so the
/// circuit is rebuilt; gate ids and names are preserved.
///
/// # Panics
///
/// Panics if `gate` is a source gate.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_stuck_at};
/// let golden = c17();
/// let g = golden.find("G16").unwrap();
/// let faulty = inject_stuck_at(&golden, g, true);
/// assert_eq!(faulty.gate(g).kind(), gatediag_netlist::GateKind::Const1);
/// ```
pub fn inject_stuck_at(circuit: &Circuit, gate: GateId, value: bool) -> Circuit {
    assert!(
        !circuit.gate(gate).kind().is_source(),
        "cannot tie source gate {gate}"
    );
    tie_gates(circuit, &[(gate, value)])
}

/// Rebuilds `circuit` with every gate in `ties` replaced by a constant
/// driver. Gate ids, names, outputs and latches are preserved.
fn tie_gates(circuit: &Circuit, ties: &[(GateId, bool)]) -> Circuit {
    let mut b = CircuitBuilder::new();
    b.name(circuit.name());
    for (id, g) in circuit.iter() {
        let name = circuit
            .gate_name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", id.index()));
        if g.kind() == GateKind::Input {
            b.input(name);
        } else if let Some(&(_, value)) = ties.iter().find(|&&(t, _)| t == id) {
            let kind = if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            };
            b.gate(kind, Vec::new(), name);
        } else {
            b.gate(g.kind(), g.fanins().to_vec(), name);
        }
    }
    for &o in circuit.outputs() {
        b.output(o);
    }
    for l in circuit.latches() {
        b.latch(l.q, l.d);
    }
    b.finish().expect("tying a gate keeps the netlist valid")
}

/// The gate-level design-error models available to [`inject_faults`].
///
/// All four keep the circuit's primary input/output shape, so a faulty
/// circuit can be diagnosed against its golden original with the standard
/// failing-test and validity machinery. The error *site* of every fault is
/// the gate whose function (seen from its output) is wrong — freeing that
/// gate is always a valid correction, whichever model produced the fault.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FaultModel {
    /// The paper's model: a gate's Boolean function is replaced by a
    /// different function over the same fan-ins ([`inject_errors`]).
    GateChange,
    /// A gate's output is tied to a constant 0 or 1 (the production-test
    /// fault model; see [`inject_stuck_at`]).
    StuckAt,
    /// A wrong-input-connection error: one fan-in of a gate is reconnected
    /// to a different signal (acyclicity is preserved).
    InputSwap,
    /// An extra inverter is inserted on one fan-in connection of a gate.
    /// The faulty circuit grows by one `NOT` gate per fault; original gate
    /// ids are preserved.
    ExtraInverter,
}

impl FaultModel {
    /// All fault models, in a stable order.
    pub const ALL: [FaultModel; 4] = [
        FaultModel::GateChange,
        FaultModel::StuckAt,
        FaultModel::InputSwap,
        FaultModel::ExtraInverter,
    ];

    /// The canonical CLI spelling of the model.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::GateChange => "gate-change",
            FaultModel::StuckAt => "stuck-at",
            FaultModel::InputSwap => "input-swap",
            FaultModel::ExtraInverter => "extra-inverter",
        }
    }

    /// Parses a CLI spelling (case-insensitive; `_` and `-` are
    /// interchangeable).
    pub fn parse(text: &str) -> Option<FaultModel> {
        let t = text.to_ascii_lowercase().replace('_', "-");
        FaultModel::ALL.into_iter().find(|m| m.name() == t)
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What exactly an injected fault changed (model-specific detail).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Gate function substituted ([`FaultModel::GateChange`]).
    GateChange {
        /// The gate's correct function.
        original: GateKind,
        /// The injected (faulty) function.
        replacement: GateKind,
    },
    /// Output tied to a constant ([`FaultModel::StuckAt`]).
    StuckAt {
        /// The tied value.
        value: bool,
    },
    /// Fan-in reconnected to a different driver ([`FaultModel::InputSwap`]).
    InputSwap {
        /// Which fan-in position was rewired.
        position: usize,
        /// The correct driver.
        old_driver: GateId,
        /// The wrong driver it was reconnected to.
        new_driver: GateId,
    },
    /// Inverter inserted on a fan-in connection
    /// ([`FaultModel::ExtraInverter`]).
    ExtraInverter {
        /// Which fan-in position gained the inverter.
        position: usize,
        /// The id of the inserted `NOT` gate in the faulty circuit.
        inverter: GateId,
    },
}

/// One injected fault: the error site plus the model-specific detail.
///
/// `gate` is the gate whose function is wrong in the faulty circuit —
/// the reference "error site" quality metrics measure distances to.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fault {
    /// The error site.
    pub gate: GateId,
    /// What changed at the site.
    pub kind: FaultKind,
}

/// Injects `count` faults of the given model into distinct gates,
/// deterministically from `seed`.
///
/// Like [`inject_errors`], detectability is not guaranteed; callers that
/// need failing tests should generate them with an observability check.
/// The same `(model, count, seed)` triple always produces the same faulty
/// circuit; for [`FaultModel::GateChange`] the result is bit-identical to
/// [`inject_errors`] with the same `count` and `seed`.
///
/// # Panics
///
/// Panics if the circuit has fewer than `count` gates eligible for the
/// model (see [`try_inject_faults`] for a non-panicking variant).
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_faults, FaultModel};
/// let golden = c17();
/// for model in FaultModel::ALL {
///     let (faulty, faults) = inject_faults(&golden, model, 1, 5);
///     assert_eq!(faults.len(), 1);
///     assert_eq!(faulty.inputs().len(), golden.inputs().len());
///     assert_eq!(faulty.outputs().len(), golden.outputs().len());
/// }
/// ```
pub fn inject_faults(
    circuit: &Circuit,
    model: FaultModel,
    count: usize,
    seed: u64,
) -> (Circuit, Vec<Fault>) {
    try_inject_faults(circuit, model, count, seed)
        .unwrap_or_else(|| panic!("cannot inject {count} {model} faults: too few eligible gates"))
}

/// [`inject_faults`], returning `None` instead of panicking when the
/// circuit has fewer than `count` eligible sites for the model.
pub fn try_inject_faults(
    circuit: &Circuit,
    model: FaultModel,
    count: usize,
    seed: u64,
) -> Option<(Circuit, Vec<Fault>)> {
    match model {
        FaultModel::GateChange => {
            if functional_gates(circuit).len() < count {
                return None;
            }
            let (faulty, sites) = inject_errors(circuit, count, seed);
            let faults = sites
                .into_iter()
                .map(|s| Fault {
                    gate: s.gate,
                    kind: FaultKind::GateChange {
                        original: s.original,
                        replacement: s.replacement,
                    },
                })
                .collect();
            Some((faulty, faults))
        }
        FaultModel::StuckAt => inject_stuck_ats(circuit, count, seed),
        FaultModel::InputSwap => inject_input_swaps(circuit, count, seed),
        FaultModel::ExtraInverter => inject_extra_inverters(circuit, count, seed),
    }
}

/// Non-source gates, the site pool shared by all models.
fn functional_gates(circuit: &Circuit) -> Vec<GateId> {
    circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect()
}

fn inject_stuck_ats(circuit: &Circuit, count: usize, seed: u64) -> Option<(Circuit, Vec<Fault>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5bd1_e995_7b79_f2a1);
    let candidates = functional_gates(circuit);
    if candidates.len() < count {
        return None;
    }
    let chosen: Vec<GateId> = candidates
        .choose_multiple(&mut rng, count)
        .copied()
        .collect();
    let ties: Vec<(GateId, bool)> = chosen.iter().map(|&g| (g, rng.gen_bool(0.5))).collect();
    let faulty = tie_gates(circuit, &ties);
    let faults = ties
        .into_iter()
        .map(|(gate, value)| Fault {
            gate,
            kind: FaultKind::StuckAt { value },
        })
        .collect();
    Some((faulty, faults))
}

fn inject_input_swaps(circuit: &Circuit, count: usize, seed: u64) -> Option<(Circuit, Vec<Fault>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x27d4_eb2f_1656_67c5);
    // Random order over the whole pool, then take the first `count` gates
    // that admit a legal rewiring — a gate with no legal wrong driver
    // (e.g. everything else is in its fan-out cone) is skipped.
    let pool = functional_gates(circuit);
    let visit: Vec<GateId> = pool
        .choose_multiple(&mut rng, pool.len())
        .copied()
        .collect();
    // Effective fan-in lists, updated as rewires are committed: each
    // fault's acyclicity check must run against the *partially rewired*
    // graph, not the original — two individually legal rewires can
    // otherwise jointly close a cycle (A rewired to B, then B to A).
    let mut current: Vec<Vec<GateId>> = (0..circuit.len())
        .map(|i| circuit.gate(GateId::new(i)).fanins().to_vec())
        .collect();
    // Gates reachable from `gate` along fan-out edges of the current
    // graph (including `gate` itself) — the forbidden wrong-driver set.
    let reaches = |current: &[Vec<GateId>], gate: GateId| -> Vec<bool> {
        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); current.len()];
        for (i, fanins) in current.iter().enumerate() {
            for &f in fanins {
                fanouts[f.index()].push(GateId::new(i));
            }
        }
        let mut seen = vec![false; current.len()];
        let mut stack = vec![gate];
        seen[gate.index()] = true;
        while let Some(id) = stack.pop() {
            for &succ in &fanouts[id.index()] {
                if !seen[succ.index()] {
                    seen[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        seen
    };
    let mut faults: Vec<Fault> = Vec::with_capacity(count);
    for &gate in &visit {
        if faults.len() == count {
            break;
        }
        let fanins = current[gate.index()].clone();
        if fanins.is_empty() {
            continue;
        }
        let position = rng.gen_range(0..fanins.len());
        // A legal wrong driver keeps the DAG acyclic (it must not be
        // reachable from the gate in the current graph, which also
        // excludes the gate itself) and actually changes the connection
        // (not already a fan-in).
        let cone = reaches(&current, gate);
        let legal: Vec<GateId> = (0..circuit.len())
            .map(GateId::new)
            .filter(|&d| !cone[d.index()] && !fanins.contains(&d))
            .collect();
        let Some(&new_driver) = legal.choose(&mut rng) else {
            continue;
        };
        faults.push(Fault {
            gate,
            kind: FaultKind::InputSwap {
                position,
                old_driver: fanins[position],
                new_driver,
            },
        });
        current[gate.index()][position] = new_driver;
    }
    if faults.len() < count {
        return None;
    }
    // Rebuild with the rewired fan-ins; ids, names, outputs and latches
    // are preserved.
    let mut b = CircuitBuilder::new();
    b.name(circuit.name());
    for (id, g) in circuit.iter() {
        let name = circuit
            .gate_name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", id.index()));
        if g.kind() == GateKind::Input {
            b.input(name);
        } else {
            b.gate(g.kind(), current[id.index()].clone(), name);
        }
    }
    for &o in circuit.outputs() {
        b.output(o);
    }
    for l in circuit.latches() {
        b.latch(l.q, l.d);
    }
    let faulty = b
        .finish()
        .expect("rewiring outside the fan-out cone keeps the DAG acyclic");
    Some((faulty, faults))
}

fn inject_extra_inverters(
    circuit: &Circuit,
    count: usize,
    seed: u64,
) -> Option<(Circuit, Vec<Fault>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1f83_d9ab_fb41_bd6b);
    let candidates: Vec<GateId> = functional_gates(circuit)
        .into_iter()
        .filter(|&g| !circuit.gate(g).fanins().is_empty())
        .collect();
    if candidates.len() < count {
        return None;
    }
    let chosen: Vec<GateId> = candidates
        .choose_multiple(&mut rng, count)
        .copied()
        .collect();
    let picks: Vec<(GateId, usize)> = chosen
        .iter()
        .map(|&g| (g, rng.gen_range(0..circuit.gate(g).fanins().len())))
        .collect();
    // Rebuild all original gates first (their ids are preserved), then
    // append one NOT per fault and rewire the chosen fan-in to it.
    let mut b = CircuitBuilder::new();
    b.name(circuit.name());
    for (id, g) in circuit.iter() {
        let name = circuit
            .gate_name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", id.index()));
        if g.kind() == GateKind::Input {
            b.input(name);
        } else {
            b.gate(g.kind(), g.fanins().to_vec(), name);
        }
    }
    let mut faults = Vec::with_capacity(count);
    for (i, &(gate, position)) in picks.iter().enumerate() {
        let old_driver = circuit.gate(gate).fanins()[position];
        let mut name = format!("_fault_inv{i}");
        while b.find(&name).is_some() {
            name.push('_');
        }
        let inverter = b.gate(GateKind::Not, vec![old_driver], name);
        let mut fanins = circuit.gate(gate).fanins().to_vec();
        fanins[position] = inverter;
        b.set_fanins(gate, fanins);
        faults.push(Fault {
            gate,
            kind: FaultKind::ExtraInverter { position, inverter },
        });
    }
    for &o in circuit.outputs() {
        b.output(o);
    }
    for l in circuit.latches() {
        b.latch(l.q, l.d);
    }
    let faulty = b
        .finish()
        .expect("inserting an inverter on an edge keeps the DAG acyclic");
    Some((faulty, faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{c17, ripple_carry_adder};

    #[test]
    fn injects_requested_count() {
        let golden = ripple_carry_adder(4);
        for p in 1..=4 {
            let (faulty, sites) = inject_errors(&golden, p, 11);
            assert_eq!(sites.len(), p);
            let distinct: std::collections::HashSet<_> = sites.iter().map(|s| s.gate).collect();
            assert_eq!(distinct.len(), p, "error sites must be distinct");
            for s in &sites {
                assert_ne!(s.original, s.replacement);
                assert_eq!(faulty.gate(s.gate).kind(), s.replacement);
                assert_eq!(
                    faulty.gate(s.gate).fanins(),
                    golden.gate(s.gate).fanins(),
                    "gate-change errors keep connectivity"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let golden = c17();
        let (f1, s1) = inject_errors(&golden, 2, 3);
        let (f2, s2) = inject_errors(&golden, 2, 3);
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        let (_, s3) = inject_errors(&golden, 2, 4);
        assert_ne!(s1, s3);
    }

    #[test]
    fn untouched_gates_unchanged() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 5);
        let mutated = sites[0].gate;
        for (id, g) in golden.iter() {
            if id != mutated {
                assert_eq!(faulty.gate(id).kind(), g.kind());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn panics_when_too_many() {
        let golden = c17();
        let _ = inject_errors(&golden, 7, 0);
    }

    #[test]
    fn stuck_at_ties_the_gate() {
        let golden = c17();
        let g = golden.find("G16").unwrap();
        for value in [false, true] {
            let faulty = inject_stuck_at(&golden, g, value);
            assert_eq!(faulty.len(), golden.len());
            assert_eq!(
                faulty.gate(g).kind(),
                if value {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                }
            );
            assert!(faulty.gate(g).fanins().is_empty());
            // names and outputs preserved
            assert_eq!(faulty.find("G16"), Some(g));
            assert_eq!(faulty.outputs(), golden.outputs());
        }
    }

    #[test]
    #[should_panic(expected = "cannot tie source")]
    fn stuck_at_rejects_inputs() {
        let golden = c17();
        let _ = inject_stuck_at(&golden, golden.inputs()[0], true);
    }

    #[test]
    fn fault_model_parsing_round_trips() {
        for model in FaultModel::ALL {
            assert_eq!(FaultModel::parse(model.name()), Some(model));
            assert_eq!(FaultModel::parse(&model.name().to_uppercase()), Some(model));
        }
        assert_eq!(FaultModel::parse("stuck_at"), Some(FaultModel::StuckAt));
        assert_eq!(FaultModel::parse("bogus"), None);
    }

    #[test]
    fn all_models_inject_deterministically() {
        let golden = ripple_carry_adder(4);
        for model in FaultModel::ALL {
            for count in 1..=3usize {
                let (f1, s1) = inject_faults(&golden, model, count, 17);
                let (f2, s2) = inject_faults(&golden, model, count, 17);
                assert_eq!(s1, s2, "{model} x{count} not deterministic");
                assert_eq!(f1, f2, "{model} x{count} circuit not deterministic");
                assert_eq!(s1.len(), count);
                let distinct: std::collections::HashSet<_> = s1.iter().map(|s| s.gate).collect();
                assert_eq!(distinct.len(), count, "{model}: sites must be distinct");
                // I/O shape is preserved by every model.
                assert_eq!(f1.inputs(), golden.inputs());
                assert_eq!(f1.outputs(), golden.outputs());
            }
        }
    }

    #[test]
    fn gate_change_model_matches_inject_errors() {
        let golden = c17();
        let (f1, s1) = inject_errors(&golden, 2, 3);
        let (f2, s2) = inject_faults(&golden, FaultModel::GateChange, 2, 3);
        assert_eq!(f1, f2);
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.gate, b.gate);
            assert_eq!(
                b.kind,
                FaultKind::GateChange {
                    original: a.original,
                    replacement: a.replacement
                }
            );
        }
    }

    #[test]
    fn stuck_at_model_ties_sites() {
        let golden = ripple_carry_adder(4);
        let (faulty, faults) = inject_faults(&golden, FaultModel::StuckAt, 3, 7);
        for f in &faults {
            let FaultKind::StuckAt { value } = f.kind else {
                panic!("wrong kind");
            };
            let kind = faulty.gate(f.gate).kind();
            assert_eq!(
                kind,
                if value {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                }
            );
            assert!(faulty.gate(f.gate).fanins().is_empty());
        }
        assert_eq!(faulty.len(), golden.len());
    }

    #[test]
    fn input_swap_model_rewires_one_connection() {
        let golden = ripple_carry_adder(4);
        let (faulty, faults) = inject_faults(&golden, FaultModel::InputSwap, 2, 5);
        assert_eq!(faulty.len(), golden.len());
        for f in &faults {
            let FaultKind::InputSwap {
                position,
                old_driver,
                new_driver,
            } = f.kind
            else {
                panic!("wrong kind");
            };
            assert_ne!(old_driver, new_driver);
            assert_eq!(golden.gate(f.gate).fanins()[position], old_driver);
            assert_eq!(faulty.gate(f.gate).fanins()[position], new_driver);
            assert_eq!(faulty.gate(f.gate).kind(), golden.gate(f.gate).kind());
            // The wrong driver must not have created a cycle: the faulty
            // circuit built successfully, but also check reachability.
            assert!(!crate::analysis::fanout_cone(&golden, &[f.gate]).contains(new_driver));
        }
    }

    #[test]
    fn extra_inverter_model_inserts_nots() {
        let golden = c17();
        let (faulty, faults) = inject_faults(&golden, FaultModel::ExtraInverter, 2, 9);
        assert_eq!(faulty.len(), golden.len() + 2);
        for f in &faults {
            let FaultKind::ExtraInverter { position, inverter } = f.kind else {
                panic!("wrong kind");
            };
            assert_eq!(faulty.gate(inverter).kind(), GateKind::Not);
            assert_eq!(faulty.gate(f.gate).fanins()[position], inverter);
            assert_eq!(
                faulty.gate(inverter).fanins(),
                &[golden.gate(f.gate).fanins()[position]]
            );
            // Original gate ids are preserved.
            assert_eq!(faulty.gate(f.gate).kind(), golden.gate(f.gate).kind());
        }
    }

    #[test]
    fn input_swaps_never_jointly_close_a_cycle() {
        // Regression: with the cone computed against the *original*
        // circuit, two individually legal rewires could jointly create a
        // cycle (seed 10 / count 3 on rca4 used to panic in finish()).
        let golden = ripple_carry_adder(4);
        for seed in 0..64u64 {
            for count in 1..=3usize {
                if let Some((faulty, faults)) =
                    try_inject_faults(&golden, FaultModel::InputSwap, count, seed)
                {
                    assert_eq!(faults.len(), count);
                    // finish() validated acyclicity; also check the
                    // recorded rewires match the faulty circuit.
                    for f in &faults {
                        let FaultKind::InputSwap {
                            position,
                            new_driver,
                            ..
                        } = f.kind
                        else {
                            panic!("wrong kind");
                        };
                        assert_eq!(faulty.gate(f.gate).fanins()[position], new_driver);
                    }
                }
            }
        }
    }

    #[test]
    fn try_inject_reports_exhaustion() {
        let golden = c17();
        assert!(try_inject_faults(&golden, FaultModel::GateChange, 7, 0).is_none());
        assert!(try_inject_faults(&golden, FaultModel::StuckAt, 7, 0).is_none());
        assert!(try_inject_faults(&golden, FaultModel::ExtraInverter, 7, 0).is_none());
        assert!(try_inject_faults(&golden, FaultModel::GateChange, 1, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "too few eligible gates")]
    fn inject_faults_panics_when_exhausted() {
        let golden = c17();
        let _ = inject_faults(&golden, FaultModel::StuckAt, 7, 0);
    }
}
