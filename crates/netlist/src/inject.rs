//! Gate-change error injection.
//!
//! The paper's experiments inject "1-4 gate change errors": the function of
//! a gate is replaced by a different Boolean function over the same fan-ins.
//! [`inject_errors`] reproduces that model deterministically from a seed.

use crate::circuit::Circuit;
use crate::gate::{GateId, GateKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A single injected error: gate `gate` had its function changed from
/// `original` to `replacement`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ErrorSite {
    /// The mutated gate.
    pub gate: GateId,
    /// The gate's correct function.
    pub original: GateKind,
    /// The injected (faulty) function.
    pub replacement: GateKind,
}

/// Injects `count` gate-change errors into distinct functional gates.
///
/// Returns the faulty circuit together with the injected [`ErrorSite`]s.
/// The replacement kind always differs from the original and has the same
/// arity. Injection is deterministic in `seed`.
///
/// Note that an injected error is not guaranteed to be *detectable* (a
/// redundant gate may mask it); callers that need failing tests should use a
/// test generator that checks observability (see `gatediag-core`'s
/// `testgen`).
///
/// # Panics
///
/// Panics if the circuit has fewer than `count` functional gates.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_errors};
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 2, 7);
/// assert_eq!(sites.len(), 2);
/// for site in &sites {
///     assert_eq!(faulty.gate(site.gate).kind(), site.replacement);
///     assert_eq!(golden.gate(site.gate).kind(), site.original);
/// }
/// ```
pub fn inject_errors(circuit: &Circuit, count: usize, seed: u64) -> (Circuit, Vec<ErrorSite>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let candidates: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect();
    assert!(
        candidates.len() >= count,
        "cannot inject {count} errors into {} functional gates",
        candidates.len()
    );
    let chosen: Vec<GateId> = candidates
        .choose_multiple(&mut rng, count)
        .copied()
        .collect();

    let mut faulty = circuit.clone();
    let mut sites = Vec::with_capacity(count);
    for gate in chosen {
        let original = circuit.gate(gate).kind();
        let pool: Vec<GateKind> = GateKind::compatible_with_arity(circuit.gate(gate).arity())
            .iter()
            .copied()
            .filter(|&k| k != original)
            .collect();
        let replacement = *pool
            .choose(&mut rng)
            .expect("every functional arity has at least one alternative kind");
        faulty = faulty.with_gate_kind(gate, replacement);
        sites.push(ErrorSite {
            gate,
            original,
            replacement,
        });
    }
    (faulty, sites)
}

/// Injects a stuck-at fault: gate `gate`'s output is tied to `value`.
///
/// This is the production-test fault model the paper's introduction
/// mentions alongside design errors. Unlike [`inject_errors`] the gate's
/// fan-ins are disconnected (the gate becomes a constant driver), so the
/// circuit is rebuilt; gate ids and names are preserved.
///
/// # Panics
///
/// Panics if `gate` is a source gate.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_stuck_at};
/// let golden = c17();
/// let g = golden.find("G16").unwrap();
/// let faulty = inject_stuck_at(&golden, g, true);
/// assert_eq!(faulty.gate(g).kind(), gatediag_netlist::GateKind::Const1);
/// ```
pub fn inject_stuck_at(circuit: &Circuit, gate: GateId, value: bool) -> Circuit {
    assert!(
        !circuit.gate(gate).kind().is_source(),
        "cannot tie source gate {gate}"
    );
    let mut b = crate::circuit::CircuitBuilder::new();
    b.name(circuit.name());
    for (id, g) in circuit.iter() {
        let name = circuit
            .gate_name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", id.index()));
        if g.kind() == GateKind::Input {
            b.input(name);
        } else if id == gate {
            let kind = if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            };
            b.gate(kind, Vec::new(), name);
        } else {
            b.gate(g.kind(), g.fanins().to_vec(), name);
        }
    }
    for &o in circuit.outputs() {
        b.output(o);
    }
    for l in circuit.latches() {
        b.latch(l.q, l.d);
    }
    b.finish().expect("tying a gate keeps the netlist valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{c17, ripple_carry_adder};

    #[test]
    fn injects_requested_count() {
        let golden = ripple_carry_adder(4);
        for p in 1..=4 {
            let (faulty, sites) = inject_errors(&golden, p, 11);
            assert_eq!(sites.len(), p);
            let distinct: std::collections::HashSet<_> = sites.iter().map(|s| s.gate).collect();
            assert_eq!(distinct.len(), p, "error sites must be distinct");
            for s in &sites {
                assert_ne!(s.original, s.replacement);
                assert_eq!(faulty.gate(s.gate).kind(), s.replacement);
                assert_eq!(
                    faulty.gate(s.gate).fanins(),
                    golden.gate(s.gate).fanins(),
                    "gate-change errors keep connectivity"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let golden = c17();
        let (f1, s1) = inject_errors(&golden, 2, 3);
        let (f2, s2) = inject_errors(&golden, 2, 3);
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        let (_, s3) = inject_errors(&golden, 2, 4);
        assert_ne!(s1, s3);
    }

    #[test]
    fn untouched_gates_unchanged() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 5);
        let mutated = sites[0].gate;
        for (id, g) in golden.iter() {
            if id != mutated {
                assert_eq!(faulty.gate(id).kind(), g.kind());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn panics_when_too_many() {
        let golden = c17();
        let _ = inject_errors(&golden, 7, 0);
    }

    #[test]
    fn stuck_at_ties_the_gate() {
        let golden = c17();
        let g = golden.find("G16").unwrap();
        for value in [false, true] {
            let faulty = inject_stuck_at(&golden, g, value);
            assert_eq!(faulty.len(), golden.len());
            assert_eq!(
                faulty.gate(g).kind(),
                if value {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                }
            );
            assert!(faulty.gate(g).fanins().is_empty());
            // names and outputs preserved
            assert_eq!(faulty.find("G16"), Some(g));
            assert_eq!(faulty.outputs(), golden.outputs());
        }
    }

    #[test]
    #[should_panic(expected = "cannot tie source")]
    fn stuck_at_rejects_inputs() {
        let golden = c17();
        let _ = inject_stuck_at(&golden, golden.inputs()[0], true);
    }
}
