//! Graphviz DOT export and sub-circuit extraction.
//!
//! DOT dumps make diagnosis results inspectable (candidate gates are
//! highlighted); cone extraction produces the self-contained sub-circuit a
//! hierarchical flow would diagnose in isolation.

use crate::analysis::{fanin_cone, GateSet};
use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};
use std::fmt::Write as _;

/// Renders the circuit as a Graphviz `digraph`.
///
/// Gates in `highlight` are filled red (diagnosis candidates); inputs are
/// boxes, outputs double circles.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, to_dot};
/// let c = c17();
/// let dot = to_dot(&c, &[c.find("G16").unwrap()]);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("G16"));
/// ```
pub fn to_dot(circuit: &Circuit, highlight: &[GateId]) -> String {
    let mut marked = GateSet::new(circuit.len());
    for &g in highlight {
        marked.insert(g);
    }
    let mut out = String::from("digraph circuit {\n  rankdir=LR;\n");
    let _ = writeln!(out, "  label=\"{}\";", circuit.name());
    for (id, gate) in circuit.iter() {
        let fallback = format!("n{}", id.index());
        let name = circuit.gate_name(id).unwrap_or(&fallback);
        let shape = if gate.kind() == GateKind::Input {
            "box"
        } else if circuit.is_output(id) {
            "doublecircle"
        } else {
            "ellipse"
        };
        let fill = if marked.contains(id) {
            ", style=filled, fillcolor=\"#ff8888\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  g{} [label=\"{}\\n{}\", shape={}{}];",
            id.index(),
            name,
            gate.kind(),
            shape,
            fill
        );
    }
    for (id, gate) in circuit.iter() {
        for &f in gate.fanins() {
            let _ = writeln!(out, "  g{} -> g{};", f.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Extracts the transitive fan-in cone of `roots` as a self-contained
/// circuit.
///
/// Gates on the cone boundary keep their structure; every cone gate whose
/// fan-in lies outside the cone cannot occur (cones are fan-in closed), so
/// the extraction is exact. The roots become the outputs of the extracted
/// circuit. Gate names are preserved.
///
/// Returns the sub-circuit and the mapping `original gate → extracted
/// gate`.
///
/// # Panics
///
/// Panics if `roots` is empty.
pub fn extract_cone(circuit: &Circuit, roots: &[GateId]) -> (Circuit, Vec<Option<GateId>>) {
    assert!(!roots.is_empty(), "need at least one cone root");
    let cone = fanin_cone(circuit, roots);
    let mut b = CircuitBuilder::new();
    b.name(format!("{}::cone", circuit.name()));
    let mut map: Vec<Option<GateId>> = vec![None; circuit.len()];
    for &id in circuit.topo_order() {
        if !cone.contains(id) {
            continue;
        }
        let gate = circuit.gate(id);
        let fallback = format!("n{}", id.index());
        let name = circuit.gate_name(id).map(str::to_owned).unwrap_or(fallback);
        let new_id = if gate.kind() == GateKind::Input {
            b.input(name)
        } else {
            let fanins = gate
                .fanins()
                .iter()
                .map(|f| map[f.index()].expect("cones are fan-in closed"))
                .collect();
            b.gate(gate.kind(), fanins, name)
        };
        map[id.index()] = Some(new_id);
    }
    for &r in roots {
        b.output(map[r.index()].expect("root is in its own cone"));
    }
    (b.finish().expect("cone extraction preserves validity"), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::c17;

    #[test]
    fn dot_contains_all_gates_and_edges() {
        let c = c17();
        let dot = to_dot(&c, &[]);
        for (id, _) in c.iter() {
            assert!(dot.contains(&format!("g{} [", id.index())));
        }
        let edge_count = dot.matches(" -> ").count();
        let expected: usize = c.iter().map(|(_, g)| g.arity()).sum();
        assert_eq!(edge_count, expected);
    }

    #[test]
    fn dot_highlights() {
        let c = c17();
        let g = c.find("G16").unwrap();
        let dot = to_dot(&c, &[g]);
        let line = dot
            .lines()
            .find(|l| l.contains(&format!("g{} [", g.index())))
            .unwrap();
        assert!(line.contains("fillcolor"));
    }

    #[test]
    fn cone_of_one_output() {
        let c = c17();
        let g22 = c.find("G22").unwrap();
        let (sub, map) = extract_cone(&c, &[g22]);
        // G22's cone: G1, G2, G3, G6 inputs; G10, G11, G16, G22 gates.
        assert_eq!(sub.inputs().len(), 4);
        assert_eq!(sub.num_functional_gates(), 4);
        assert_eq!(sub.outputs().len(), 1);
        assert!(map[g22.index()].is_some());
        // G19 and G23 are outside the cone.
        assert!(map[c.find("G19").unwrap().index()].is_none());
        // Extracted circuit simulates identically on the cone.
        let sub_g22 = map[g22.index()].unwrap();
        assert_eq!(sub.gate(sub_g22).kind(), c.gate(g22).kind());
    }

    #[test]
    fn cone_of_all_outputs_is_whole_reachable_circuit() {
        let c = c17();
        let (sub, _) = extract_cone(&c, c.outputs());
        assert_eq!(sub.num_functional_gates(), c.num_functional_gates());
        assert_eq!(sub.inputs().len(), c.inputs().len());
    }

    #[test]
    #[should_panic(expected = "at least one cone root")]
    fn cone_requires_roots() {
        let c = c17();
        let _ = extract_cone(&c, &[]);
    }
}
