//! The chaos contract: deterministic fault injection composes with every
//! robustness guarantee. Injected panics are isolated to their instance
//! and recorded as `failed`; injected preemptions flow through the budget
//! machinery; retries recover transient chaos; reports stay byte-identical
//! across worker counts; checkpoints are valid partial reports that
//! `--resume` turns back into the uninterrupted run, byte for byte.

use gatediag_campaign::{
    parse_report_bytes, resume_campaign, run_campaign, run_campaign_checkpointed, CampaignReport,
    CampaignSpec, CheckpointPolicy, InstanceStatus, RetryOn, RetryPolicy,
};
use gatediag_core::{ChaosConfig, EngineKind};
use gatediag_netlist::{FaultModel, RandomCircuitSpec};
use gatediag_sim::Parallelism;

/// A small matrix with chaos on: enough instances (64) that a 35% rate
/// reliably injects all three event kinds.
fn chaos_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(vec![
        ("c17".to_string(), gatediag_netlist::c17()),
        (
            "rnd40".to_string(),
            RandomCircuitSpec::new(6, 3, 40)
                .seed(3)
                .name("rnd40")
                .generate(),
        ),
    ]);
    spec.fault_models = FaultModel::ALL.to_vec();
    spec.error_counts = vec![1, 2];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
    spec.tests = 6;
    spec.max_test_vectors = 1 << 12;
    spec.chaos = Some(ChaosConfig {
        seed: 11,
        rate_ppm: 350_000,
    });
    spec.retry = RetryPolicy {
        max_attempts: 1,
        backoff_ms: 0,
        retry_on: RetryOn::Panic,
    };
    spec
}

/// Injected panics never take down the campaign, and chaos reports obey
/// the same drift contract as everything else: byte-identical JSON, CSV
/// and summary for Sequential and Fixed(1/2/8) pools.
#[test]
fn chaos_reports_are_byte_identical_for_all_worker_counts() {
    let mut spec = chaos_spec();
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let failed = reference
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Failed)
        .count();
    assert!(failed > 0, "chaos rate 35% injected no panics");
    assert!(
        reference
            .records
            .iter()
            .any(|r| r.status == InstanceStatus::Ok),
        "chaos killed every instance"
    );
    for r in &reference.records {
        if r.status == InstanceStatus::Failed {
            assert!(!r.complete);
            assert_eq!(r.attempts, 1);
            let reason = r.failure.as_deref().expect("failed record has a reason");
            assert!(reason.contains("chaos:"), "unexpected reason: {reason}");
        } else {
            assert!(r.failure.is_none(), "non-failed record carries a reason");
        }
    }
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    let ref_summary = reference.summary_table();
    assert!(ref_json.contains("\"status\": \"failed\""));
    assert!(ref_csv.contains(",failed,"));
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "chaos JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "chaos CSV drifted at {workers} workers"
        );
        assert_eq!(
            report.summary_table(),
            ref_summary,
            "chaos summary drifted at {workers} workers"
        );
    }
}

/// Spurious-preempt and work-inflation events go through the ordinary
/// budget machinery: no budget is configured, yet `preempted` records
/// appear, partial and truncated like any genuinely budgeted run.
#[test]
fn chaos_preemptions_use_the_budget_machinery() {
    let spec = chaos_spec();
    let report = run_campaign(&spec);
    let preempted: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Preempted)
        .collect();
    assert!(
        !preempted.is_empty(),
        "no spurious preemption fired at 35% chaos"
    );
    for r in preempted {
        assert!(!r.complete, "preempted instance marked complete");
        assert!(r.failure.is_none(), "preemption is not a failure");
    }
}

/// Each attempt rerolls the chaos decision (the attempt number feeds the
/// key), so retrying recovers instances a single attempt loses — and the
/// recovered records agree with a chaos-free run of the same matrix on
/// everything but the attempt count.
#[test]
fn retries_recover_injected_panics() {
    let mut spec = chaos_spec();
    let one_shot = run_campaign(&spec);
    let failed_once = one_shot
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Failed)
        .count();
    assert!(failed_once > 0);

    spec.retry.max_attempts = 5;
    let retried = run_campaign(&spec);
    let failed_retried = retried
        .records
        .iter()
        .filter(|r| r.status == InstanceStatus::Failed)
        .count();
    assert!(
        failed_retried < failed_once,
        "5 attempts recovered nothing ({failed_once} -> {failed_retried})"
    );
    assert!(
        retried.records.iter().any(|r| r.attempts > 1),
        "no record shows a retry"
    );

    // A recovered instance matches the chaos-free record except for the
    // bookkeeping: same candidates, solutions, hit, quality.
    spec.chaos = None;
    spec.retry = RetryPolicy::default();
    let clean = run_campaign(&spec);
    for (r, c) in retried.records.iter().zip(&clean.records) {
        if r.status != InstanceStatus::Ok || r.attempts == 1 {
            continue;
        }
        assert_eq!(r.circuit, c.circuit);
        assert_eq!(
            r.status, c.status,
            "{}: retry changed the outcome",
            r.circuit
        );
        assert_eq!(r.candidates, c.candidates);
        assert_eq!(r.solutions, c.solutions);
        assert_eq!(r.hit, c.hit);
    }
}

/// The autosaved checkpoint is a valid `gatediag-campaign-v1` report:
/// parseable, and — because the final autosave covers the whole matrix —
/// equal to the finished report. No `.tmp` staging file survives.
#[test]
fn checkpoint_is_a_valid_report_and_leaves_no_tmp() {
    let dir = std::env::temp_dir().join(format!("gatediag_chaos_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("checkpoint.json");

    let mut spec = chaos_spec();
    spec.parallelism = Parallelism::Fixed(2);
    let policy = CheckpointPolicy {
        path: path.clone(),
        every: 5,
    };
    let report = run_campaign_checkpointed(&spec, Some(&policy));

    let bytes = std::fs::read(&path).expect("checkpoint written");
    let saved = parse_report_bytes(&bytes).expect("checkpoint parses");
    assert_eq!(saved.to_json(false), report.to_json(false));
    assert!(
        !dir.join("checkpoint.json.tmp").exists(),
        "staging file left behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery, library-level: serialise a *partial* report (as a
/// mid-run checkpoint would hold), parse it back, resume — the merged
/// report is byte-identical to an uninterrupted run, chaos and all.
#[test]
fn resume_from_partial_checkpoint_matches_uninterrupted_run() {
    let spec = chaos_spec();
    let full = run_campaign(&spec);
    assert!(full.records.len() > 10);

    // A checkpoint written after roughly a third of the matrix.
    let partial_records: Vec<_> = full
        .records
        .iter()
        .take(full.records.len() / 3)
        .cloned()
        .collect();
    let checkpoint = CampaignReport::new(&spec, partial_records).to_json(false);
    let previous = parse_report_bytes(checkpoint.as_bytes()).expect("partial checkpoint parses");
    let resumed = resume_campaign(&spec, &previous).expect("resume accepts the checkpoint");
    assert_eq!(
        resumed.to_json(false),
        full.to_json(false),
        "resume-after-crash drifted from the uninterrupted run"
    );
    assert_eq!(resumed.to_csv(false), full.to_csv(false));
}
