//! Property tests for the report reader: `parse_report_bytes` must never
//! panic, whatever bytes it is fed. A valid report is generated once, then
//! mutated — bit flips, insertions, deletions, truncations — and parsed.
//! Valid inputs must keep parsing; corrupted inputs must fail *cleanly*
//! with `Err`, not a panic, because `--resume` feeds user-supplied files
//! (possibly half-written checkpoints from a crashed run) straight into
//! this parser.

use gatediag_campaign::{
    parse_report_bytes, run_campaign, CampaignSpec, RetryOn, RetryPolicy, TestGenSpec,
};
use gatediag_core::{ChaosConfig, EngineKind};
use gatediag_netlist::{c17, FaultModel};
use proptest::collection::vec;
use proptest::prelude::*;

/// One small real campaign over c17, serialised with every new schema
/// feature present: chaos config, retry policy, bench warnings,
/// discriminating-test generation (so the shrinkage columns are in the
/// fuzzed bytes), a sequential engine (so the frames/seq_len axes and
/// columns are too), and (at this chaos rate) a mix of ok / failed /
/// preempted records.
fn base_report_json() -> String {
    let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
    spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
    spec.error_counts = vec![1];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::Cov, EngineKind::SeqBsim];
    spec.test_gen = Some(TestGenSpec::default());
    spec.chaos = Some(ChaosConfig {
        seed: 3,
        rate_ppm: 400_000,
    });
    spec.retry = RetryPolicy {
        max_attempts: 1,
        backoff_ms: 0,
        retry_on: RetryOn::PanicOrDeadline,
    };
    spec.bench_warnings = vec!["skipped broken.bench: parse error".to_string()];
    run_campaign(&spec).to_json(false)
}

/// A single byte-level corruption: `(op, position, value)`.
type Mutation = (u8, u64, u8);

fn apply(bytes: &mut Vec<u8>, (op, pos, value): Mutation) {
    if bytes.is_empty() {
        bytes.push(value);
        return;
    }
    let at = (pos % bytes.len() as u64) as usize;
    match op % 4 {
        0 => bytes[at] ^= 1 << (value % 8), // bit flip
        1 => bytes.insert(at, value),       // insert a byte
        2 => {
            bytes.remove(at); // delete a byte
        }
        _ => bytes.truncate(at), // truncate (torn write)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any pile-up of corruptions yields `Ok` or a clean `Err` — never a
    /// panic. (The test body reaching its end IS the assertion: a panic
    /// anywhere inside `parse_report_bytes` fails the case.)
    #[test]
    fn mutated_reports_never_panic(mutations in vec((0u8..4, 0u64..1 << 20, 0u8..=255), 1..10)) {
        let mut bytes = base_report_json().into_bytes();
        for m in mutations {
            apply(&mut bytes, m);
        }
        let _ = parse_report_bytes(&bytes);
    }

    /// Every prefix of a valid report — the shape a torn checkpoint write
    /// would have without the atomic tmp+rename — parses without panicking.
    #[test]
    fn truncated_reports_never_panic(cut in 0u64..1 << 20) {
        let json = base_report_json();
        let at = (cut % (json.len() as u64 + 1)) as usize;
        let _ = parse_report_bytes(&json.as_bytes()[..at]);
    }
}

#[test]
fn unmutated_base_report_round_trips() {
    let json = base_report_json();
    let report = parse_report_bytes(json.as_bytes()).expect("own output parses");
    assert_eq!(
        report.chaos,
        Some(ChaosConfig {
            seed: 3,
            rate_ppm: 400_000
        })
    );
    assert_eq!(report.retry.retry_on, RetryOn::PanicOrDeadline);
    assert_eq!(report.bench_warnings.len(), 1);
    assert_eq!(report.test_gen, Some(TestGenSpec { rounds: 4 }));
    // The shrinkage columns survive the parse (some record ran the
    // phase) and re-emission is byte-identical.
    let parsed_tg: Vec<_> = report.records.iter().filter_map(|r| r.test_gen).collect();
    assert!(!parsed_tg.is_empty(), "no shrinkage columns parsed back");
    for tg in parsed_tg {
        assert!(tg.solutions_after <= tg.solutions_before);
    }
    // The sequential axes and per-record columns survive the parse.
    assert_eq!(report.frames, vec![3]);
    assert_eq!(report.seq_lens, vec![4]);
    assert!(
        report
            .records
            .iter()
            .any(|r| r.frames == Some(3) && r.seq_len == Some(4)),
        "no sequential columns parsed back"
    );
    assert_eq!(report.to_json(false), json);
}

#[test]
fn non_utf8_input_is_a_clean_error() {
    let err = parse_report_bytes(&[0x7b, 0xff, 0xfe, 0x7d]).unwrap_err();
    assert!(err.to_string().contains("UTF-8"), "{err}");
}
