//! Real-circuit ingestion: a directory of ISCAS89 `.bench` files feeds a
//! campaign through `parse_bench_dir`, exactly as `gatediag campaign
//! --bench-dir` wires it. The test writes a genuine `c17.bench` (plus a
//! second tiny netlist and some distractor files) into a temp dir.

use gatediag_campaign::{run_campaign, CampaignSpec, InstanceStatus};
use gatediag_core::EngineKind;
use gatediag_netlist::{parse_bench_dir, parse_bench_dir_strict, FaultModel};
use std::path::PathBuf;

const C17: &str = "\
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

const MINI: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
x = AND(a, b)
y = NOT(x)
";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gatediag_bench_dir_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bench_dir_feeds_a_campaign() {
    let dir = temp_dir("campaign");
    std::fs::write(dir.join("c17.bench"), C17).unwrap();
    std::fs::write(dir.join("mini.bench"), MINI).unwrap();
    std::fs::write(dir.join("README.txt"), "not a netlist").unwrap();

    let load = parse_bench_dir(&dir).unwrap();
    assert!(load.warnings.is_empty(), "{:?}", load.warnings);
    let circuits = load.circuits;
    // Sorted by file name; distractors ignored.
    assert_eq!(
        circuits.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        ["c17", "mini"]
    );
    assert_eq!(circuits[0].1.num_functional_gates(), 6);

    let mut spec = CampaignSpec::new(circuits);
    spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
    spec.error_counts = vec![1];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
    let report = run_campaign(&spec);

    assert_eq!(report.circuits, ["c17", "mini"]);
    assert_eq!(report.records.len(), spec.instances().len());
    // The real c17 produced diagnosable instances, and BSAT hit the
    // injected gate-change site on every one that ran.
    let mut ran = 0;
    for r in &report.records {
        if r.circuit == "c17"
            && r.status == InstanceStatus::Ok
            && r.engine == EngineKind::Bsat
            && r.fault_model == FaultModel::GateChange
        {
            ran += 1;
            assert!(r.hit, "seed {}: BSAT missed the c17 error site", r.seed);
        }
    }
    assert!(ran > 0, "no c17 BSAT instance ran");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_files_are_skipped_with_warnings() {
    // Missing directory: still a hard error — there is nothing to load.
    let missing = std::env::temp_dir().join("gatediag_no_such_dir_xyzzy");
    assert!(parse_bench_dir(&missing).is_err());
    // A malformed netlist next to a good one: the lenient loader keeps
    // the good circuit and records a warning naming the offending file
    // with the parse detail.
    let dir = temp_dir("bad");
    std::fs::write(dir.join("broken.bench"), "INPUT(a)\nwat\n").unwrap();
    std::fs::write(dir.join("c17.bench"), C17).unwrap();
    let load = parse_bench_dir(&dir).unwrap();
    assert_eq!(
        load.circuits
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        ["c17"]
    );
    assert_eq!(load.warnings.len(), 1);
    let warning = load.warnings[0].to_string();
    assert!(
        warning.contains("broken.bench"),
        "warning lacks the path: {warning}"
    );
    assert!(
        warning.contains("line 2"),
        "warning lacks the parse detail: {warning}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_loader_keeps_the_fail_fast_contract() {
    // The old behavior lives on behind `parse_bench_dir_strict`: one bad
    // file aborts the load, and the error names it.
    let dir = temp_dir("strict");
    std::fs::write(dir.join("broken.bench"), "INPUT(a)\nwat\n").unwrap();
    std::fs::write(dir.join("c17.bench"), C17).unwrap();
    let err = parse_bench_dir_strict(&dir).unwrap_err().to_string();
    assert!(err.contains("broken.bench"), "error lacks the path: {err}");
    assert!(
        err.contains("line 2"),
        "error lacks the parse detail: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_dir_yields_empty_list_for_fallback() {
    let dir = temp_dir("empty");
    let load = parse_bench_dir(&dir).unwrap();
    assert!(load.circuits.is_empty());
    assert!(load.warnings.is_empty());
    assert!(parse_bench_dir_strict(&dir).unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
