//! Worker-count invariance for the campaign runner, in the style of
//! `crates/core/tests/parallel_drift.rs`: the same `CampaignSpec` must
//! yield **byte-identical** JSON (and CSV, and summary) reports whatever
//! the worker pool looks like — explicit `Fixed(1/2/8)` policies and the
//! `GATEDIAG_WORKERS=1/2/8` environment override alike.

use gatediag_campaign::{run_campaign, CampaignSpec, TestGenSpec};
use gatediag_core::EngineKind;
use gatediag_netlist::{FaultModel, RandomCircuitSpec};
use gatediag_sim::Parallelism;

/// A matrix small enough for a debug-mode test but wide enough to cover
/// every fault model, a SAT engine, a sim engine and the validity
/// screen, plus skipped instances (p larger than c17 can host).
fn drift_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(vec![
        ("c17".to_string(), gatediag_netlist::c17()),
        (
            "rnd40".to_string(),
            RandomCircuitSpec::new(6, 3, 40)
                .seed(3)
                .name("rnd40")
                .generate(),
        ),
    ]);
    spec.fault_models = FaultModel::ALL.to_vec();
    spec.error_counts = vec![1, 2];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::Cov, EngineKind::Bsat];
    spec.tests = 6;
    spec.max_test_vectors = 1 << 12;
    spec
}

#[test]
fn reports_are_byte_identical_for_all_worker_counts() {
    let mut spec = drift_spec();
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    let ref_summary = reference.summary_table();
    // The matrix exercises real instances, not just skips.
    assert!(reference
        .records
        .iter()
        .any(|r| r.status == gatediag_campaign::InstanceStatus::Ok));
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "CSV drifted at {workers} workers"
        );
        assert_eq!(
            report.summary_table(),
            ref_summary,
            "summary drifted at {workers} workers"
        );
    }
}

#[test]
fn reports_are_byte_identical_under_the_env_override() {
    // `Parallelism::Auto` reads GATEDIAG_WORKERS; this is the only test
    // in the suite that touches the variable, so the serial set/run
    // sequence below cannot race another env reader.
    let mut spec = drift_spec();
    spec.parallelism = Parallelism::Auto;
    let mut outputs = Vec::new();
    for workers in ["1", "2", "8"] {
        std::env::set_var("GATEDIAG_WORKERS", workers);
        outputs.push(run_campaign(&spec).to_json(false));
    }
    std::env::remove_var("GATEDIAG_WORKERS");
    assert_eq!(outputs[0], outputs[1], "GATEDIAG_WORKERS=2 drifted");
    assert_eq!(outputs[0], outputs[2], "GATEDIAG_WORKERS=8 drifted");
}

#[test]
fn budget_preempted_reports_are_byte_identical_for_all_worker_counts() {
    // The budget extension of the drift contract: a *work*-budgeted
    // campaign whose instances actually get preempted must still emit
    // byte-identical reports for every worker count, with the truncated
    // instances recorded as `preempted`.
    let mut spec = drift_spec();
    spec.engines = vec![
        EngineKind::Bsim,
        EngineKind::Cov,
        EngineKind::Bsat,
        EngineKind::Auto,
    ];
    // Fewer work units than tests per instance: every sim-side engine's
    // first phase (tracing `spec.tests = 6` tests) runs out of budget.
    spec.work_budget = Some(3);
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let preempted = reference
        .records
        .iter()
        .filter(|r| r.status == gatediag_campaign::InstanceStatus::Preempted)
        .count();
    assert!(
        preempted > 0,
        "the work budget preempted nothing — the guard is not wired in"
    );
    // Preempted records are partial, never complete.
    for r in &reference.records {
        if r.status == gatediag_campaign::InstanceStatus::Preempted {
            assert!(!r.complete, "preempted instance marked complete");
        }
    }
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    let ref_summary = reference.summary_table();
    assert!(ref_json.contains("\"status\": \"preempted\""));
    assert!(ref_csv.contains(",preempted,"));
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "budgeted JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "budgeted CSV drifted at {workers} workers"
        );
        assert_eq!(
            report.summary_table(),
            ref_summary,
            "budgeted summary drifted at {workers} workers"
        );
    }
}

#[test]
fn test_gen_reports_are_byte_identical_for_all_worker_counts() {
    // The discriminating-test-generation extension of the drift
    // contract: with `--test-gen sat` on, the shrinkage columns join the
    // byte-identity guarantee — and the phase must actually bite
    // (generated tests, a strict shrinkage somewhere).
    let mut spec = drift_spec();
    spec.test_gen = Some(TestGenSpec::default());
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let with_columns: Vec<_> = reference
        .records
        .iter()
        .filter_map(|r| r.test_gen)
        .collect();
    assert!(
        !with_columns.is_empty(),
        "no record carries the shrinkage columns — the phase is not wired in"
    );
    for tg in &with_columns {
        assert!(tg.solutions_after <= tg.solutions_before);
    }
    assert!(
        with_columns
            .iter()
            .any(|tg| tg.solutions_after < tg.solutions_before),
        "no instance shrank strictly — the generated tests discriminate nothing"
    );
    assert!(with_columns.iter().any(|tg| tg.gen_tests > 0));
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    let ref_summary = reference.summary_table();
    assert!(ref_json.contains("\"test_gen\": {\"mode\": \"sat\", \"rounds\": 4}"));
    assert!(ref_json.contains("\"solutions_after\":"));
    assert!(ref_summary.contains("test-gen:"));
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "test-gen JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "test-gen CSV drifted at {workers} workers"
        );
        assert_eq!(
            report.summary_table(),
            ref_summary,
            "test-gen summary drifted at {workers} workers"
        );
    }
}

#[test]
fn sequential_reports_are_byte_identical_for_all_worker_counts() {
    // The sequential extension of the drift contract: a matrix mixing
    // combinational and sequential engines (with the frames × seq_lens
    // axes crossed in) must emit byte-identical reports for every worker
    // count.
    let mut spec = CampaignSpec::new(vec![
        ("c17".to_string(), gatediag_netlist::c17()),
        (
            "rnd40s".to_string(),
            RandomCircuitSpec::new(6, 3, 40)
                .latches(4)
                .seed(5)
                .name("rnd40s")
                .generate(),
        ),
    ]);
    spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
    spec.error_counts = vec![1];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::SeqBsim, EngineKind::SeqBsat];
    spec.frames = vec![2, 3];
    spec.seq_lens = vec![4];
    spec.tests = 6;
    spec.max_test_vectors = 1 << 12;
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    // The matrix exercises real sequential instances, not just skips.
    assert!(
        reference
            .records
            .iter()
            .any(|r| r.frames.is_some() && r.status == gatediag_campaign::InstanceStatus::Ok),
        "no sequential instance ran an engine"
    );
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    let ref_summary = reference.summary_table();
    assert!(ref_json.contains("\"frames\": [2, 3]"));
    assert!(ref_json.contains("\"seq_len\": 4"));
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "sequential JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "sequential CSV drifted at {workers} workers"
        );
        assert_eq!(
            report.summary_table(),
            ref_summary,
            "sequential summary drifted at {workers} workers"
        );
    }
}

#[test]
fn timing_is_the_only_nondeterministic_field() {
    // Two runs of the same spec agree on everything except wall_ms.
    let spec = drift_spec();
    let a = run_campaign(&spec);
    let b = run_campaign(&spec);
    assert_eq!(a.to_json(false), b.to_json(false));
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let mut ra = ra.clone();
        let mut rb = rb.clone();
        ra.wall_ms = 0.0;
        rb.wall_ms = 0.0;
        assert_eq!(ra, rb);
    }
}

#[test]
fn trace_counters_are_byte_identical_for_all_worker_counts() {
    // The observability extension of the drift contract: with trace
    // collection on, the timing-free trace JSONL — span tree plus every
    // deterministic counter — joins the byte-identity guarantee. Engines
    // are pinned sequential inside an instance, so nothing a campaign
    // worker charges may depend on how many workers the pool has.
    let mut spec = drift_spec();
    spec.collect_obs = true;
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let ref_trace = reference.to_trace_jsonl(false);
    // The traces are real: every record carries one, the SAT engine and
    // the simulator both charged counters, and the span tree parses back
    // with its nesting invariant intact.
    assert!(reference.records.iter().all(|r| r.obs.is_some()));
    for counter in ["sim.sweeps", "sat.solves", "cnf.clauses", "pool.tasks"] {
        assert!(
            ref_trace.contains(counter),
            "no instance charged `{counter}`"
        );
    }
    let parsed = gatediag_obs::parse_trace(&ref_trace).expect("trace JSONL round-trips");
    assert_eq!(parsed.len(), reference.records.len());
    for line in &parsed {
        assert_eq!(line.trace.spans[0].name, "instance");
    }
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_trace_jsonl(false),
            ref_trace,
            "trace JSONL drifted at {workers} workers"
        );
    }
    // Trace collection must not leak into the ordinary report: the JSON
    // and CSV stay byte-identical to an obs-off run of the same matrix.
    spec.parallelism = Parallelism::Sequential;
    spec.collect_obs = false;
    let plain = run_campaign(&spec);
    assert!(plain.records.iter().all(|r| r.obs.is_none()));
    assert_eq!(plain.to_json(false), reference.to_json(false));
    assert_eq!(plain.to_csv(false), reference.to_csv(false));
}

#[test]
fn solver_stats_columns_are_byte_identical_and_opt_in() {
    // The solver-stats extension of the drift contract: with the flag on,
    // the restarts / learnt_clauses / gc_runs columns are deterministic
    // across worker counts; with it off, reports never mention them.
    let mut spec = drift_spec();
    spec.solver_stats = true;
    spec.parallelism = Parallelism::Sequential;
    let reference = run_campaign(&spec);
    let ref_json = reference.to_json(false);
    let ref_csv = reference.to_csv(false);
    assert!(ref_json.contains("\"solver_stats\": true"));
    assert!(ref_json.contains("\"restarts\":"));
    assert!(ref_json.contains("\"gc_runs\":"));
    assert!(ref_csv
        .lines()
        .next()
        .unwrap()
        .contains(",restarts,learnt_clauses,gc_runs,"));
    // The SAT engines in the matrix really exercise the learnt-clause
    // machinery somewhere — the columns are not structurally zero.
    assert!(
        reference.records.iter().any(|r| r.learnt_clauses > 0),
        "no instance learnt a clause — the stats are not wired through"
    );
    for workers in [1usize, 2, 8] {
        spec.parallelism = Parallelism::Fixed(workers);
        let report = run_campaign(&spec);
        assert_eq!(
            report.to_json(false),
            ref_json,
            "solver-stats JSON drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(false),
            ref_csv,
            "solver-stats CSV drifted at {workers} workers"
        );
    }
    // Off by default: no column name appears anywhere in the output.
    spec.parallelism = Parallelism::Sequential;
    spec.solver_stats = false;
    let plain = run_campaign(&spec);
    for needle in ["restarts", "learnt_clauses", "gc_runs", "solver_stats"] {
        assert!(!plain.to_json(false).contains(needle));
        assert!(!plain.to_csv(false).contains(needle));
    }
}

/// Drops every `, "wall_ms": <number>` field from a report JSON string.
/// `wall_ms` is always the last field of its record object, so skipping
/// from the match to the next `}` removes exactly the timing column.
fn strip_wall_ms(json: &str) -> String {
    let mut out = String::new();
    let mut rest = json;
    while let Some(pos) = rest.find(", \"wall_ms\":") {
        out.push_str(&rest[..pos]);
        let tail = &rest[pos..];
        let end = tail.find('}').expect("wall_ms is the last record field");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn timing_flag_adds_only_the_wall_ms_column() {
    // Regression for the wall-clock quarantine now that `wall_ms` is
    // measured by the root observability span: `--timing` still changes
    // nothing but the one timing column, in JSON and CSV alike.
    let spec = drift_spec();
    let report = run_campaign(&spec);
    assert_eq!(strip_wall_ms(&report.to_json(true)), report.to_json(false));
    let timed_csv = report.to_csv(true);
    let plain_csv = report.to_csv(false);
    for (timed, plain) in timed_csv.lines().zip(plain_csv.lines()) {
        let (prefix, wall) = timed.rsplit_once(',').expect("timed CSV has columns");
        assert_eq!(prefix, plain);
        assert!(wall == "wall_ms" || wall.parse::<f64>().is_ok());
    }
    assert_eq!(timed_csv.lines().count(), plain_csv.lines().count());
    // The measurement is real: instances that ran an engine took time.
    assert!(report
        .records
        .iter()
        .any(|r| r.status == gatediag_campaign::InstanceStatus::Ok && r.wall_ms > 0.0));
}
