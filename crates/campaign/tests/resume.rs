//! Resumable campaigns: the reader round-trip and the resume contract.
//!
//! The headline property (an acceptance criterion of the budget PR): a
//! `--resume` of a partial report reproduces the fresh full-run report
//! **byte-for-byte** (timing excluded) — including when the partial run
//! was preempted by a work budget, and when the resume *extends* the
//! matrix beyond what the partial run covered.

use gatediag_campaign::{
    parse_report, resume_campaign, run_campaign, CampaignSpec, InstanceStatus, TestGenSpec,
};
use gatediag_core::EngineKind;
use gatediag_netlist::{FaultModel, RandomCircuitSpec};

fn base_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(vec![
        ("c17".to_string(), gatediag_netlist::c17()),
        (
            "rnd40".to_string(),
            RandomCircuitSpec::new(6, 3, 40)
                .seed(3)
                .name("rnd40")
                .generate(),
        ),
    ]);
    spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
    spec.error_counts = vec![1, 2];
    spec.seeds = vec![1, 2];
    spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat, EngineKind::Auto];
    spec.tests = 6;
    spec.max_test_vectors = 1 << 12;
    spec
}

#[test]
fn json_report_round_trips_byte_for_byte() {
    for timing in [false, true] {
        let report = run_campaign(&base_spec());
        let json = report.to_json(timing);
        let parsed = parse_report(&json).expect("own emitter output must parse");
        assert_eq!(
            parsed.to_json(timing),
            json,
            "round-trip not byte-identical (timing = {timing})"
        );
        // The parsed records agree field-for-field modulo the float
        // rounding the emitter itself applies.
        assert_eq!(parsed.records.len(), report.records.len());
        for (a, b) in parsed.records.iter().zip(&report.records) {
            assert_eq!(a.circuit, b.circuit);
            assert_eq!(a.status, b.status);
            assert_eq!(a.solutions, b.solutions);
            assert_eq!(a.conflicts, b.conflicts);
        }
    }
}

#[test]
fn resume_of_half_the_matrix_matches_a_fresh_full_run() {
    let full_spec = base_spec();
    let fresh = run_campaign(&full_spec);

    // Partial run: half the seeds (an interrupted campaign).
    let mut half_spec = full_spec.clone();
    half_spec.seeds = vec![1];
    let partial = run_campaign(&half_spec);
    assert!(partial.records.len() < fresh.records.len());

    // Resume through the JSON file exactly as the CLI does: emit, parse,
    // resume with the extended matrix.
    let parsed = parse_report(&partial.to_json(false)).expect("partial report parses");
    let resumed = resume_campaign(&full_spec, &parsed).expect("limits match");
    assert_eq!(
        resumed.to_json(false),
        fresh.to_json(false),
        "resumed JSON differs from a fresh full run"
    );
    assert_eq!(resumed.to_csv(false), fresh.to_csv(false));
    assert_eq!(resumed.summary_table(), fresh.summary_table());
}

#[test]
fn resume_skips_recorded_instances_including_preempted_ones() {
    let mut spec = base_spec();
    spec.work_budget = Some(3); // preempts the 6-test sim-side instances
    let first = run_campaign(&spec);
    assert!(first
        .records
        .iter()
        .any(|r| r.status == InstanceStatus::Preempted));
    // Resuming the *same* matrix re-runs nothing and reproduces the
    // report — preempted records are recorded results, not gaps.
    let resumed = resume_campaign(&spec, &first).expect("limits match");
    assert_eq!(resumed.to_json(false), first.to_json(false));

    // And an extended resume still matches the fresh extended run.
    let mut extended = spec.clone();
    extended.seeds = vec![1, 2, 3];
    let resumed = resume_campaign(&extended, &first).expect("limits match");
    assert_eq!(
        resumed.to_json(false),
        run_campaign(&extended).to_json(false)
    );
}

#[test]
fn resume_rejects_mismatched_limits() {
    let spec = base_spec();
    let report = run_campaign(&spec);
    for (what, mutate) in [
        (
            "tests",
            Box::new(|s: &mut CampaignSpec| s.tests = 7) as Box<dyn Fn(&mut CampaignSpec)>,
        ),
        ("k", Box::new(|s: &mut CampaignSpec| s.k = Some(1))),
        (
            "max_test_vectors",
            Box::new(|s: &mut CampaignSpec| s.max_test_vectors = 1 << 10),
        ),
        (
            "max_solutions",
            Box::new(|s: &mut CampaignSpec| s.max_solutions = 5),
        ),
        (
            "conflict_budget",
            Box::new(|s: &mut CampaignSpec| s.conflict_budget = Some(17)),
        ),
        (
            "work_budget",
            Box::new(|s: &mut CampaignSpec| s.work_budget = Some(17)),
        ),
        (
            "deadline_ms",
            Box::new(|s: &mut CampaignSpec| s.deadline_ms = Some(17)),
        ),
        // Turning test generation on rewrites the shrinkage columns of
        // every record — resuming across the switch must be rejected.
        (
            "test_gen",
            Box::new(|s: &mut CampaignSpec| s.test_gen = Some(TestGenSpec::default())),
        ),
    ] {
        let mut changed = spec.clone();
        mutate(&mut changed);
        let e = resume_campaign(&changed, &report)
            .expect_err(&format!("{what} change must be rejected"));
        assert!(e.contains(what), "error does not name `{what}`: {e}");
    }
    // Matrix-shape changes are fine (that is the extension use case).
    let mut wider = spec.clone();
    wider.engines.push(EngineKind::Cov);
    wider.seeds.push(9);
    assert!(resume_campaign(&wider, &report).is_ok());
}

#[test]
fn legacy_reports_without_test_gen_columns_resume_cleanly() {
    // A report written before the test-gen feature has neither the
    // matrix echo nor the per-record columns. The reader must treat that
    // as "off", and a resume with test generation off must accept it.
    let spec = base_spec();
    let report = run_campaign(&spec);
    let json = report.to_json(false);
    assert!(
        !json.contains("test_gen") && !json.contains("gen_tests"),
        "a test-gen-off report must not mention the feature at all"
    );
    let parsed = parse_report(&json).expect("legacy-shaped report parses");
    assert_eq!(parsed.test_gen, None);
    assert!(parsed.records.iter().all(|r| r.test_gen.is_none()));
    assert!(resume_campaign(&spec, &parsed).is_ok());
    // But a spec that turned the phase on cannot reuse those records.
    let mut on = spec.clone();
    on.test_gen = Some(TestGenSpec { rounds: 2 });
    let e = resume_campaign(&on, &parsed).expect_err("test-gen switch must be rejected");
    assert!(e.contains("test_gen"), "{e}");
}

#[test]
fn test_gen_resume_matches_a_fresh_full_run() {
    // The headline resume property extends over the shrinkage columns:
    // resuming a half-matrix test-gen campaign through the JSON file
    // reproduces the fresh full test-gen run byte-for-byte.
    let mut full_spec = base_spec();
    full_spec.test_gen = Some(TestGenSpec::default());
    let fresh = run_campaign(&full_spec);
    let mut half_spec = full_spec.clone();
    half_spec.seeds = vec![1];
    let partial = run_campaign(&half_spec);
    let parsed = parse_report(&partial.to_json(false)).expect("partial report parses");
    assert_eq!(parsed.test_gen, Some(TestGenSpec::default()));
    let resumed = resume_campaign(&full_spec, &parsed).expect("limits match");
    assert_eq!(resumed.to_json(false), fresh.to_json(false));
    assert_eq!(resumed.to_csv(false), fresh.to_csv(false));
    assert_eq!(resumed.summary_table(), fresh.summary_table());
}

#[test]
fn sequential_resume_matches_a_fresh_full_run() {
    // The resume contract over the sequential axes: a half-matrix
    // sequential campaign resumed through the JSON file — extending both
    // the seeds and the frames axis — reproduces the fresh full run
    // byte-for-byte. The axes live in the per-record identity key, so a
    // record produced under frames = 2 is never reused for frames = 3.
    let mut full_spec = CampaignSpec::new(vec![
        ("c17".to_string(), gatediag_netlist::c17()),
        (
            "rnd40s".to_string(),
            RandomCircuitSpec::new(6, 3, 40)
                .latches(4)
                .seed(5)
                .name("rnd40s")
                .generate(),
        ),
    ]);
    full_spec.fault_models = vec![FaultModel::GateChange];
    full_spec.error_counts = vec![1];
    full_spec.seeds = vec![1, 2];
    full_spec.engines = vec![EngineKind::Bsim, EngineKind::SeqBsat];
    full_spec.frames = vec![2, 3];
    full_spec.seq_lens = vec![4];
    full_spec.tests = 6;
    full_spec.max_test_vectors = 1 << 12;
    let fresh = run_campaign(&full_spec);

    let mut half_spec = full_spec.clone();
    half_spec.seeds = vec![1];
    half_spec.frames = vec![2];
    let partial = run_campaign(&half_spec);
    assert!(partial.records.len() < fresh.records.len());

    let parsed = parse_report(&partial.to_json(false)).expect("partial report parses");
    assert_eq!(parsed.frames, vec![2]);
    assert_eq!(parsed.seq_lens, vec![4]);
    let resumed = resume_campaign(&full_spec, &parsed).expect("limits match");
    assert_eq!(
        resumed.to_json(false),
        fresh.to_json(false),
        "sequential resume differs from a fresh full run"
    );
    assert_eq!(resumed.to_csv(false), fresh.to_csv(false));
    assert_eq!(resumed.summary_table(), fresh.summary_table());
}

#[test]
fn resume_rejects_changed_circuit_content() {
    // Records are keyed by circuit name; a same-named circuit with
    // different content must not silently reuse stale records.
    let spec = base_spec();
    let report = run_campaign(&spec);
    let mut changed = spec.clone();
    changed.circuits[1] = (
        "rnd40".to_string(), // same name...
        RandomCircuitSpec::new(6, 3, 48) // ...different circuit
            .seed(4)
            .name("rnd40")
            .generate(),
    );
    let e = resume_campaign(&changed, &report).expect_err("stale records must be rejected");
    assert!(e.contains("rnd40") && e.contains("content changed"), "{e}");
}

#[test]
fn dropped_instances_do_not_leak_into_a_narrowed_resume() {
    let spec = base_spec();
    let report = run_campaign(&spec);
    let mut narrow = spec.clone();
    narrow.seeds = vec![2];
    narrow.engines = vec![EngineKind::Bsat];
    let resumed = resume_campaign(&narrow, &report).expect("limits match");
    assert_eq!(
        resumed.to_json(false),
        run_campaign(&narrow).to_json(false),
        "narrowed resume must drop out-of-matrix records"
    );
}
