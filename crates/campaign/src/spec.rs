//! Campaign specifications: the instance matrix.
//!
//! A [`CampaignSpec`] crosses circuits × fault models × error counts ×
//! seeds × engines into a flat, index-ordered list of [`InstanceSpec`]s.
//! The matrix order is fixed (circuits outermost, engines innermost), so
//! instance indices — and therefore the merged report — are a pure
//! function of the spec, independent of how the runner schedules the
//! work.
//!
//! Sequential engines (`seq-bsim` / `seq-bsat`) additionally cross the
//! [`CampaignSpec::frames`] × [`CampaignSpec::seq_lens`] axes inside
//! their engine slot; combinational engines ignore both axes, so a spec
//! without sequential engines expands to exactly the legacy matrix.

use gatediag_core::{ChaosConfig, EngineKind};
use gatediag_netlist::{c17, Circuit, FaultModel, RandomCircuitSpec};
use gatediag_sim::Parallelism;

/// Which failure classes a [`RetryPolicy`] re-attempts.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RetryOn {
    /// Retry only panicked attempts. Deterministic outcomes (a work or
    /// conflict preemption, an enumeration cap) would fail identically
    /// on every attempt, so they are recorded first try.
    Panic,
    /// Retry panics *and* wall-deadline preemptions — a deadline is a
    /// transient, machine-load-dependent outcome, so a second attempt
    /// can genuinely succeed. Only meaningful with `deadline_ms` set,
    /// and inherits its nondeterminism.
    PanicOrDeadline,
}

impl RetryOn {
    /// Stable serialisation/CLI token.
    pub fn name(self) -> &'static str {
        match self {
            RetryOn::Panic => "panic",
            RetryOn::PanicOrDeadline => "panic-or-deadline",
        }
    }

    /// Parses a CLI spelling (case-insensitive).
    pub fn parse(text: &str) -> Option<RetryOn> {
        match text.to_ascii_lowercase().as_str() {
            "panic" => Some(RetryOn::Panic),
            "panic-or-deadline" => Some(RetryOn::PanicOrDeadline),
            _ => None,
        }
    }
}

/// Bounded retry for failed instance attempts.
///
/// Deterministic by construction: which attempts fail is a pure function
/// of `(spec, instance, attempt)` (real panics are deterministic replays;
/// injected chaos is seeded and hashes the attempt number in), and the
/// backoff sleep only spends wall time — it is quarantined from reports
/// exactly like `wall_ms`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per instance (first try included); at least 1.
    pub max_attempts: u32,
    /// Sleep before attempt `n + 1`, doubling per retry:
    /// `backoff_ms << (n - 1)` milliseconds. `0` = no sleep.
    pub backoff_ms: u64,
    /// Which failures are worth re-attempting.
    pub retry_on: RetryOn,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            backoff_ms: 0,
            retry_on: RetryOn::Panic,
        }
    }
}

/// A full experiment campaign: the instance matrix plus shared limits.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// The golden circuits, as `(name, circuit)` pairs.
    pub circuits: Vec<(String, Circuit)>,
    /// Fault models to inject.
    pub fault_models: Vec<FaultModel>,
    /// Injected error counts (the paper's `p`).
    pub error_counts: Vec<usize>,
    /// Injection/test-generation seeds.
    pub seeds: Vec<u64>,
    /// Diagnosis engines to run on every instance.
    pub engines: Vec<EngineKind>,
    /// Time-frame counts for the sequential engines: each value is both
    /// the generated sequence length and the SAT unroll depth, and is
    /// crossed into the matrix for every sequential engine.
    /// Combinational engines ignore the axis.
    pub frames: Vec<usize>,
    /// Failing-sequence counts per sequential instance (the sequential
    /// analogue of [`CampaignSpec::tests`]), crossed into the matrix
    /// like [`CampaignSpec::frames`].
    pub seq_lens: Vec<usize>,
    /// Failing tests to collect per instance (the paper's `m`).
    pub tests: usize,
    /// Random-vector budget for failing-test generation; instances whose
    /// faults stay unobservable within it are recorded as skipped.
    pub max_test_vectors: usize,
    /// Correction size bound `k`; `None` means `k = p` per instance.
    pub k: Option<usize>,
    /// Per-instance enumeration cap.
    pub max_solutions: usize,
    /// Per-instance conflict budget for every SAT search an instance
    /// performs — the diagnosis solvers *and* the `auto` engine's SAT
    /// validity backend (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// Per-instance deterministic work budget, in engine-defined units
    /// (tests traced / covering nodes / conflicts / sets screened — see
    /// `gatediag_core::budget`). Truncated instances are recorded as
    /// `preempted`, and the report stays byte-identical for every worker
    /// count (`None` = unlimited).
    pub work_budget: Option<u64>,
    /// Per-instance wall-clock deadline in milliseconds. Nondeterministic
    /// — a deadline-truncated report is *not* reproducible, exactly like
    /// the `wall_ms` column (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Worker-pool policy for the campaign runner (instances are the unit
    /// of parallelism; engines run sequentially inside a worker). The
    /// report is bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Seeded fault injection for every engine run (`None` = off). A
    /// chaos campaign is as reproducible as a clean one — decisions are
    /// keyed off instance identity, never wall clock — so the drift
    /// contract extends over injected failures.
    pub chaos: Option<ChaosConfig>,
    /// Bounded retry for panicked (and optionally deadline-preempted)
    /// attempts.
    pub retry: RetryPolicy,
    /// Circuit-loading warnings to surface in the report header (e.g.
    /// `.bench` files skipped by the lenient directory loader). Purely
    /// informational: excluded from the resume limit checks.
    pub bench_warnings: Vec<String>,
    /// SAT-guided discriminating-test generation after each instance's
    /// diagnosis (`None` = off, the default). When on, every record
    /// carries the `gen_tests` / `solutions_before` / `solutions_after` /
    /// `ambiguity_classes` shrinkage columns.
    pub test_gen: Option<TestGenSpec>,
    /// Attach the per-instance observability trace (spans + counters,
    /// see `gatediag_obs`) to every record, for `--trace` / `--profile`.
    /// Off by default; the JSON/CSV reports are byte-identical either
    /// way — traces only flow to the separate trace JSONL stream.
    pub collect_obs: bool,
    /// Emit the extended solver-statistics columns (`restarts`,
    /// `learnt_clauses`, `gc_runs`) in the JSON/CSV reports. The values
    /// are always measured; the flag only gates emission, so reports
    /// from campaigns without it stay byte-identical to legacy output.
    pub solver_stats: bool,
}

/// Campaign-level settings for the discriminating-test generation phase
/// (`--test-gen sat`); see `gatediag_core::testgen`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TestGenSpec {
    /// Maximum generation passes over the unresolved candidates
    /// (`TestGenPolicy::rounds`).
    pub rounds: usize,
}

impl Default for TestGenSpec {
    fn default() -> Self {
        TestGenSpec { rounds: 4 }
    }
}

impl CampaignSpec {
    /// Creates a spec over `circuits` with the default matrix: all fault
    /// models, `p ∈ {1, 2}`, seeds `{1, 2}`, the BSIM/COV/BSAT engine
    /// trio, 8 tests per instance.
    pub fn new(circuits: Vec<(String, Circuit)>) -> CampaignSpec {
        CampaignSpec {
            circuits,
            fault_models: FaultModel::ALL.to_vec(),
            error_counts: vec![1, 2],
            seeds: vec![1, 2],
            engines: vec![EngineKind::Bsim, EngineKind::Cov, EngineKind::Bsat],
            frames: vec![3],
            seq_lens: vec![4],
            tests: 8,
            max_test_vectors: 1 << 15,
            k: None,
            max_solutions: 10_000,
            conflict_budget: Some(5_000_000),
            work_budget: None,
            deadline_ms: None,
            parallelism: Parallelism::default(),
            chaos: None,
            retry: RetryPolicy::default(),
            bench_warnings: Vec::new(),
            test_gen: None,
            collect_obs: false,
            solver_stats: false,
        }
    }

    /// The built-in synthetic circuit set used when no `.bench` directory
    /// is supplied: `c17` plus two seeded random circuits (64 and 160
    /// functional gates, the larger one with pseudo-I/O latches).
    pub fn demo_circuits() -> Vec<(String, Circuit)> {
        vec![
            ("c17".to_string(), c17()),
            (
                "rnd64".to_string(),
                RandomCircuitSpec::new(8, 4, 64)
                    .seed(7)
                    .name("rnd64")
                    .generate(),
            ),
            (
                "rnd160".to_string(),
                RandomCircuitSpec::new(10, 5, 160)
                    .latches(4)
                    .seed(9)
                    .name("rnd160")
                    .generate(),
            ),
        ]
    }

    /// The demo campaign: [`CampaignSpec::demo_circuits`] under the
    /// default matrix (4 fault models × 3 engines × 2 error counts × 2
    /// seeds).
    pub fn demo() -> CampaignSpec {
        CampaignSpec::new(CampaignSpec::demo_circuits())
    }

    /// Expands the matrix into index-ordered instances: circuits
    /// outermost, then fault models, error counts, seeds, and engines
    /// innermost. A sequential engine's slot expands further over
    /// `frames × seq_lens` (frames outermost); combinational engines
    /// produce exactly one instance per slot with both set to `None`.
    pub fn instances(&self) -> Vec<InstanceSpec> {
        let mut out = Vec::new();
        for circuit in 0..self.circuits.len() {
            for &fault_model in &self.fault_models {
                for &p in &self.error_counts {
                    for &seed in &self.seeds {
                        for &engine in &self.engines {
                            let base = InstanceSpec {
                                circuit,
                                fault_model,
                                p,
                                seed,
                                engine,
                                frames: None,
                                seq_len: None,
                            };
                            if engine.is_sequential() {
                                for &frames in &self.frames {
                                    for &seq_len in &self.seq_lens {
                                        out.push(InstanceSpec {
                                            frames: Some(frames),
                                            seq_len: Some(seq_len),
                                            ..base
                                        });
                                    }
                                }
                            } else {
                                out.push(base);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

// The frame/seq-len clamps moved to `gatediag_core::session` (they are
// shared by the CLI, the campaign and the serve daemon's one validation
// gate); re-exported here so existing campaign users keep their paths.
pub use gatediag_core::{validate_frames, validate_seq_len, MAX_FRAMES, MAX_SEQ_LEN};

/// One cell of the campaign matrix.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InstanceSpec {
    /// Index into [`CampaignSpec::circuits`].
    pub circuit: usize,
    /// The fault model to inject.
    pub fault_model: FaultModel,
    /// Number of injected errors.
    pub p: usize,
    /// Injection/test seed.
    pub seed: u64,
    /// The engine to diagnose with.
    pub engine: EngineKind,
    /// Time frames per sequence (`Some` exactly for sequential engines).
    pub frames: Option<usize>,
    /// Failing sequences to collect (`Some` exactly for sequential
    /// engines).
    pub seq_len: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_order_is_engines_innermost() {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
        spec.error_counts = vec![1];
        spec.seeds = vec![5];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
        let instances = spec.instances();
        assert_eq!(instances.len(), 4);
        assert_eq!(instances[0].engine, EngineKind::Bsim);
        assert_eq!(instances[1].engine, EngineKind::Bsat);
        assert_eq!(instances[0].fault_model, FaultModel::GateChange);
        assert_eq!(instances[2].fault_model, FaultModel::StuckAt);
    }

    #[test]
    fn demo_meets_the_acceptance_matrix() {
        let spec = CampaignSpec::demo();
        assert!(spec.fault_models.len() >= 3);
        assert!(spec.engines.len() >= 2);
        assert!(!spec.instances().is_empty());
    }

    #[test]
    fn sequential_engines_cross_the_frames_and_seq_len_axes() {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange];
        spec.error_counts = vec![1];
        spec.seeds = vec![5];
        spec.engines = vec![EngineKind::Bsim, EngineKind::SeqBsat];
        spec.frames = vec![2, 4];
        spec.seq_lens = vec![3, 6];
        let instances = spec.instances();
        // 1 combinational + 1 sequential × 2 frames × 2 seq_lens.
        assert_eq!(instances.len(), 5);
        assert_eq!(instances[0].engine, EngineKind::Bsim);
        assert_eq!((instances[0].frames, instances[0].seq_len), (None, None));
        let seq: Vec<(Option<usize>, Option<usize>)> = instances[1..]
            .iter()
            .map(|i| (i.frames, i.seq_len))
            .collect();
        assert_eq!(
            seq,
            vec![
                (Some(2), Some(3)),
                (Some(2), Some(6)),
                (Some(4), Some(3)),
                (Some(4), Some(6)),
            ],
            "frames outermost, seq_lens innermost"
        );
        assert!(instances[1..].iter().all(|i| i.engine.is_sequential()));
    }

    #[test]
    fn specs_without_sequential_engines_ignore_the_sequential_axes() {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange];
        spec.error_counts = vec![1];
        spec.seeds = vec![5];
        let legacy = spec.instances();
        spec.frames = vec![1, 2, 3, 4];
        spec.seq_lens = vec![9, 10];
        assert_eq!(spec.instances(), legacy);
    }

    #[test]
    fn frames_and_seq_len_validation_rejects_zero_and_clamps() {
        assert!(validate_frames(0).is_err());
        assert_eq!(validate_frames(1), Ok(1));
        assert_eq!(validate_frames(MAX_FRAMES), Ok(MAX_FRAMES));
        assert_eq!(validate_frames(usize::MAX), Ok(MAX_FRAMES));
        assert!(validate_seq_len(0).is_err());
        assert_eq!(validate_seq_len(8), Ok(8));
        assert_eq!(validate_seq_len(1 << 40), Ok(MAX_SEQ_LEN));
    }
}
