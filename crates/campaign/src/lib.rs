//! `gatediag-campaign`: fault-model-diverse, parallel experiment
//! campaigns over ISCAS89 circuits.
//!
//! The paper's contribution is an *experimental comparison* — BSIM vs COV
//! vs BSAT over many injected-error instances — and this crate is the
//! scenario machine that produces such comparisons at scale. A
//! [`CampaignSpec`] crosses
//!
//! ```text
//! circuits × fault models × error counts p × seeds × engines
//! ```
//!
//! (sequential engines additionally cross the `frames` × `seq_lens`
//! axes — see [`CampaignSpec::frames`])
//!
//! into a flat instance matrix; [`run_campaign`] fans the instances out
//! over the shared worker pool (one instance per work item, index-ordered
//! merge) and collects resolution quality, candidate/solution counts and
//! engine statistics into a [`CampaignReport`] with JSON and CSV emitters
//! plus a paper-style summary table.
//!
//! Circuits come from either a directory of real ISCAS89 `.bench` files
//! ([`gatediag_netlist::parse_bench_dir`]) or the built-in synthetic
//! fallback set ([`CampaignSpec::demo_circuits`]); fault models are the
//! [`gatediag_netlist::FaultModel`] family (the paper's gate-kind
//! substitution plus stuck-at, wrong input connection and extra
//! inverter); engines are the [`gatediag_core::EngineKind`] surface
//! (BSIM, COV, BSAT, the Sec. 6 hybrid, and the auto-dispatching
//! validity-screened `auto` engine).
//!
//! # Determinism
//!
//! Reports are **byte-identical for every worker count**: each instance
//! is a pure function of `(spec, index)`, records merge in matrix order,
//! and the emitters exclude wall-clock timing unless explicitly asked.
//! `crates/campaign/tests/campaign_drift.rs` pins this contract, in the
//! same style as the engine-level drift suites.
//!
//! # Examples
//!
//! ```
//! use gatediag_campaign::{run_campaign, CampaignSpec};
//! use gatediag_core::EngineKind;
//! use gatediag_netlist::FaultModel;
//!
//! let mut spec = CampaignSpec::demo();
//! // One circuit, one seed: a doctest-sized matrix.
//! spec.circuits.truncate(1);
//! spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
//! spec.error_counts = vec![1];
//! spec.seeds = vec![1];
//! spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
//! let report = run_campaign(&spec);
//! assert_eq!(report.records.len(), 4);
//! println!("{}", report.summary_table());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod reader;
mod report;
mod runner;
mod spec;

pub use reader::{parse_report, parse_report_bytes, ReadError, CAMPAIGN_SCHEMA};
pub use report::{CampaignReport, InstanceRecord, InstanceStatus, TestGenRecord};
pub use runner::{
    resume_campaign, resume_campaign_checkpointed, run_campaign, run_campaign_checkpointed,
    CheckpointPolicy,
};
pub use spec::{
    validate_frames, validate_seq_len, CampaignSpec, InstanceSpec, RetryOn, RetryPolicy,
    TestGenSpec, MAX_FRAMES, MAX_SEQ_LEN,
};
