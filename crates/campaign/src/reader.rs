//! Reader for the `gatediag-campaign-v1` report schema.
//!
//! The campaign JSON emitter was write-only until the resume feature
//! needed to load a previous run back in. The build is offline (no
//! serde); the JSON syntax layer — full JSON, numbers kept as raw text
//! so `u64` seeds survive without a round-trip through `f64`, a
//! recursion-depth cap and duplicate-key rejection — lives in
//! [`gatediag_core::json`] (shared with the serve protocol), and this
//! module carries the schema mapping onto [`CampaignReport`].
//!
//! # Compatibility
//!
//! * the matrix field `"k"` is `null` for "k = p per instance" in current
//!   reports; the **legacy string `"p"`** (the type-unstable spelling
//!   older emitters used) is still accepted;
//! * `"work_budget"` / `"deadline_ms"` may be absent (reports written
//!   before the budget subsystem) and default to unlimited;
//! * per-instance `"wall_ms"` is optional (present only with `--timing`)
//!   and defaults to `0.0` — timing is excluded from resume comparisons
//!   anyway.
//!
//! Round-trip invariant, pinned by tests: for any report `r`,
//! `parse_report(&r.to_json(false)).to_json(false)` is byte-identical to
//! `r.to_json(false)`.

use crate::report::{CampaignReport, InstanceRecord, InstanceStatus, TestGenRecord};
use crate::spec::{RetryOn, RetryPolicy, TestGenSpec};
use gatediag_core::json::{parse_json, Json, JsonError};
use gatediag_core::{ChaosConfig, EngineKind};
use gatediag_netlist::FaultModel;

/// Why a report failed to parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReadError {
    /// Human-readable description, with a byte offset where applicable.
    pub message: String,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ReadError {}

impl From<JsonError> for ReadError {
    fn from(e: JsonError) -> Self {
        ReadError { message: e.message }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, ReadError> {
    Err(ReadError {
        message: message.into(),
    })
}

// ---------------------------------------------------------------------
// Schema mapping.
// ---------------------------------------------------------------------

/// The schema tag this reader understands.
pub const CAMPAIGN_SCHEMA: &str = "gatediag-campaign-v1";

fn parse_record(json: &Json, index: usize) -> Result<InstanceRecord, ReadError> {
    let ctx = format!("instance {index}");
    let status_text = json.expect("status", &ctx)?.as_str(&ctx)?;
    let Some(status) = InstanceStatus::parse(status_text) else {
        return err(format!("{ctx}: unknown status `{status_text}`"));
    };
    let fault_text = json.expect("fault_model", &ctx)?.as_str(&ctx)?;
    let Some(fault_model) = FaultModel::parse(fault_text) else {
        return err(format!("{ctx}: unknown fault model `{fault_text}`"));
    };
    let engine_text = json.expect("engine", &ctx)?.as_str(&ctx)?;
    let Some(engine) = EngineKind::parse(engine_text) else {
        return err(format!("{ctx}: unknown engine `{engine_text}`"));
    };
    let solutions = json.expect("solutions", &ctx)?.as_usize(&ctx)?;
    // Quality is null whenever there are no solutions (the emitter's
    // "0.0 would read as a perfect diagnosis" rule); the in-memory
    // default for that case is 0.0.
    let quality = |key: &str| -> Result<f64, ReadError> {
        let value = json.expect(key, &ctx)?;
        if solutions == 0 || *value == Json::Null {
            Ok(0.0)
        } else {
            Ok(value.as_f64(&ctx)?)
        }
    };
    Ok(InstanceRecord {
        circuit: json.expect("circuit", &ctx)?.as_str(&ctx)?.to_string(),
        gates: json.expect("gates", &ctx)?.as_usize(&ctx)?,
        fault_model,
        p: json.expect("p", &ctx)?.as_usize(&ctx)?,
        seed: json.expect("seed", &ctx)?.as_u64(&ctx)?,
        engine,
        // Sequential columns; absent on combinational records (and on
        // every legacy report).
        frames: match json.get("frames") {
            Some(value) => Some(value.as_usize(&ctx)?),
            None => None,
        },
        seq_len: match json.get("seq_len") {
            Some(value) => Some(value.as_usize(&ctx)?),
            None => None,
        },
        k: json.expect("k", &ctx)?.as_usize(&ctx)?,
        tests: json.expect("tests", &ctx)?.as_usize(&ctx)?,
        status,
        candidates: json.expect("candidates", &ctx)?.as_usize(&ctx)?,
        solutions,
        complete: json.expect("complete", &ctx)?.as_bool(&ctx)?,
        hit: json.expect("hit", &ctx)?.as_bool(&ctx)?,
        quality_min: quality("quality_min")?,
        quality_avg: quality("quality_avg")?,
        quality_max: quality("quality_max")?,
        conflicts: json.expect("conflicts", &ctx)?.as_u64(&ctx)?,
        decisions: json.expect("decisions", &ctx)?.as_u64(&ctx)?,
        propagations: json.expect("propagations", &ctx)?.as_u64(&ctx)?,
        // Extended solver statistics: present only on `--solver-stats`
        // reports, zero otherwise (legacy reports never measured them).
        restarts: match json.get("restarts") {
            Some(value) => value.as_u64(&ctx)?,
            None => 0,
        },
        learnt_clauses: match json.get("learnt_clauses") {
            Some(value) => value.as_u64(&ctx)?,
            None => 0,
        },
        gc_runs: match json.get("gc_runs") {
            Some(value) => value.as_u64(&ctx)?,
            None => 0,
        },
        // Absent in pre-robustness reports: one attempt, no failure.
        attempts: match json.get("attempts") {
            Some(value) => u32::try_from(value.as_u64(&ctx)?).map_err(|_| ReadError {
                message: format!("{ctx}: attempts does not fit u32"),
            })?,
            None => 1,
        },
        failure: match json.get("failure") {
            None | Some(Json::Null) => None,
            Some(value) => Some(value.as_str(&ctx)?.to_string()),
        },
        // The shrinkage columns travel together: any one of them implies
        // all four (the emitter writes them as a block, or not at all).
        test_gen: match json.get("gen_tests") {
            None => None,
            Some(gen_tests) => Some(TestGenRecord {
                gen_tests: gen_tests.as_usize(&ctx)?,
                solutions_before: json.expect("solutions_before", &ctx)?.as_usize(&ctx)?,
                solutions_after: json.expect("solutions_after", &ctx)?.as_usize(&ctx)?,
                ambiguity_classes: json.expect("ambiguity_classes", &ctx)?.as_usize(&ctx)?,
            }),
        },
        // Observability traces never travel through the report JSON —
        // they live in the separate trace JSONL stream.
        obs: None,
        // Present only in `--timing` reports; excluded from resume
        // comparisons either way.
        wall_ms: match json.get("wall_ms") {
            Some(value) => value.as_f64(&ctx)?,
            None => 0.0,
        },
    })
}

/// Parses a `gatediag-campaign-v1` JSON report (the output of
/// [`CampaignReport::to_json`], with or without timing).
///
/// # Errors
///
/// Returns a [`ReadError`] for malformed JSON, a wrong/missing schema
/// tag, or unknown enum tokens.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{parse_report, run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let report = run_campaign(&spec);
/// let json = report.to_json(false);
/// let parsed = parse_report(&json).unwrap();
/// assert_eq!(parsed.to_json(false), json); // byte round-trip
/// ```
pub fn parse_report(text: &str) -> Result<CampaignReport, ReadError> {
    let root = parse_json(text)?;
    let schema = root.expect("schema", "report")?.as_str("schema")?;
    if schema != CAMPAIGN_SCHEMA {
        return err(format!(
            "unsupported schema `{schema}` (expected `{CAMPAIGN_SCHEMA}`)"
        ));
    }
    let matrix = root.expect("matrix", "report")?;
    let strings = |key: &str| -> Result<Vec<String>, ReadError> {
        matrix
            .expect(key, "matrix")?
            .as_arr(key)?
            .iter()
            .map(|v| Ok(v.as_str(key)?.to_string()))
            .collect()
    };
    let circuits = strings("circuits")?;
    let fault_models = strings("fault_models")?
        .iter()
        .map(|name| {
            FaultModel::parse(name)
                .map_or_else(|| err(format!("matrix: unknown fault model `{name}`")), Ok)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let engines = strings("engines")?
        .iter()
        .map(|name| {
            EngineKind::parse(name)
                .map_or_else(|| err(format!("matrix: unknown engine `{name}`")), Ok)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let error_counts = matrix
        .expect("error_counts", "matrix")?
        .as_arr("error_counts")?
        .iter()
        .map(|v| v.as_usize("error_counts"))
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = matrix
        .expect("seeds", "matrix")?
        .as_arr("seeds")?
        .iter()
        .map(|v| v.as_u64("seeds"))
        .collect::<Result<Vec<_>, _>>()?;
    // The sequential axes are present only when the matrix has a
    // sequential engine; an absent axis defaults to the spec default
    // (and is never re-emitted for a purely combinational matrix, so the
    // byte round-trip holds either way).
    let usizes_or = |key: &str, default: Vec<usize>| -> Result<Vec<usize>, ReadError> {
        match matrix.get(key) {
            None => Ok(default),
            Some(value) => value
                .as_arr(key)?
                .iter()
                .map(|v| v.as_usize(key))
                .collect::<Result<Vec<_>, _>>()
                .map_err(ReadError::from),
        }
    };
    let frames = usizes_or("frames", vec![3])?;
    let seq_lens = usizes_or("seq_lens", vec![4])?;
    let k = match matrix.expect("k", "matrix")? {
        Json::Null => None,
        // Legacy emitters wrote the string "p" for "k = p per instance".
        Json::Str(token) if token == "p" => None,
        value => Some(value.as_usize("k")?),
    };
    // Budget fields are absent in pre-budget reports: treat as unlimited.
    let opt_limit = |key: &str| -> Result<Option<u64>, ReadError> {
        matrix.get(key).map_or(Ok(None), |v| Ok(v.as_opt_u64(key)?))
    };
    // Chaos and retry are absent in pre-robustness reports: off / the
    // defaults (which is what those runs effectively used — the runner
    // had no retry loop, so every record took exactly one attempt).
    let chaos = match matrix.get("chaos") {
        None | Some(Json::Null) => None,
        Some(obj) => Some(ChaosConfig {
            seed: obj.expect("seed", "chaos")?.as_u64("chaos seed")?,
            rate_ppm: u32::try_from(obj.expect("rate_ppm", "chaos")?.as_u64("chaos rate_ppm")?)
                .map_err(|_| ReadError {
                    message: "chaos rate_ppm does not fit u32".to_string(),
                })?,
        }),
    };
    let retry = match matrix.get("retry") {
        None => RetryPolicy::default(),
        Some(obj) => {
            let token = obj.expect("retry_on", "retry")?.as_str("retry_on")?;
            let Some(retry_on) = RetryOn::parse(token) else {
                return err(format!("retry: unknown retry_on `{token}`"));
            };
            RetryPolicy {
                max_attempts: u32::try_from(
                    obj.expect("max_attempts", "retry")?
                        .as_u64("retry max_attempts")?,
                )
                .map_err(|_| ReadError {
                    message: "retry max_attempts does not fit u32".to_string(),
                })?,
                backoff_ms: obj
                    .expect("backoff_ms", "retry")?
                    .as_u64("retry backoff_ms")?,
                retry_on,
            }
        }
    };
    // Absent (every legacy report, and campaigns without the phase) or
    // null means "test generation off".
    let test_gen = match matrix.get("test_gen") {
        None | Some(Json::Null) => None,
        Some(obj) => {
            let mode = obj.expect("mode", "test_gen")?.as_str("test_gen mode")?;
            if mode != "sat" {
                return err(format!("test_gen: unknown mode `{mode}`"));
            }
            Some(TestGenSpec {
                rounds: obj
                    .expect("rounds", "test_gen")?
                    .as_usize("test_gen rounds")?,
            })
        }
    };
    // Absent (legacy and default reports) means the extended solver
    // statistics were not emitted.
    let solver_stats = match matrix.get("solver_stats") {
        None | Some(Json::Null) => false,
        Some(value) => value.as_bool("solver_stats")?,
    };
    let bench_warnings = match matrix.get("bench_warnings") {
        None => Vec::new(),
        Some(value) => value
            .as_arr("bench_warnings")?
            .iter()
            .map(|v| Ok(v.as_str("bench_warnings")?.to_string()))
            .collect::<Result<Vec<_>, ReadError>>()?,
    };
    let instances = root.expect("instances", "report")?.as_arr("instances")?;
    let records = instances
        .iter()
        .enumerate()
        .map(|(i, json)| parse_record(json, i))
        .collect::<Result<Vec<_>, _>>()?;
    // A report with two records claiming the same instance identity is
    // corrupt (e.g. a concatenation of two checkpoints): the resume
    // machinery would silently pick one of them, so reject here.
    {
        let mut seen = std::collections::HashSet::new();
        for (i, r) in records.iter().enumerate() {
            if !seen.insert((
                r.circuit.as_str(),
                r.fault_model,
                r.p,
                r.seed,
                r.engine,
                r.frames,
                r.seq_len,
            )) {
                return err(format!(
                    "instance {i}: duplicate record for ({}, {}, p={}, seed={}, {})",
                    r.circuit,
                    r.fault_model.name(),
                    r.p,
                    r.seed,
                    r.engine.name()
                ));
            }
        }
    }
    Ok(CampaignReport {
        circuits,
        fault_models,
        error_counts,
        seeds,
        engines,
        frames,
        seq_lens,
        tests: matrix.expect("tests", "matrix")?.as_usize("tests")?,
        // Absent in legacy reports; `None` means "unknown" and skips the
        // resume-time limit check.
        max_test_vectors: match matrix.get("max_test_vectors") {
            Some(value) => Some(value.as_usize("max_test_vectors")?),
            None => None,
        },
        k,
        max_solutions: matrix
            .expect("max_solutions", "matrix")?
            .as_usize("max_solutions")?,
        conflict_budget: matrix
            .expect("conflict_budget", "matrix")?
            .as_opt_u64("conflict_budget")?,
        work_budget: opt_limit("work_budget")?,
        deadline_ms: opt_limit("deadline_ms")?,
        chaos,
        retry,
        test_gen,
        solver_stats,
        bench_warnings,
        records,
    })
}

/// [`parse_report`] over raw bytes: non-UTF8 input (a corrupted or
/// binary-garbage checkpoint) returns a clean [`ReadError`] instead of
/// forcing every caller to handle the conversion. This is the entry
/// point the CLI resume path uses — a crash can leave *anything* on
/// disk, and resume must degrade to an error message, never a panic.
pub fn parse_report_bytes(bytes: &[u8]) -> Result<CampaignReport, ReadError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ReadError {
        message: format!("report is not valid UTF-8: {e}"),
    })?;
    parse_report(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_errors_surface_with_their_offset() {
        let e = parse_report("{\"schema\": ").expect_err("truncated doc accepted");
        assert!(e.message.contains("JSON parse error at byte"), "{e}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = r#"{"schema": "something-else", "matrix": {}, "instances": []}"#;
        let e = parse_report(text).expect_err("wrong schema accepted");
        assert!(e.message.contains("unsupported schema"));
    }

    #[test]
    fn legacy_k_p_token_is_accepted() {
        // A minimal legacy-style report: k = "p", no budget fields.
        let text = r#"{
  "schema": "gatediag-campaign-v1",
  "matrix": {
    "circuits": ["c17"],
    "fault_models": ["gate-change"],
    "error_counts": [1],
    "seeds": [1],
    "engines": ["bsat"],
    "tests": 8,
    "k": "p",
    "max_solutions": 10000,
    "conflict_budget": null
  },
  "instances": []
}"#;
        let report = parse_report(text).expect("legacy report must parse");
        assert_eq!(report.k, None);
        assert_eq!(report.work_budget, None);
        assert_eq!(report.deadline_ms, None);
        assert_eq!(report.max_test_vectors, None, "legacy = unknown");
        // Re-emission uses the one-type spelling.
        assert!(report.to_json(false).contains("\"k\": null"));
    }
}
