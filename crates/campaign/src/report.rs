//! Campaign reports: per-instance records, JSON/CSV emitters and the
//! paper-style summary table.
//!
//! Everything in a report except `wall_ms` is deterministic: injection,
//! test generation and every engine are pure functions of the instance's
//! seed, and the runner merges records in matrix order. The emitters
//! therefore exclude timing by default, which makes the JSON and CSV
//! output **byte-identical across worker counts** — the property the
//! campaign drift tests pin. Pass `include_timing = true` to add the
//! wall-clock column for local profiling.

use crate::spec::{CampaignSpec, RetryPolicy, TestGenSpec};
use gatediag_core::{ChaosConfig, EngineKind};
use gatediag_netlist::FaultModel;
use std::fmt::Write as _;

/// Why an instance did or did not produce a diagnosis.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InstanceStatus {
    /// The engine ran on a non-empty failing-test set.
    Ok,
    /// The circuit has too few eligible sites for `(fault_model, p)`.
    NotInjectable,
    /// The injected faults stayed unobservable within the random-vector
    /// budget (near-redundant logic); no diagnosis was attempted.
    NoFailingTests,
    /// The engine ran but a cooperative budget (work, conflicts or the
    /// wall deadline) preempted it before completion; the record holds
    /// the partial results. Instances the enumeration cap truncated stay
    /// `ok` with `complete = false` — `preempted` is reserved for the
    /// budget guards.
    Preempted,
    /// Every attempt at the instance panicked (a real engine bug, or
    /// injected chaos): the record carries the last failure reason in
    /// [`InstanceRecord::failure`] and the attempt count, and the rest of
    /// the campaign kept running.
    Failed,
}

impl InstanceStatus {
    /// All statuses, in a stable order.
    pub const ALL: [InstanceStatus; 5] = [
        InstanceStatus::Ok,
        InstanceStatus::NotInjectable,
        InstanceStatus::NoFailingTests,
        InstanceStatus::Preempted,
        InstanceStatus::Failed,
    ];

    /// Stable serialisation token.
    pub fn name(self) -> &'static str {
        match self {
            InstanceStatus::Ok => "ok",
            InstanceStatus::NotInjectable => "not-injectable",
            InstanceStatus::NoFailingTests => "no-failing-tests",
            InstanceStatus::Preempted => "preempted",
            InstanceStatus::Failed => "failed",
        }
    }

    /// Parses a serialisation token (the inverse of
    /// [`InstanceStatus::name`]).
    pub fn parse(text: &str) -> Option<InstanceStatus> {
        InstanceStatus::ALL.into_iter().find(|s| s.name() == text)
    }
}

/// Shrinkage measurements from the SAT-guided discriminating-test
/// generation phase (`--test-gen sat`); see
/// `gatediag_core::testgen`. Attached to a record only when the phase
/// actually ran — `None` on legacy reports, on campaigns with test
/// generation off, and on instances whose diagnosis was preempted
/// before the phase.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TestGenRecord {
    /// Confirmed discriminating tests the phase generated.
    pub gen_tests: usize,
    /// Candidate corrections entering the phase.
    pub solutions_before: usize,
    /// Candidate corrections surviving the generated tests
    /// (`<= solutions_before` always).
    pub solutions_after: usize,
    /// Ambiguity equivalence classes among the survivors — candidates no
    /// failing test can tell apart share a class.
    pub ambiguity_classes: usize,
}

/// All measurements for one instance of the campaign matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceRecord {
    /// Golden circuit name.
    pub circuit: String,
    /// Functional gate count of the golden circuit.
    pub gates: usize,
    /// Injected fault model.
    pub fault_model: FaultModel,
    /// Number of injected errors.
    pub p: usize,
    /// Injection/test seed.
    pub seed: u64,
    /// Diagnosis engine.
    pub engine: EngineKind,
    /// Time frames per sequence; `Some` exactly for sequential engines.
    pub frames: Option<usize>,
    /// Failing sequences requested; `Some` exactly for sequential
    /// engines (the sequential analogue of the matrix-wide `tests`).
    pub seq_len: Option<usize>,
    /// Correction size bound used (`spec.k` or `p`).
    pub k: usize,
    /// Failing tests collected (the diagnosis `m`).
    pub tests: usize,
    /// Outcome class.
    pub status: InstanceStatus,
    /// Implicated gates (union over solutions, or the BSIM mark union).
    pub candidates: usize,
    /// Candidate corrections reported (for BSIM: 1, the `G_max` set).
    pub solutions: usize,
    /// `false` when the enumeration was truncated by `max_solutions` or
    /// the conflict budget.
    pub complete: bool,
    /// Whether some real error site is among the candidates.
    pub hit: bool,
    /// Resolution quality over the solutions (paper Table 3): minimum
    /// per-solution average distance to the nearest real error site.
    /// Only meaningful when `solutions > 0` (the emitters write
    /// `null`/empty cells otherwise — the 0.0 default would read as a
    /// perfect diagnosis).
    pub quality_min: f64,
    /// Average per-solution average distance.
    pub quality_avg: f64,
    /// Maximum per-solution average distance.
    pub quality_max: f64,
    /// SAT conflicts (0 for the pure simulation engines).
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// SAT restarts. Always measured; emitted only on `--solver-stats`
    /// reports (see [`CampaignReport::solver_stats`]).
    pub restarts: u64,
    /// Learnt clauses retained at the end of the instance's last solve
    /// (a gauge, not a total). Same emission rule as `restarts`.
    pub learnt_clauses: u64,
    /// Clause-arena garbage collections. Same emission rule as
    /// `restarts`.
    pub gc_runs: u64,
    /// How many attempts the instance took (1 = first try succeeded).
    /// Deterministic: retries are triggered by deterministic panics or
    /// seeded chaos, never by wall-clock races.
    pub attempts: u32,
    /// The last failure reason, for [`InstanceStatus::Failed`] records —
    /// the panic payload, sanitised and truncated by the runner. `None`
    /// for every other status.
    pub failure: Option<String>,
    /// Discriminating-test-generation shrinkage columns; `Some` only when
    /// the campaign ran with `--test-gen sat` and the phase executed.
    pub test_gen: Option<TestGenRecord>,
    /// The instance's observability trace (spans + deterministic
    /// counters), collected only under [`CampaignSpec::collect_obs`].
    /// Never part of the JSON/CSV reports — it flows to the separate
    /// trace JSONL stream ([`CampaignReport::to_trace_jsonl`]). Its
    /// equality ignores the timing channel, so the drift contract
    /// extends over traces unchanged.
    pub obs: Option<gatediag_obs::ObsTrace>,
    /// Wall-clock time for the whole instance (injection + test
    /// generation + diagnosis), measured as the root `instance` span of
    /// the observability trace. Nondeterministic; excluded from the
    /// emitters unless requested.
    pub wall_ms: f64,
}

/// A completed campaign: the matrix echo plus one record per instance,
/// in matrix order.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignReport {
    /// Circuit names, in matrix order.
    pub circuits: Vec<String>,
    /// Fault models of the matrix.
    pub fault_models: Vec<FaultModel>,
    /// Error counts of the matrix.
    pub error_counts: Vec<usize>,
    /// Seeds of the matrix.
    pub seeds: Vec<u64>,
    /// Engines of the matrix.
    pub engines: Vec<EngineKind>,
    /// Time-frame axis for the sequential engines. Emitted in the JSON
    /// matrix only when some engine is sequential, so legacy reports
    /// round-trip byte-for-byte.
    pub frames: Vec<usize>,
    /// Failing-sequence-count axis for the sequential engines; same
    /// emission rule as `frames`.
    pub seq_lens: Vec<usize>,
    /// Failing tests requested per instance.
    pub tests: usize,
    /// Random-vector budget for failing-test generation. `None` only for
    /// reports parsed from legacy files that predate the field — it
    /// changes per-instance results, so the resume path validates it
    /// whenever it is known.
    pub max_test_vectors: Option<usize>,
    /// Explicit `k`, if the spec pinned one (`None` = `k = p`).
    pub k: Option<usize>,
    /// Per-instance enumeration cap.
    pub max_solutions: usize,
    /// Per-instance conflict budget.
    pub conflict_budget: Option<u64>,
    /// Per-instance deterministic work budget.
    pub work_budget: Option<u64>,
    /// Per-instance wall-clock deadline (nondeterministic, opt-in).
    pub deadline_ms: Option<u64>,
    /// Chaos injection config of the run (`None` = off). Echoed so a
    /// resume cannot silently mix chaos and clean records.
    pub chaos: Option<ChaosConfig>,
    /// Retry policy of the run.
    pub retry: RetryPolicy,
    /// Discriminating-test-generation settings (`None` = off). Echoed so
    /// a resume cannot silently mix shrunk and unshrunk records; emitted
    /// in the JSON matrix only when set, so legacy reports round-trip
    /// byte-for-byte.
    pub test_gen: Option<TestGenSpec>,
    /// Whether the extended solver-statistics columns are emitted.
    /// Echoed in the JSON matrix only when `true` (legacy reports stay
    /// byte-identical) and limit-checked on resume: a report with the
    /// columns and one without would not merge into either fresh run.
    pub solver_stats: bool,
    /// Circuit-loading warnings surfaced in the report header (lenient
    /// `.bench` directory loads). Informational only.
    pub bench_warnings: Vec<String>,
    /// One record per instance, in matrix order.
    pub records: Vec<InstanceRecord>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Compact instance identity used by the trace stream:
/// `circuit/fault_model/p{p}/s{seed}/engine`, with `/f{frames}/l{seq_len}`
/// appended for sequential instances. Matches the resume key one-to-one.
fn instance_label(r: &InstanceRecord) -> String {
    let mut label = format!(
        "{}/{}/p{}/s{}/{}",
        r.circuit,
        r.fault_model.name(),
        r.p,
        r.seed,
        r.engine.name()
    );
    if let (Some(frames), Some(seq_len)) = (r.frames, r.seq_len) {
        let _ = write!(label, "/f{frames}/l{seq_len}");
    }
    label
}

/// RFC-4180 field quoting for user-controlled values (circuit names come
/// from `.bench` file stems, which may contain commas or quotes).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl CampaignReport {
    /// Bundles the runner's records with the spec's matrix echo.
    pub fn new(spec: &CampaignSpec, records: Vec<InstanceRecord>) -> CampaignReport {
        CampaignReport {
            circuits: spec.circuits.iter().map(|(n, _)| n.clone()).collect(),
            fault_models: spec.fault_models.clone(),
            error_counts: spec.error_counts.clone(),
            seeds: spec.seeds.clone(),
            engines: spec.engines.clone(),
            frames: spec.frames.clone(),
            seq_lens: spec.seq_lens.clone(),
            tests: spec.tests,
            max_test_vectors: Some(spec.max_test_vectors),
            k: spec.k,
            max_solutions: spec.max_solutions,
            conflict_budget: spec.conflict_budget,
            work_budget: spec.work_budget,
            deadline_ms: spec.deadline_ms,
            chaos: spec.chaos,
            retry: spec.retry,
            test_gen: spec.test_gen,
            solver_stats: spec.solver_stats,
            bench_warnings: spec.bench_warnings.clone(),
            records,
        }
    }

    /// Records that actually ran an engine.
    pub fn ok_records(&self) -> impl Iterator<Item = &InstanceRecord> {
        self.records
            .iter()
            .filter(|r| r.status == InstanceStatus::Ok)
    }

    /// Serialises the report as JSON with a stable field order.
    ///
    /// With `include_timing = false` (the default for published
    /// artifacts) the output is byte-identical across runs and worker
    /// counts; `true` adds the nondeterministic `wall_ms` field.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"gatediag-campaign-v1\",\n  \"matrix\": {\n");
        let _ = writeln!(
            out,
            "    \"circuits\": [{}],",
            self.circuits
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "    \"fault_models\": [{}],",
            self.fault_models
                .iter()
                .map(|m| json_str(m.name()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "    \"error_counts\": [{}],",
            self.error_counts
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "    \"seeds\": [{}],",
            self.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "    \"engines\": [{}],",
            self.engines
                .iter()
                .map(|e| json_str(e.name()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // The sequential axes only exist when a sequential engine is in
        // the matrix; omitting them otherwise keeps purely combinational
        // (and every legacy) report byte-identical.
        if self.engines.iter().any(|e| e.is_sequential()) {
            let _ = writeln!(
                out,
                "    \"frames\": [{}],",
                self.frames
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "    \"seq_lens\": [{}],",
                self.seq_lens
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let _ = writeln!(out, "    \"tests\": {},", self.tests);
        // Emitted only when known so that legacy reports (which lack the
        // field) still round-trip byte-for-byte through the reader.
        if let Some(max_test_vectors) = self.max_test_vectors {
            let _ = writeln!(out, "    \"max_test_vectors\": {max_test_vectors},");
        }
        // "k = p per instance" serialises as `null` so the field has ONE
        // type (number or null). Legacy reports used the string "p",
        // which the reader still accepts.
        let _ = writeln!(
            out,
            "    \"k\": {},",
            self.k.map_or("null".to_string(), |k| k.to_string())
        );
        let _ = writeln!(out, "    \"max_solutions\": {},", self.max_solutions);
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
        let _ = writeln!(
            out,
            "    \"conflict_budget\": {},",
            opt(self.conflict_budget)
        );
        let _ = writeln!(out, "    \"work_budget\": {},", opt(self.work_budget));
        let _ = writeln!(out, "    \"deadline_ms\": {},", opt(self.deadline_ms));
        match self.chaos {
            None => {
                let _ = writeln!(out, "    \"chaos\": null,");
            }
            Some(chaos) => {
                let _ = writeln!(
                    out,
                    "    \"chaos\": {{\"seed\": {}, \"rate_ppm\": {}}},",
                    chaos.seed, chaos.rate_ppm
                );
            }
        }
        let _ = writeln!(
            out,
            "    \"retry\": {{\"max_attempts\": {}, \"backoff_ms\": {}, \"retry_on\": {}}},",
            self.retry.max_attempts,
            self.retry.backoff_ms,
            json_str(self.retry.retry_on.name())
        );
        // Emitted only when the phase is on, so reports from campaigns
        // without it — including every legacy report — are unchanged.
        if let Some(tg) = self.test_gen {
            let _ = writeln!(
                out,
                "    \"test_gen\": {{\"mode\": \"sat\", \"rounds\": {}}},",
                tg.rounds
            );
        }
        // Same conditional-emission rule: the flag appears only when the
        // extended columns do, so every legacy report is unchanged.
        if self.solver_stats {
            let _ = writeln!(out, "    \"solver_stats\": true,");
        }
        let _ = writeln!(
            out,
            "    \"bench_warnings\": [{}]",
            self.bench_warnings
                .iter()
                .map(|w| json_str(w))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  },\n  \"instances\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"circuit\": {}, \"gates\": {}, \"fault_model\": {}, \"p\": {}, \
                 \"seed\": {}, \"engine\": {}, \"k\": {}, \"tests\": {}, \"status\": {}, \
                 \"candidates\": {}, \"solutions\": {}, \"complete\": {}, \"hit\": {}, \
                 \"quality_min\": {}, \"quality_avg\": {}, \"quality_max\": {}, \
                 \"conflicts\": {}, \"decisions\": {}, \"propagations\": {}",
                json_str(&r.circuit),
                r.gates,
                json_str(r.fault_model.name()),
                r.p,
                r.seed,
                json_str(r.engine.name()),
                r.k,
                r.tests,
                json_str(r.status.name()),
                r.candidates,
                r.solutions,
                r.complete,
                r.hit,
                // A record with no solutions has no quality to report —
                // a literal 0.0 would read as "a real error site found".
                if r.solutions == 0 {
                    "null".to_string()
                } else {
                    json_f64(r.quality_min)
                },
                if r.solutions == 0 {
                    "null".to_string()
                } else {
                    json_f64(r.quality_avg)
                },
                if r.solutions == 0 {
                    "null".to_string()
                } else {
                    json_f64(r.quality_max)
                },
                r.conflicts,
                r.decisions,
                r.propagations,
            );
            // Extended solver statistics only on `--solver-stats` reports
            // — absent fields, not zeros, keep legacy records identical.
            if self.solver_stats {
                let _ = write!(
                    out,
                    ", \"restarts\": {}, \"learnt_clauses\": {}, \"gc_runs\": {}",
                    r.restarts, r.learnt_clauses, r.gc_runs
                );
            }
            // Sequential columns only on sequential records, matching the
            // matrix-level emission rule.
            if let (Some(frames), Some(seq_len)) = (r.frames, r.seq_len) {
                let _ = write!(out, ", \"frames\": {frames}, \"seq_len\": {seq_len}");
            }
            // Shrinkage columns only when the phase ran: absent fields —
            // not nulls — keep legacy records byte-identical.
            if let Some(tg) = r.test_gen {
                let _ = write!(
                    out,
                    ", \"gen_tests\": {}, \"solutions_before\": {}, \
                     \"solutions_after\": {}, \"ambiguity_classes\": {}",
                    tg.gen_tests, tg.solutions_before, tg.solutions_after, tg.ambiguity_classes
                );
            }
            let _ = write!(
                out,
                ", \"attempts\": {}, \"failure\": {}",
                r.attempts,
                r.failure.as_deref().map_or("null".to_string(), json_str)
            );
            if include_timing {
                let _ = write!(out, ", \"wall_ms\": {}", json_f64(r.wall_ms));
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialises the records as CSV (one row per instance, matrix
    /// order). Timing is excluded unless `include_timing` is set, for the
    /// same determinism reasons as [`CampaignReport::to_json`].
    pub fn to_csv(&self, include_timing: bool) -> String {
        let mut out = String::from(
            "circuit,gates,fault_model,p,seed,engine,frames,seq_len,k,tests,status,candidates,\
             solutions,complete,hit,quality_min,quality_avg,quality_max,conflicts,decisions,\
             propagations",
        );
        // Extended solver-statistics columns are header-conditional, the
        // same mechanism as the trailing `wall_ms` column: reports from
        // campaigns without `--solver-stats` keep the legacy header.
        if self.solver_stats {
            out.push_str(",restarts,learnt_clauses,gc_runs");
        }
        out.push_str(
            ",gen_tests,solutions_before,solutions_after,ambiguity_classes,attempts,failure",
        );
        if include_timing {
            out.push_str(",wall_ms");
        }
        out.push('\n');
        for r in &self.records {
            // Empty quality cells when there are no solutions (see
            // `to_json`).
            let quality = if r.solutions == 0 {
                ",,".to_string()
            } else {
                format!(
                    "{:.4},{:.4},{:.4}",
                    r.quality_min, r.quality_avg, r.quality_max
                )
            };
            // Empty sequential cells on combinational records, matching
            // the shrinkage-cell convention below.
            let seq = match (r.frames, r.seq_len) {
                (Some(frames), Some(seq_len)) => format!("{frames},{seq_len}"),
                _ => ",".to_string(),
            };
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(&r.circuit),
                r.gates,
                r.fault_model,
                r.p,
                r.seed,
                r.engine,
                seq,
                r.k,
                r.tests,
                r.status.name(),
                r.candidates,
                r.solutions,
                r.complete,
                r.hit,
                quality,
                r.conflicts,
                r.decisions,
                r.propagations,
            );
            if self.solver_stats {
                let _ = write!(out, ",{},{},{}", r.restarts, r.learnt_clauses, r.gc_runs);
            }
            // Empty shrinkage cells when the phase did not run, matching
            // the quality-cell convention.
            match r.test_gen {
                None => out.push_str(",,,,"),
                Some(tg) => {
                    let _ = write!(
                        out,
                        ",{},{},{},{}",
                        tg.gen_tests, tg.solutions_before, tg.solutions_after, tg.ambiguity_classes
                    );
                }
            }
            let _ = write!(
                out,
                ",{},{}",
                r.attempts,
                csv_field(r.failure.as_deref().unwrap_or(""))
            );
            if include_timing {
                let _ = write!(out, ",{:.4}", r.wall_ms);
            }
            out.push('\n');
        }
        out
    }

    /// Serialises the collected observability traces as JSONL: one
    /// [`gatediag_obs::TraceLine`] per record that carries a trace, in
    /// matrix order. With `include_timing = false` the stream contains
    /// only the deterministic channel and is byte-identical across
    /// worker counts; `true` adds per-span `wall_ns` and the
    /// `nd_counters` object. Empty when the campaign ran without
    /// `collect_obs`.
    pub fn to_trace_jsonl(&self, include_timing: bool) -> String {
        let mut out = String::new();
        for r in &self.records {
            let Some(trace) = &r.obs else { continue };
            let line = gatediag_obs::TraceLine {
                instance: instance_label(r),
                trace: trace.clone(),
            };
            out.push_str(&line.to_json(include_timing));
            out.push('\n');
        }
        out
    }

    /// Renders the aggregated per-phase profile from the collected
    /// traces: one row per distinct span path (parent/child names),
    /// first-appearance order, with call counts, total wall time and the
    /// share of the total root-span time — plus the top hotspots and the
    /// fraction of instance wall time attributed to named phases.
    /// Wall-clock based and therefore nondeterministic: for terminal
    /// eyes only, never for byte-compared artifacts.
    pub fn profile_table(&self) -> String {
        use std::collections::HashMap;
        let mut order: Vec<String> = Vec::new();
        let mut agg: HashMap<String, (u64, u64)> = HashMap::new(); // path -> (calls, wall_ns)
        let mut root_ns: u64 = 0;
        let mut phase_ns: u64 = 0; // depth-1 spans: the attributed share
        for r in &self.records {
            let Some(trace) = &r.obs else { continue };
            let mut stack: Vec<String> = Vec::new();
            for span in &trace.spans {
                stack.truncate(span.depth);
                let path = match stack.last() {
                    Some(parent) => format!("{parent}/{}", span.name),
                    None => span.name.clone(),
                };
                if span.depth == 0 {
                    root_ns += span.wall_ns;
                } else if span.depth == 1 {
                    phase_ns += span.wall_ns;
                }
                let entry = agg.entry(path.clone()).or_insert_with(|| {
                    order.push(path.clone());
                    (0, 0)
                });
                entry.0 += 1;
                entry.1 += span.wall_ns;
                stack.push(path);
            }
        }
        if order.is_empty() {
            return "profile: no traces collected\n".to_string();
        }
        let share = |ns: u64| {
            if root_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / root_ns as f64
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>7}",
            "phase", "calls", "total ms", "share"
        );
        out.push_str(&"-".repeat(70));
        out.push('\n');
        for path in &order {
            let (calls, ns) = agg[path];
            // Indent by nesting depth so the table reads as the span tree.
            let depth = path.matches('/').count();
            let label = format!("{}{}", "  ".repeat(depth), path.rsplit('/').next().unwrap());
            let _ = writeln!(
                out,
                "{label:<40} {calls:>8} {:>12.3} {:>6.1}%",
                ns as f64 / 1e6,
                share(ns)
            );
        }
        let _ = writeln!(
            out,
            "attributed to named phases: {:.1}% of {:.3} ms total instance time",
            share(phase_ns),
            root_ns as f64 / 1e6
        );
        // Hotspots: the non-root paths with the most total wall time.
        let mut hot: Vec<(&String, (u64, u64))> = order
            .iter()
            .map(|p| (p, agg[p]))
            .filter(|(p, _)| p.contains('/'))
            .collect();
        hot.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        out.push_str("top hotspots:\n");
        for (path, (_, ns)) in hot.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<38} {:>12.3} ms {:>6.1}%",
                path,
                *ns as f64 / 1e6,
                share(*ns)
            );
        }
        out
    }

    /// Renders the paper-style summary: one row per
    /// `(circuit, fault model, p)`, one column per engine, aggregated
    /// over seeds. Each cell reads `hits/oks  sol  q̄`: how many seeds hit
    /// a real error site out of the seeds that ran, the mean solution
    /// count, and the mean average-distance quality.
    ///
    /// Built in **one indexed pass** over the records: rows are interned
    /// in first-appearance order (a hash lookup instead of the old
    /// `Vec::contains` scan with its per-record `String` clones) and each
    /// record folds straight into its `(row, engine)` cell, so rendering
    /// is `O(records + rows × engines)` instead of the old
    /// `O(rows × engines × records)` rescan. Output is byte-identical to
    /// the scanning implementation.
    pub fn summary_table(&self) -> String {
        #[derive(Clone, Default)]
        struct Cell {
            ok: usize,
            hits: usize,
            solutions: usize,
            quality: f64,
            with_solutions: usize,
        }
        use std::collections::HashMap;
        // Engine -> *aggregation* column. Distinct engines get distinct
        // slots; a duplicated engine in the matrix echo shares one slot,
        // so its duplicate display columns render identical cells — the
        // same output the old per-column rescan produced. Engines not in
        // the echo have no slot (the old scan never visited them).
        let mut engine_slot: HashMap<EngineKind, usize> = HashMap::new();
        for &e in &self.engines {
            let next = engine_slot.len();
            engine_slot.entry(e).or_insert(next);
        }
        let slots = engine_slot.len();
        // Row interning: nested map so the lookup key borrows the
        // record's circuit name (one String clone per *row*, not per
        // record).
        let mut rows: Vec<(&str, FaultModel, usize)> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut row_index: HashMap<&str, HashMap<(FaultModel, usize), usize>> = HashMap::new();
        let mut cells: Vec<Cell> = Vec::new();
        for r in &self.records {
            let inner = row_index.entry(r.circuit.as_str()).or_default();
            let row = *inner.entry((r.fault_model, r.p)).or_insert_with(|| {
                rows.push((r.circuit.as_str(), r.fault_model, r.p));
                cells.resize(rows.len() * slots, Cell::default());
                rows.len() - 1
            });
            if r.status != InstanceStatus::Ok {
                continue;
            }
            let Some(&slot) = engine_slot.get(&r.engine) else {
                continue;
            };
            let cell = &mut cells[row * slots + slot];
            cell.ok += 1;
            cell.hits += usize::from(r.hit);
            cell.solutions += r.solutions;
            // A run with no solutions has no quality; averaging its 0.0
            // in would make an engine that found nothing look perfect.
            if r.solutions > 0 {
                cell.with_solutions += 1;
                cell.quality += r.quality_avg;
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{:<12} {:<15} {:>2} ", "circuit", "fault-model", "p");
        for e in &self.engines {
            let _ = write!(out, "| {:>16} ", e.name());
        }
        out.push('\n');
        let width = 32 + self.engines.len() * 19;
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for (row, (circuit, model, p)) in rows.iter().enumerate() {
            let _ = write!(out, "{circuit:<12} {:<15} {p:>2} ", model.name());
            for engine in &self.engines {
                let cell = &cells[row * slots + engine_slot[engine]];
                if cell.ok == 0 {
                    let _ = write!(out, "| {:>16} ", "-");
                } else {
                    let quality = if cell.with_solutions == 0 {
                        "   -".to_string()
                    } else {
                        format!("{:>4.2}", cell.quality / cell.with_solutions as f64)
                    };
                    let text = format!(
                        "{}/{} {:>5.1} {quality}",
                        cell.hits,
                        cell.ok,
                        cell.solutions as f64 / cell.ok as f64,
                    );
                    let _ = write!(out, "| {text:>16} ");
                }
            }
            out.push('\n');
        }
        out.push_str(
            "cells: hits/ok-runs  mean #solutions  mean avg-distance quality over runs \
             with solutions (0 = a real error site, - = none)\n",
        );
        // Discriminating-test-generation aggregate, only when some record
        // actually carries the shrinkage columns.
        let shrink: Vec<TestGenRecord> = self.records.iter().filter_map(|r| r.test_gen).collect();
        if !shrink.is_empty() {
            let gen: usize = shrink.iter().map(|t| t.gen_tests).sum();
            let before: usize = shrink.iter().map(|t| t.solutions_before).sum();
            let after: usize = shrink.iter().map(|t| t.solutions_after).sum();
            let shrunk = shrink
                .iter()
                .filter(|t| t.solutions_after < t.solutions_before)
                .count();
            let _ = writeln!(
                out,
                "test-gen: {} instances, {gen} generated tests, \
                 solutions {before} -> {after} ({shrunk} instances shrunk)",
                shrink.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;
    use gatediag_netlist::c17;

    fn small_report() -> CampaignReport {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange];
        spec.error_counts = vec![1];
        spec.seeds = vec![1];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
        run_campaign(&spec)
    }

    #[test]
    fn json_has_schema_and_one_object_per_instance() {
        let report = small_report();
        let json = report.to_json(false);
        assert!(json.contains("\"schema\": \"gatediag-campaign-v1\""));
        assert_eq!(
            json.matches("\"fault_model\":").count(),
            report.records.len()
        );
        assert!(!json.contains("wall_ms"));
        assert!(report.to_json(true).contains("wall_ms"));
    }

    #[test]
    fn csv_row_count_matches() {
        let report = small_report();
        let csv = report.to_csv(false);
        assert_eq!(csv.lines().count(), report.records.len() + 1);
        assert!(csv.starts_with("circuit,"));
        assert!(!csv.contains("wall_ms"));
        assert!(report
            .to_csv(true)
            .lines()
            .next()
            .unwrap()
            .ends_with("wall_ms"));
    }

    #[test]
    fn summary_has_a_row_per_group_and_column_per_engine() {
        let report = small_report();
        let table = report.summary_table();
        assert!(table.contains("bsim"));
        assert!(table.contains("bsat"));
        assert!(table.contains("c17"));
        assert!(table.contains("gate-change"));
    }

    #[test]
    fn duplicate_engine_columns_render_identically() {
        // A repeated engine in the matrix echo must render the same
        // aggregated cell in every one of its columns (the old
        // per-column rescan did; the indexed pass must too).
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange];
        spec.error_counts = vec![1];
        spec.seeds = vec![1, 2];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat, EngineKind::Bsim];
        let table = run_campaign(&spec).summary_table();
        for line in table.lines().skip(2) {
            let columns: Vec<&str> = line.split('|').collect();
            if columns.len() == 4 {
                assert_eq!(
                    columns[1], columns[3],
                    "duplicate bsim columns differ: {line}"
                );
                assert!(
                    columns[1].trim() != "-",
                    "bsim records folded into the wrong column: {line}"
                );
            }
        }
    }

    #[test]
    fn zero_solution_records_report_null_quality() {
        // p = 50 on c17 is not injectable: solutions stay 0 and the
        // quality triple must serialise as null / empty, never 0.0.
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange];
        spec.error_counts = vec![50];
        spec.seeds = vec![1];
        spec.engines = vec![EngineKind::Bsat];
        let report = run_campaign(&spec);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].solutions, 0);
        let json = report.to_json(false);
        assert!(json.contains("\"quality_min\": null"));
        assert!(!json.contains("\"quality_min\": 0.0000"));
        let csv = report.to_csv(false);
        assert!(csv.lines().nth(1).unwrap().contains(",,,"));
        // The summary shows "-" instead of a perfect-looking 0.00 mean.
        assert!(report.summary_table().contains('-'));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn csv_fields_are_quoted_when_needed() {
        assert_eq!(csv_field("c17"), "c17");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }
}
