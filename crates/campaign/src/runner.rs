//! The parallel campaign runner.
//!
//! Each [`InstanceSpec`] is one work item: inject the faults, collect
//! failing tests, run the instance's engine, score the result. Items are
//! fanned out over [`gatediag_sim::parallel_map_init`] (work-stealing over
//! a shared index) and merged back **in instance order**, so the report is
//! bit-identical for every worker count — the same determinism contract as
//! every other parallel flow in this workspace.
//!
//! Two design points keep that contract airtight:
//!
//! * every record is a pure function of `(spec, instance index)` — the
//!   faulty circuit, the test set and the engine run are all rebuilt from
//!   the instance's own seed, never shared across items;
//! * engines run with [`Parallelism::Sequential`] *inside* a work item:
//!   the campaign level owns the worker pool, which avoids nested pools
//!   oversubscribing the machine, and makes each item's cost independent
//!   of the schedule. (The per-instance engines still reuse their
//!   internal incremental state across the instance's tests and candidate
//!   sets — the engine-reuse machinery of PRs 2-3.)
//!
//! Wall-clock time is the one nondeterministic measurement; it is
//! recorded per instance but excluded from reports unless explicitly
//! requested (see [`crate::report::CampaignReport::to_json`]).

use crate::report::{CampaignReport, InstanceRecord, InstanceStatus, TestGenRecord};
use crate::spec::{CampaignSpec, InstanceSpec, RetryOn};
use gatediag_core::budget::Truncation;
use gatediag_core::{
    run_diagnose, solution_quality, ChaosPolicy, DiagnoseRequest, DiagnoseStatus, EngineKind,
};
use gatediag_netlist::{FaultModel, GateId};
use gatediag_sim::{parallel_map_init_isolated, Parallelism};
use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Autosave policy for long campaigns: after every `every` resolved
/// instances the runner atomically rewrites `path` with a valid partial
/// `gatediag-campaign-v1` report (the records resolved so far, in matrix
/// order). A SIGKILL mid-campaign then loses at most one checkpoint
/// interval: `gatediag campaign --resume <path>` ingests the checkpoint
/// through the ordinary resume machinery and re-runs only the missing
/// instances.
///
/// Writes are crash-atomic — the report is written to `<path>.tmp`,
/// flushed, and renamed over `path` — so the checkpoint file is always a
/// complete, parseable report, never a torn prefix. Checkpoint IO
/// failures are reported to stderr and do not abort the campaign (the
/// checkpoint is an insurance policy, not a result).
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Where the checkpoint report lives.
    pub path: PathBuf,
    /// Checkpoint after this many resolved instances (minimum 1).
    pub every: usize,
}

/// Runs every instance of the campaign and collects the merged report.
///
/// Instances run through the crash-isolated pool path: a panicking
/// instance (an engine bug, or injected chaos) is retried per
/// [`CampaignSpec::retry`] and, if every attempt fails, recorded as
/// [`InstanceStatus::Failed`] with the panic reason — one poisoned
/// instance never takes down the campaign.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// // Shrink the matrix for a doctest-sized run.
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let report = run_campaign(&spec);
/// assert_eq!(report.records.len(), spec.instances().len());
/// ```
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_checkpointed(spec, None)
}

/// [`run_campaign`] with optional autosave checkpoints.
pub fn run_campaign_checkpointed(
    spec: &CampaignSpec,
    checkpoint: Option<&CheckpointPolicy>,
) -> CampaignReport {
    let instances = spec.instances();
    let slots = vec![None; instances.len()];
    let records = fill_missing(spec, &instances, slots, checkpoint);
    CampaignReport::new(spec, records)
}

/// Identity of one instance inside a report — the resume key. The two
/// trailing `Option`s are the sequential axes (`frames`, `seq_len`);
/// `None` for combinational engines. Keying on them (rather than
/// limit-checking them) lets a resume legitimately *extend* the
/// sequential matrix while still guaranteeing a record produced under
/// different sequential parameters is never reused.
type InstanceKey<'a> = (
    &'a str,
    FaultModel,
    usize,
    u64,
    EngineKind,
    Option<usize>,
    Option<usize>,
);

fn instance_key<'a>(spec: &'a CampaignSpec, inst: &InstanceSpec) -> InstanceKey<'a> {
    (
        spec.circuits[inst.circuit].0.as_str(),
        inst.fault_model,
        inst.p,
        inst.seed,
        inst.engine,
        inst.frames,
        inst.seq_len,
    )
}

fn record_key(record: &InstanceRecord) -> InstanceKey<'_> {
    (
        record.circuit.as_str(),
        record.fault_model,
        record.p,
        record.seed,
        record.engine,
        record.frames,
        record.seq_len,
    )
}

/// Resumes a campaign from a previous report: instances whose
/// `(circuit, fault model, p, seed, engine)` identity already has a
/// record in `previous` are *skipped* (the old record is reused
/// verbatim, including `preempted` ones); only the missing instances
/// run. Old and new records merge **in matrix order**, so — because
/// every record is a pure function of `(spec, instance)` — a resumed
/// run's report is byte-identical (timing excluded) to a fresh full run
/// of the same spec.
///
/// The spec may *extend* the matrix of the previous run (more seeds,
/// circuits, engines, fault models, error counts) or shrink it (records
/// with no matching instance are dropped), but the per-instance limits
/// (`tests`, `k`, `max_solutions` and the budgets) must match: a record
/// produced under different limits is not the record a fresh run would
/// produce, so resuming across limit changes is rejected.
///
/// # Errors
///
/// Returns a description of the first mismatched limit.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{resume_campaign, run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let partial = run_campaign(&spec);
/// // Extend the matrix by a seed and resume: seed-1 records are reused.
/// spec.seeds = vec![1, 2];
/// let resumed = resume_campaign(&spec, &partial).unwrap();
/// assert_eq!(resumed.to_json(false), run_campaign(&spec).to_json(false));
/// ```
pub fn resume_campaign(
    spec: &CampaignSpec,
    previous: &CampaignReport,
) -> Result<CampaignReport, String> {
    resume_campaign_checkpointed(spec, previous, None)
}

/// [`resume_campaign`] with optional autosave checkpoints for the
/// still-missing instances — the crash-recovery loop closes here: a
/// killed run's checkpoint resumes *into* a new checkpointed run.
pub fn resume_campaign_checkpointed(
    spec: &CampaignSpec,
    previous: &CampaignReport,
    checkpoint: Option<&CheckpointPolicy>,
) -> Result<CampaignReport, String> {
    let limit_checks: [(&str, String, String); 12] = [
        ("tests", spec.tests.to_string(), previous.tests.to_string()),
        (
            "max_test_vectors",
            // `None` in a parsed legacy report means "unknown": nothing
            // to compare against, so the check is skipped by echoing the
            // spec's own value.
            spec.max_test_vectors.to_string(),
            previous
                .max_test_vectors
                .unwrap_or(spec.max_test_vectors)
                .to_string(),
        ),
        ("k", format!("{:?}", spec.k), format!("{:?}", previous.k)),
        (
            "max_solutions",
            spec.max_solutions.to_string(),
            previous.max_solutions.to_string(),
        ),
        (
            "conflict_budget",
            format!("{:?}", spec.conflict_budget),
            format!("{:?}", previous.conflict_budget),
        ),
        (
            "work_budget",
            format!("{:?}", spec.work_budget),
            format!("{:?}", previous.work_budget),
        ),
        (
            "deadline_ms",
            format!("{:?}", spec.deadline_ms),
            format!("{:?}", previous.deadline_ms),
        ),
        // Chaos changes per-instance outcomes exactly like a limit does;
        // a resume mixing chaos and clean records would not match a
        // fresh run of either spec.
        (
            "chaos",
            format!("{:?}", spec.chaos),
            format!("{:?}", previous.chaos),
        ),
        // Retry attempts and the retry trigger shape the records
        // (`attempts`, which failures become `failed`); the backoff is
        // wall-time only and deliberately excluded.
        (
            "retry max_attempts",
            spec.retry.max_attempts.to_string(),
            previous.retry.max_attempts.to_string(),
        ),
        (
            "retry_on",
            spec.retry.retry_on.name().to_string(),
            previous.retry.retry_on.name().to_string(),
        ),
        // Test generation rewrites the shrinkage columns of every record;
        // a resume mixing shrunk and unshrunk records would not match a
        // fresh run of either spec.
        (
            "test_gen",
            format!("{:?}", spec.test_gen),
            format!("{:?}", previous.test_gen),
        ),
        // The extended solver-statistics columns change the serialised
        // shape of every record; mixing reports with and without them
        // would match neither fresh run byte-for-byte.
        (
            "solver_stats",
            spec.solver_stats.to_string(),
            previous.solver_stats.to_string(),
        ),
    ];
    for (name, ours, theirs) in &limit_checks {
        if ours != theirs {
            return Err(format!(
                "cannot resume: {name} differs (spec {ours}, previous report {theirs}); \
                 resumed records would not match a fresh run"
            ));
        }
    }
    let mut previous_by_key: HashMap<InstanceKey<'_>, &InstanceRecord> = HashMap::new();
    for record in &previous.records {
        // First occurrence wins, matching matrix order.
        previous_by_key.entry(record_key(record)).or_insert(record);
    }
    let instances = spec.instances();
    let mut slots: Vec<Option<InstanceRecord>> = Vec::with_capacity(instances.len());
    for inst in &instances {
        let Some(&record) = previous_by_key.get(&instance_key(spec, inst)) else {
            slots.push(None);
            continue;
        };
        // Records are keyed by circuit *name*; if the named circuit's
        // content changed since the previous run (an edited `.bench`
        // file), reusing the record would silently break the
        // byte-identical-to-fresh contract. The functional gate count in
        // every record is a cheap (though not airtight) content check.
        let (name, golden) = &spec.circuits[inst.circuit];
        if record.gates != golden.num_functional_gates() {
            return Err(format!(
                "cannot resume: circuit `{name}` has {} functional gates but the previous \
                 report recorded {} — the circuit content changed, so its records are stale",
                golden.num_functional_gates(),
                record.gates
            ));
        }
        slots.push(Some(record.clone()));
    }
    let records = fill_missing(spec, &instances, slots, checkpoint);
    Ok(CampaignReport::new(spec, records))
}

/// The shared execution core of [`run_campaign_checkpointed`] and
/// [`resume_campaign_checkpointed`]: runs every unresolved slot through
/// the isolated pool, in matrix order, checkpointing as configured.
fn fill_missing(
    spec: &CampaignSpec,
    instances: &[InstanceSpec],
    mut slots: Vec<Option<InstanceRecord>>,
    checkpoint: Option<&CheckpointPolicy>,
) -> Vec<InstanceRecord> {
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(i, _)| i)
        .collect();
    // Without a checkpoint everything is one pool fan-out; with one, the
    // pool drains `every`-sized chunks and the checkpoint is rewritten
    // between chunks. Chunking only changes scheduling, never results.
    let chunk = checkpoint.map_or(missing.len(), |c| c.every).max(1);
    for group in missing.chunks(chunk) {
        let workers = spec.parallelism.workers(group.len());
        let results = parallel_map_init_isolated(
            workers,
            group.len(),
            || (),
            |(), j| run_instance_resilient(spec, &instances[group[j]]),
        );
        for (&slot, result) in group.iter().zip(results) {
            slots[slot] = Some(match result {
                Ok(record) => record,
                // `run_instance_resilient` catches everything its
                // attempts raise; an escape here means the resilience
                // layer itself panicked. The isolated pool still
                // contains it — synthesise the failed record from the
                // instance identity.
                Err(failure) => failed_record(spec, &instances[slot], &failure.reason, 1),
            });
        }
        if let Some(policy) = checkpoint {
            write_checkpoint(spec, &slots, policy);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every instance resolved"))
        .collect()
}

/// Atomically rewrites the checkpoint file with the records resolved so
/// far (a valid partial report, in matrix order). Best-effort: failures
/// go to stderr, the campaign continues.
fn write_checkpoint(
    spec: &CampaignSpec,
    slots: &[Option<InstanceRecord>],
    policy: &CheckpointPolicy,
) {
    let resolved: Vec<InstanceRecord> = slots.iter().flatten().cloned().collect();
    let json = CampaignReport::new(spec, resolved).to_json(false);
    if let Err(e) = atomic_write(&policy.path, json.as_bytes()) {
        eprintln!(
            "warning: checkpoint write to {} failed: {e}",
            policy.path.display()
        );
    }
}

/// tmp + fsync + rename: the destination either keeps its old content or
/// holds the complete new content, never a torn prefix.
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Cap on the stored failure reason: long panic payloads (a formatted
/// assertion with embedded data) get truncated, char-boundary-safe.
const MAX_FAILURE_CHARS: usize = 160;

/// Flattens a panic payload into a report-safe single line: control
/// characters become spaces, and the text is truncated to
/// [`MAX_FAILURE_CHARS`].
fn sanitize_reason(reason: &str) -> String {
    let mut out: String = reason
        .chars()
        .take(MAX_FAILURE_CHARS)
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    if reason.chars().nth(MAX_FAILURE_CHARS).is_some() {
        out.push('…');
    }
    out
}

/// The record for an instance whose every attempt panicked: identity
/// fields filled in, measurements zeroed, the sanitised reason attached.
/// The golden gate count is still recorded so the resume staleness check
/// keeps working on failed records.
fn failed_record(
    spec: &CampaignSpec,
    inst: &InstanceSpec,
    reason: &str,
    attempts: u32,
) -> InstanceRecord {
    let (name, golden) = &spec.circuits[inst.circuit];
    InstanceRecord {
        circuit: name.clone(),
        gates: golden.num_functional_gates(),
        fault_model: inst.fault_model,
        p: inst.p,
        seed: inst.seed,
        engine: inst.engine,
        frames: inst.frames,
        seq_len: inst.seq_len,
        k: spec.k.unwrap_or(inst.p),
        tests: 0,
        status: InstanceStatus::Failed,
        candidates: 0,
        solutions: 0,
        complete: false,
        hit: false,
        quality_min: 0.0,
        quality_avg: 0.0,
        quality_max: 0.0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        restarts: 0,
        learnt_clauses: 0,
        gc_runs: 0,
        attempts,
        failure: Some(sanitize_reason(reason)),
        test_gen: None,
        obs: None,
        wall_ms: 0.0,
    }
}

/// Runs one instance with panic isolation and bounded retry: attempts
/// run under `catch_unwind` until one succeeds, the retry policy stops
/// retrying, or attempts run out — in which case the instance becomes a
/// [`InstanceStatus::Failed`] record carrying the last panic reason.
///
/// Deterministic: each attempt is a pure function of
/// `(spec, inst, attempt)` — injected chaos hashes the attempt number
/// into its key, so retries reroll the chaos dice the same way on every
/// run — and the exponential backoff only spends wall time.
fn run_instance_resilient(spec: &CampaignSpec, inst: &InstanceSpec) -> InstanceRecord {
    let max_attempts = spec.retry.max_attempts.max(1);
    let mut last_reason = String::new();
    for attempt in 1..=max_attempts {
        if attempt > 1 && spec.retry.backoff_ms > 0 {
            // Exponential backoff, quarantined like `wall_ms`: it delays
            // the retry but never shapes the record.
            let shift = (attempt - 2).min(16);
            std::thread::sleep(std::time::Duration::from_millis(
                spec.retry.backoff_ms << shift,
            ));
        }
        match catch_unwind(AssertUnwindSafe(|| run_attempt(spec, inst, attempt))) {
            Ok((mut record, truncation)) => {
                record.attempts = attempt;
                // A wall-deadline preemption is transient (machine load);
                // opt-in retry treats it like a crash. Every other
                // outcome is deterministic — retrying it would only
                // reproduce it.
                if spec.retry.retry_on == RetryOn::PanicOrDeadline
                    && truncation == Some(Truncation::Deadline)
                    && attempt < max_attempts
                {
                    continue;
                }
                return record;
            }
            Err(payload) => {
                last_reason = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
            }
        }
    }
    failed_record(spec, inst, &last_reason, max_attempts)
}

/// Runs one cell of the matrix. Pure in `(spec, inst, attempt)` — the
/// attempt number only feeds the chaos key, so attempt 1 of a clean
/// campaign is the plain deterministic instance run.
///
/// Every attempt runs under its own observability sink (installed on
/// this campaign worker thread — engines are pinned sequential inside an
/// instance, so every charged counter is deterministic and worker-count
/// invariant) with a root `instance` span. That span is the single
/// wall-clock source: `wall_ms` derives from it, so the campaign has
/// exactly one timing-quarantine mechanism. The full trace is attached
/// to the record only under [`CampaignSpec::collect_obs`].
fn run_attempt(
    spec: &CampaignSpec,
    inst: &InstanceSpec,
    attempt: u32,
) -> (InstanceRecord, Option<Truncation>) {
    let sink = std::sync::Arc::new(gatediag_obs::Sink::new());
    let guard = gatediag_obs::install(std::sync::Arc::clone(&sink));
    let root = gatediag_obs::span("instance");
    let (mut record, truncation) = run_attempt_inner(spec, inst, attempt);
    drop(root);
    drop(guard);
    let trace = sink.take_trace();
    record.wall_ms = trace.root_wall_ns() as f64 / 1e6;
    if spec.collect_obs {
        record.obs = Some(trace);
    }
    (record, truncation)
}

/// The uninstrumented attempt body: everything [`run_attempt`] measures.
fn run_attempt_inner(
    spec: &CampaignSpec,
    inst: &InstanceSpec,
    attempt: u32,
) -> (InstanceRecord, Option<Truncation>) {
    let (name, golden) = &spec.circuits[inst.circuit];
    let k = spec.k.unwrap_or(inst.p);
    let mut record = InstanceRecord {
        circuit: name.clone(),
        gates: golden.num_functional_gates(),
        fault_model: inst.fault_model,
        p: inst.p,
        seed: inst.seed,
        engine: inst.engine,
        frames: inst.frames,
        seq_len: inst.seq_len,
        k,
        tests: 0,
        status: InstanceStatus::Ok,
        candidates: 0,
        solutions: 0,
        complete: true,
        hit: false,
        quality_min: 0.0,
        quality_avg: 0.0,
        quality_max: 0.0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        restarts: 0,
        learnt_clauses: 0,
        gc_runs: 0,
        attempts: 1,
        failure: None,
        test_gen: None,
        obs: None,
        wall_ms: 0.0,
    };
    // The chaos key hashes the full instance identity plus the attempt
    // number: a retried instance rerolls, but identically on every run
    // and every worker count. The sequential axes join the key only when
    // present, so combinational chaos streams are unchanged.
    let chaos = match spec.chaos {
        None => ChaosPolicy::off(),
        Some(config) => {
            let mut parts = vec![
                name.clone(),
                inst.fault_model.name().to_string(),
                inst.p.to_string(),
                inst.seed.to_string(),
                inst.engine.name().to_string(),
                attempt.to_string(),
            ];
            if let (Some(frames), Some(seq_len)) = (inst.frames, inst.seq_len) {
                parts.push(frames.to_string());
                parts.push(seq_len.to_string());
            }
            let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            ChaosPolicy::new(config, ChaosPolicy::key(&refs))
        }
    };
    let request = DiagnoseRequest {
        engine: inst.engine,
        fault_model: inst.fault_model,
        p: inst.p,
        seed: inst.seed,
        tests: spec.tests,
        max_test_vectors: spec.max_test_vectors,
        k: spec.k,
        frames: inst.frames,
        seq_len: inst.seq_len,
        max_solutions: spec.max_solutions,
        conflict_budget: spec.conflict_budget,
        work_budget: spec.work_budget,
        deadline_ms: spec.deadline_ms,
        test_gen_rounds: spec.test_gen.map(|tg| tg.rounds),
    };
    // The campaign level owns the worker pool, so engines inside one
    // instance are pinned sequential; see the module docs.
    let outcome = run_diagnose(golden, &request, Parallelism::Sequential, chaos);
    record.tests = outcome.tests;
    match outcome.status {
        DiagnoseStatus::NotInjectable => {
            record.status = InstanceStatus::NotInjectable;
            return (record, None);
        }
        DiagnoseStatus::NoFailingTests => {
            record.status = InstanceStatus::NoFailingTests;
            return (record, None);
        }
        DiagnoseStatus::Ok | DiagnoseStatus::Preempted => {}
    }
    let faulty = outcome.faulty.expect("injection succeeded");
    let run = outcome.run.expect("pipeline reached the engine");
    let errors: Vec<GateId> = outcome.faults.iter().map(|f| f.gate).collect();
    record.candidates = run.candidates.len();
    record.solutions = run.solutions.len();
    record.complete = run.complete;
    // A budget preemption is its own outcome class; the enumeration cap
    // stays `ok` with `complete = false`, as before.
    if run.truncation.is_some_and(|t| t.is_preemption()) {
        record.status = InstanceStatus::Preempted;
    }
    record.hit = run.candidates.iter().any(|g| errors.contains(g));
    if !run.solutions.is_empty() {
        let quality = solution_quality(&faulty, &run.solutions, &errors);
        record.quality_min = quality.min;
        record.quality_avg = quality.avg;
        record.quality_max = quality.max;
    }
    record.conflicts = run.stats.conflicts;
    record.decisions = run.stats.decisions;
    record.propagations = run.stats.propagations;
    record.restarts = run.stats.restarts;
    record.learnt_clauses = run.stats.learnt_clauses;
    record.gc_runs = run.stats.gc_runs;
    record.test_gen = run.test_gen.as_ref().map(|outcome| TestGenRecord {
        gen_tests: outcome.tests.len(),
        solutions_before: outcome.solutions_before,
        solutions_after: outcome.solutions_after,
        ambiguity_classes: outcome.classes.len(),
    });
    (record, run.truncation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_core::EngineKind;
    use gatediag_netlist::{c17, FaultModel};

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
        spec.error_counts = vec![1];
        spec.seeds = vec![1, 2];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
        spec
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        let instances = spec.instances();
        assert_eq!(report.records.len(), instances.len());
        for (record, inst) in report.records.iter().zip(&instances) {
            assert_eq!(record.fault_model, inst.fault_model);
            assert_eq!(record.engine, inst.engine);
            assert_eq!(record.seed, inst.seed);
        }
    }

    #[test]
    fn bsat_instances_find_the_gate_change_site() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        for record in &report.records {
            if record.status == InstanceStatus::Ok
                && record.engine == EngineKind::Bsat
                && record.fault_model == FaultModel::GateChange
            {
                // BSAT enumerates all valid corrections ≤ k = p; the real
                // site is always one of them.
                assert!(
                    record.hit,
                    "seed {}: BSAT missed the error site",
                    record.seed
                );
                assert_eq!(record.quality_min, 0.0);
            }
        }
    }

    #[test]
    fn oversized_p_is_recorded_not_panicked() {
        let mut spec = tiny_spec();
        spec.error_counts = vec![50]; // c17 has 6 functional gates
        let report = run_campaign(&spec);
        assert!(report
            .records
            .iter()
            .all(|r| r.status == InstanceStatus::NotInjectable));
    }
}
