//! The parallel campaign runner.
//!
//! Each [`InstanceSpec`] is one work item: inject the faults, collect
//! failing tests, run the instance's engine, score the result. Items are
//! fanned out over [`gatediag_sim::parallel_map_init`] (work-stealing over
//! a shared index) and merged back **in instance order**, so the report is
//! bit-identical for every worker count — the same determinism contract as
//! every other parallel flow in this workspace.
//!
//! Two design points keep that contract airtight:
//!
//! * every record is a pure function of `(spec, instance index)` — the
//!   faulty circuit, the test set and the engine run are all rebuilt from
//!   the instance's own seed, never shared across items;
//! * engines run with [`Parallelism::Sequential`] *inside* a work item:
//!   the campaign level owns the worker pool, which avoids nested pools
//!   oversubscribing the machine, and makes each item's cost independent
//!   of the schedule. (The per-instance engines still reuse their
//!   internal incremental state across the instance's tests and candidate
//!   sets — the engine-reuse machinery of PRs 2-3.)
//!
//! Wall-clock time is the one nondeterministic measurement; it is
//! recorded per instance but excluded from reports unless explicitly
//! requested (see [`crate::report::CampaignReport::to_json`]).

use crate::report::{CampaignReport, InstanceRecord, InstanceStatus};
use crate::spec::{CampaignSpec, InstanceSpec};
use gatediag_core::budget::Budget;
use gatediag_core::{
    generate_failing_tests, run_engine, solution_quality, EngineConfig, EngineKind, EngineRun,
};
use gatediag_netlist::{try_inject_faults, FaultModel, GateId};
use gatediag_sim::{parallel_map_init, Parallelism};
use std::collections::HashMap;
use std::time::Instant;

/// Runs every instance of the campaign and collects the merged report.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// // Shrink the matrix for a doctest-sized run.
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let report = run_campaign(&spec);
/// assert_eq!(report.records.len(), spec.instances().len());
/// ```
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let instances = spec.instances();
    let workers = spec.parallelism.workers(instances.len());
    let records = parallel_map_init(
        workers,
        instances.len(),
        || (),
        |(), i| run_instance(spec, &instances[i]),
    );
    CampaignReport::new(spec, records)
}

/// Identity of one instance inside a report — the resume key.
type InstanceKey<'a> = (&'a str, FaultModel, usize, u64, EngineKind);

fn instance_key<'a>(spec: &'a CampaignSpec, inst: &InstanceSpec) -> InstanceKey<'a> {
    (
        spec.circuits[inst.circuit].0.as_str(),
        inst.fault_model,
        inst.p,
        inst.seed,
        inst.engine,
    )
}

fn record_key(record: &InstanceRecord) -> InstanceKey<'_> {
    (
        record.circuit.as_str(),
        record.fault_model,
        record.p,
        record.seed,
        record.engine,
    )
}

/// Resumes a campaign from a previous report: instances whose
/// `(circuit, fault model, p, seed, engine)` identity already has a
/// record in `previous` are *skipped* (the old record is reused
/// verbatim, including `preempted` ones); only the missing instances
/// run. Old and new records merge **in matrix order**, so — because
/// every record is a pure function of `(spec, instance)` — a resumed
/// run's report is byte-identical (timing excluded) to a fresh full run
/// of the same spec.
///
/// The spec may *extend* the matrix of the previous run (more seeds,
/// circuits, engines, fault models, error counts) or shrink it (records
/// with no matching instance are dropped), but the per-instance limits
/// (`tests`, `k`, `max_solutions` and the budgets) must match: a record
/// produced under different limits is not the record a fresh run would
/// produce, so resuming across limit changes is rejected.
///
/// # Errors
///
/// Returns a description of the first mismatched limit.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{resume_campaign, run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let partial = run_campaign(&spec);
/// // Extend the matrix by a seed and resume: seed-1 records are reused.
/// spec.seeds = vec![1, 2];
/// let resumed = resume_campaign(&spec, &partial).unwrap();
/// assert_eq!(resumed.to_json(false), run_campaign(&spec).to_json(false));
/// ```
pub fn resume_campaign(
    spec: &CampaignSpec,
    previous: &CampaignReport,
) -> Result<CampaignReport, String> {
    let limit_checks: [(&str, String, String); 7] = [
        ("tests", spec.tests.to_string(), previous.tests.to_string()),
        (
            "max_test_vectors",
            // `None` in a parsed legacy report means "unknown": nothing
            // to compare against, so the check is skipped by echoing the
            // spec's own value.
            spec.max_test_vectors.to_string(),
            previous
                .max_test_vectors
                .unwrap_or(spec.max_test_vectors)
                .to_string(),
        ),
        ("k", format!("{:?}", spec.k), format!("{:?}", previous.k)),
        (
            "max_solutions",
            spec.max_solutions.to_string(),
            previous.max_solutions.to_string(),
        ),
        (
            "conflict_budget",
            format!("{:?}", spec.conflict_budget),
            format!("{:?}", previous.conflict_budget),
        ),
        (
            "work_budget",
            format!("{:?}", spec.work_budget),
            format!("{:?}", previous.work_budget),
        ),
        (
            "deadline_ms",
            format!("{:?}", spec.deadline_ms),
            format!("{:?}", previous.deadline_ms),
        ),
    ];
    for (name, ours, theirs) in &limit_checks {
        if ours != theirs {
            return Err(format!(
                "cannot resume: {name} differs (spec {ours}, previous report {theirs}); \
                 resumed records would not match a fresh run"
            ));
        }
    }
    let mut previous_by_key: HashMap<InstanceKey<'_>, &InstanceRecord> = HashMap::new();
    for record in &previous.records {
        // First occurrence wins, matching matrix order.
        previous_by_key.entry(record_key(record)).or_insert(record);
    }
    let instances = spec.instances();
    let mut slots: Vec<Option<InstanceRecord>> = Vec::with_capacity(instances.len());
    for inst in &instances {
        let Some(&record) = previous_by_key.get(&instance_key(spec, inst)) else {
            slots.push(None);
            continue;
        };
        // Records are keyed by circuit *name*; if the named circuit's
        // content changed since the previous run (an edited `.bench`
        // file), reusing the record would silently break the
        // byte-identical-to-fresh contract. The functional gate count in
        // every record is a cheap (though not airtight) content check.
        let (name, golden) = &spec.circuits[inst.circuit];
        if record.gates != golden.num_functional_gates() {
            return Err(format!(
                "cannot resume: circuit `{name}` has {} functional gates but the previous \
                 report recorded {} — the circuit content changed, so its records are stale",
                golden.num_functional_gates(),
                record.gates
            ));
        }
        slots.push(Some(record.clone()));
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(i, _)| i)
        .collect();
    let workers = spec.parallelism.workers(missing.len());
    let fresh = parallel_map_init(
        workers,
        missing.len(),
        || (),
        |(), j| run_instance(spec, &instances[missing[j]]),
    );
    for (j, record) in missing.into_iter().zip(fresh) {
        slots[j] = Some(record);
    }
    let records = slots
        .into_iter()
        .map(|slot| slot.expect("every instance resolved"))
        .collect();
    Ok(CampaignReport::new(spec, records))
}

/// Runs one cell of the matrix. Pure in `(spec, inst)`.
fn run_instance(spec: &CampaignSpec, inst: &InstanceSpec) -> InstanceRecord {
    let (name, golden) = &spec.circuits[inst.circuit];
    let k = spec.k.unwrap_or(inst.p);
    let mut record = InstanceRecord {
        circuit: name.clone(),
        gates: golden.num_functional_gates(),
        fault_model: inst.fault_model,
        p: inst.p,
        seed: inst.seed,
        engine: inst.engine,
        k,
        tests: 0,
        status: InstanceStatus::Ok,
        candidates: 0,
        solutions: 0,
        complete: true,
        hit: false,
        quality_min: 0.0,
        quality_avg: 0.0,
        quality_max: 0.0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        wall_ms: 0.0,
    };
    let start = Instant::now();
    let Some((faulty, faults)) = try_inject_faults(golden, inst.fault_model, inst.p, inst.seed)
    else {
        record.status = InstanceStatus::NotInjectable;
        record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        return record;
    };
    let tests = generate_failing_tests(
        golden,
        &faulty,
        spec.tests,
        inst.seed,
        spec.max_test_vectors,
    );
    record.tests = tests.len();
    if tests.is_empty() {
        record.status = InstanceStatus::NoFailingTests;
        record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        return record;
    }
    let config = EngineConfig {
        k,
        max_solutions: spec.max_solutions,
        conflict_budget: spec.conflict_budget,
        budget: Budget {
            work: spec.work_budget,
            deadline_ms: spec.deadline_ms,
            ..Budget::default()
        },
        // The campaign level owns the pool; see the module docs.
        parallelism: Parallelism::Sequential,
        ..EngineConfig::default()
    };
    let run: EngineRun = run_engine(inst.engine, &faulty, &tests, &config);
    let errors: Vec<GateId> = faults.iter().map(|f| f.gate).collect();
    record.candidates = run.candidates.len();
    record.solutions = run.solutions.len();
    record.complete = run.complete;
    // A budget preemption is its own outcome class; the enumeration cap
    // stays `ok` with `complete = false`, as before.
    if run.truncation.is_some_and(|t| t.is_preemption()) {
        record.status = InstanceStatus::Preempted;
    }
    record.hit = run.candidates.iter().any(|g| errors.contains(g));
    if !run.solutions.is_empty() {
        let quality = solution_quality(&faulty, &run.solutions, &errors);
        record.quality_min = quality.min;
        record.quality_avg = quality.avg;
        record.quality_max = quality.max;
    }
    record.conflicts = run.stats.conflicts;
    record.decisions = run.stats.decisions;
    record.propagations = run.stats.propagations;
    record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_core::EngineKind;
    use gatediag_netlist::{c17, FaultModel};

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
        spec.error_counts = vec![1];
        spec.seeds = vec![1, 2];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
        spec
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        let instances = spec.instances();
        assert_eq!(report.records.len(), instances.len());
        for (record, inst) in report.records.iter().zip(&instances) {
            assert_eq!(record.fault_model, inst.fault_model);
            assert_eq!(record.engine, inst.engine);
            assert_eq!(record.seed, inst.seed);
        }
    }

    #[test]
    fn bsat_instances_find_the_gate_change_site() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        for record in &report.records {
            if record.status == InstanceStatus::Ok
                && record.engine == EngineKind::Bsat
                && record.fault_model == FaultModel::GateChange
            {
                // BSAT enumerates all valid corrections ≤ k = p; the real
                // site is always one of them.
                assert!(
                    record.hit,
                    "seed {}: BSAT missed the error site",
                    record.seed
                );
                assert_eq!(record.quality_min, 0.0);
            }
        }
    }

    #[test]
    fn oversized_p_is_recorded_not_panicked() {
        let mut spec = tiny_spec();
        spec.error_counts = vec![50]; // c17 has 6 functional gates
        let report = run_campaign(&spec);
        assert!(report
            .records
            .iter()
            .all(|r| r.status == InstanceStatus::NotInjectable));
    }
}
