//! The parallel campaign runner.
//!
//! Each [`InstanceSpec`] is one work item: inject the faults, collect
//! failing tests, run the instance's engine, score the result. Items are
//! fanned out over [`gatediag_sim::parallel_map_init`] (work-stealing over
//! a shared index) and merged back **in instance order**, so the report is
//! bit-identical for every worker count — the same determinism contract as
//! every other parallel flow in this workspace.
//!
//! Two design points keep that contract airtight:
//!
//! * every record is a pure function of `(spec, instance index)` — the
//!   faulty circuit, the test set and the engine run are all rebuilt from
//!   the instance's own seed, never shared across items;
//! * engines run with [`Parallelism::Sequential`] *inside* a work item:
//!   the campaign level owns the worker pool, which avoids nested pools
//!   oversubscribing the machine, and makes each item's cost independent
//!   of the schedule. (The per-instance engines still reuse their
//!   internal incremental state across the instance's tests and candidate
//!   sets — the engine-reuse machinery of PRs 2-3.)
//!
//! Wall-clock time is the one nondeterministic measurement; it is
//! recorded per instance but excluded from reports unless explicitly
//! requested (see [`crate::report::CampaignReport::to_json`]).

use crate::report::{CampaignReport, InstanceRecord, InstanceStatus};
use crate::spec::{CampaignSpec, InstanceSpec};
use gatediag_core::{
    generate_failing_tests, run_engine, solution_quality, EngineConfig, EngineRun,
};
use gatediag_netlist::{try_inject_faults, GateId};
use gatediag_sim::{parallel_map_init, Parallelism};
use std::time::Instant;

/// Runs every instance of the campaign and collects the merged report.
///
/// # Examples
///
/// ```
/// use gatediag_campaign::{run_campaign, CampaignSpec};
///
/// let mut spec = CampaignSpec::demo();
/// // Shrink the matrix for a doctest-sized run.
/// spec.circuits.truncate(1);
/// spec.error_counts = vec![1];
/// spec.seeds = vec![1];
/// let report = run_campaign(&spec);
/// assert_eq!(report.records.len(), spec.instances().len());
/// ```
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let instances = spec.instances();
    let workers = spec.parallelism.workers(instances.len());
    let records = parallel_map_init(
        workers,
        instances.len(),
        || (),
        |(), i| run_instance(spec, &instances[i]),
    );
    CampaignReport::new(spec, records)
}

/// Runs one cell of the matrix. Pure in `(spec, inst)`.
fn run_instance(spec: &CampaignSpec, inst: &InstanceSpec) -> InstanceRecord {
    let (name, golden) = &spec.circuits[inst.circuit];
    let k = spec.k.unwrap_or(inst.p);
    let mut record = InstanceRecord {
        circuit: name.clone(),
        gates: golden.num_functional_gates(),
        fault_model: inst.fault_model,
        p: inst.p,
        seed: inst.seed,
        engine: inst.engine,
        k,
        tests: 0,
        status: InstanceStatus::Ok,
        candidates: 0,
        solutions: 0,
        complete: true,
        hit: false,
        quality_min: 0.0,
        quality_avg: 0.0,
        quality_max: 0.0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        wall_ms: 0.0,
    };
    let start = Instant::now();
    let Some((faulty, faults)) = try_inject_faults(golden, inst.fault_model, inst.p, inst.seed)
    else {
        record.status = InstanceStatus::NotInjectable;
        record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        return record;
    };
    let tests = generate_failing_tests(
        golden,
        &faulty,
        spec.tests,
        inst.seed,
        spec.max_test_vectors,
    );
    record.tests = tests.len();
    if tests.is_empty() {
        record.status = InstanceStatus::NoFailingTests;
        record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        return record;
    }
    let config = EngineConfig {
        k,
        max_solutions: spec.max_solutions,
        conflict_budget: spec.conflict_budget,
        // The campaign level owns the pool; see the module docs.
        parallelism: Parallelism::Sequential,
    };
    let run: EngineRun = run_engine(inst.engine, &faulty, &tests, &config);
    let errors: Vec<GateId> = faults.iter().map(|f| f.gate).collect();
    record.candidates = run.candidates.len();
    record.solutions = run.solutions.len();
    record.complete = run.complete;
    record.hit = run.candidates.iter().any(|g| errors.contains(g));
    if !run.solutions.is_empty() {
        let quality = solution_quality(&faulty, &run.solutions, &errors);
        record.quality_min = quality.min;
        record.quality_avg = quality.avg;
        record.quality_max = quality.max;
    }
    record.conflicts = run.stats.conflicts;
    record.decisions = run.stats.decisions;
    record.propagations = run.stats.propagations;
    record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_core::EngineKind;
    use gatediag_netlist::{c17, FaultModel};

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(vec![("c17".to_string(), c17())]);
        spec.fault_models = vec![FaultModel::GateChange, FaultModel::StuckAt];
        spec.error_counts = vec![1];
        spec.seeds = vec![1, 2];
        spec.engines = vec![EngineKind::Bsim, EngineKind::Bsat];
        spec
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        let instances = spec.instances();
        assert_eq!(report.records.len(), instances.len());
        for (record, inst) in report.records.iter().zip(&instances) {
            assert_eq!(record.fault_model, inst.fault_model);
            assert_eq!(record.engine, inst.engine);
            assert_eq!(record.seed, inst.seed);
        }
    }

    #[test]
    fn bsat_instances_find_the_gate_change_site() {
        let spec = tiny_spec();
        let report = run_campaign(&spec);
        for record in &report.records {
            if record.status == InstanceStatus::Ok
                && record.engine == EngineKind::Bsat
                && record.fault_model == FaultModel::GateChange
            {
                // BSAT enumerates all valid corrections ≤ k = p; the real
                // site is always one of them.
                assert!(
                    record.hit,
                    "seed {}: BSAT missed the error site",
                    record.seed
                );
                assert_eq!(record.quality_min, 0.0);
            }
        }
    }

    #[test]
    fn oversized_p_is_recorded_not_panicked() {
        let mut spec = tiny_spec();
        spec.error_counts = vec![50]; // c17 has 6 functional gates
        let report = run_campaign(&spec);
        assert!(report
            .records
            .iter()
            .all(|r| r.status == InstanceStatus::NotInjectable));
    }
}
