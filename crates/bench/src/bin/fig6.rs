//! Regenerates the paper's **Figure 6**: BSAT vs COV scatter plots.
//!
//! 6(a): per-configuration average solution distance, BSAT (y) against
//! COV (x) — points below the diagonal mean BSAT's solutions are closer
//! to the real errors. 6(b): number of solutions on log-log axes —
//! points below the diagonal mean BSAT returns fewer (more focused)
//! solutions.
//!
//! ```text
//! cargo run --release -p gatediag-bench --bin fig6 -- [--scale quick|full] [--seed N]
//! ```

use gatediag_bench::harness::{
    configured_workloads, parse_config, run_cell, write_artifact, TEST_COUNTS,
};
use std::fmt::Write as _;

struct Point {
    label: String,
    cov_avg: f64,
    bsat_avg: f64,
    cov_sols: usize,
    bsat_sols: usize,
}

fn ascii_scatter(points: &[(f64, f64)], title: &str, log: bool) -> String {
    const W: usize = 46;
    const H: usize = 18;
    let transform = |v: f64| if log { (v.max(1.0)).log10() } else { v };
    let xs: Vec<f64> = points.iter().map(|p| transform(p.0)).collect();
    let ys: Vec<f64> = points.iter().map(|p| transform(p.1)).collect();
    let max = xs
        .iter()
        .chain(&ys)
        .fold(1e-9f64, |a, &b| a.max(b))
        .max(1e-9);
    let mut grid = vec![vec![' '; W]; H];
    // Diagonal y = x across the full plot width.
    for (i, r) in (0..W).map(|i| (i, i * (H - 1) / (W - 1))) {
        grid[H - 1 - r][i] = '.';
    }
    for (&x, &y) in xs.iter().zip(&ys) {
        let col = ((x / max) * (W - 1) as f64).round() as usize;
        let row = ((y / max) * (H - 1) as f64).round() as usize;
        grid[H - 1 - row.min(H - 1)][col.min(W - 1)] = '*';
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}  (x: COV, y: BSAT, '.' = diagonal)");
    for row in grid {
        let _ = writeln!(out, "  |{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(W));
    out
}

fn main() {
    let config = parse_config();
    let (seed, limits) = (config.seed, config.limits);
    println!("Figure 6: quality of BSAT vs COV (seed {seed})\n");
    let mut points: Vec<Point> = Vec::new();
    for workload in configured_workloads(&config) {
        for m in TEST_COUNTS {
            if workload.tests.len() < m {
                continue;
            }
            let cell = run_cell(&workload, m, limits);
            points.push(Point {
                label: format!("{} m={}", cell.name, cell.m),
                cov_avg: cell.cov_quality.avg,
                bsat_avg: cell.bsat_quality.avg,
                cov_sols: cell.cov_quality.num_solutions,
                bsat_sols: cell.bsat_quality.num_solutions,
            });
        }
    }

    println!(
        "{:<20} {:>8} {:>8} {:>9} {:>9}",
        "config", "COV:avg", "SAT:avg", "COV:#sol", "SAT:#sol"
    );
    for p in &points {
        println!(
            "{:<20} {:>8.2} {:>8.2} {:>9} {:>9}",
            p.label, p.cov_avg, p.bsat_avg, p.cov_sols, p.bsat_sols
        );
    }

    let avg_points: Vec<(f64, f64)> = points.iter().map(|p| (p.cov_avg, p.bsat_avg)).collect();
    let sol_points: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.cov_sols as f64, p.bsat_sols as f64))
        .collect();
    println!(
        "\n{}",
        ascii_scatter(&avg_points, "Fig. 6(a): avg distance", false)
    );
    println!(
        "{}",
        ascii_scatter(&sol_points, "Fig. 6(b): #solutions (log10)", true)
    );

    let below_avg = points.iter().filter(|p| p.bsat_avg <= p.cov_avg).count();
    let below_sol = points.iter().filter(|p| p.bsat_sols <= p.cov_sols).count();
    println!(
        "BSAT at or below the diagonal: quality {}/{} configs, #solutions {}/{} configs",
        below_avg,
        points.len(),
        below_sol,
        points.len()
    );
    println!(
        "(paper: BSAT usually returns fewer solutions of better quality; the one\n\
         exception in the paper was s38417 with only 4 tests)"
    );

    let mut csv = String::from("config,cov_avg,bsat_avg,cov_sols,bsat_sols\n");
    for p in &points {
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{},{}",
            p.label, p.cov_avg, p.bsat_avg, p.cov_sols, p.bsat_sols
        );
    }
    write_artifact("fig6.csv", &csv);
}
