//! Feasibility probe for the s38417-profile workload: builds the BSAT
//! instance for a small test count and finds one solution, reporting
//! build/solve times and instance size. Used to calibrate the `--scale
//! full` experiments (see EXPERIMENTS.md).

use gatediag_bench::harness::Workload;
use gatediag_core::{basic_sat_diagnose, basic_sim_diagnose, BsatOptions, BsimOptions};
use gatediag_netlist::s38417_like;
use std::time::Instant;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let t0 = Instant::now();
    let golden = s38417_like(1);
    println!(
        "generated s38417_like: {} gates, {} inputs, {} outputs in {:.2?}",
        golden.num_functional_gates(),
        golden.inputs().len(),
        golden.outputs().len(),
        t0.elapsed()
    );
    let t0 = Instant::now();
    let w = Workload::from_golden("s38417_like", golden, 2, 1);
    println!(
        "workload: {} failing tests in {:.2?}",
        w.tests.len(),
        t0.elapsed()
    );
    let m = m.min(w.tests.len());
    let tests = w.tests.prefix(m);

    let t0 = Instant::now();
    let bsim = basic_sim_diagnose(&w.faulty, &tests, BsimOptions::default());
    println!(
        "BSIM over {m} tests: {:.2?} ({} gates marked)",
        t0.elapsed(),
        bsim.union.len()
    );

    let result = basic_sat_diagnose(
        &w.faulty,
        &tests,
        2,
        BsatOptions {
            max_solutions: 1,
            conflict_budget: Some(5_000_000),
            ..BsatOptions::default()
        },
    );
    println!(
        "BSAT one-solution: build {:.2?}, first {:.2?}, total {:.2?}, complete={}, #sol={}",
        result.build_time,
        result.first_solution_time,
        result.total_time,
        result.complete,
        result.solutions.len()
    );
    println!(
        "solver: {} conflicts, {} decisions, {} propagations",
        result.stats.conflicts, result.stats.decisions, result.stats.propagations
    );
}
