//! Emits `BENCH_PR2.json`: per-thread-count scaling of the parallel
//! diagnosis layer, extending the `BENCH_PR1.json` trajectory.
//!
//! Measures, on the same ≥ 6k-gate generated circuit as `bench_pr1`:
//!
//! * `basic_sim_diagnose` wall time with the packed sweeps and path
//!   traces sharded over 1 / 2 / 4 / 8 workers;
//! * candidate screening ([`screen_valid_corrections_sim`] over singleton
//!   candidate sets drawn from the path-tracing union) over the same
//!   worker counts, one reusable `SimValidityEngine` per worker;
//! * the engine-reuse win itself: fresh-engine-per-call screening vs the
//!   reusable-engine sequential batch (the ROADMAP "reusable engine
//!   across validity calls" item, now the single-core fast path).
//!
//! Every configuration's *result* is asserted bit-identical to the
//! 1-worker run before any number is published — scaling must never buy
//! drift. The ≥ 2x acceptance gate at 4 workers is a hard assert only
//! with `GATEDIAG_BENCH_STRICT=1` on a host exposing ≥ 4 cores
//! (`available_parallelism`); shared CI runners and single-core
//! containers still emit the JSON and report a miss as a warning (the
//! numbers then document that the pool degrades gracefully to ~1x, not
//! that it scales).
//!
//! Usage: `cargo run --release -p gatediag-bench --bin bench_pr2
//! [-- --out PATH]` (default `BENCH_PR2.json` in the working directory).

use gatediag_core::{
    basic_sim_diagnose, generate_failing_tests, screen_valid_corrections_sim, BsimOptions,
    Parallelism, SimValidityEngine,
};
use gatediag_netlist::{inject_errors, GateId, RandomCircuitSpec};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Worker counts the scaling sweep covers.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Repeats `f` until at least `min_time` has elapsed (at least once);
/// returns the mean wall time per call.
fn measure<R>(min_time: Duration, mut f: impl FnMut() -> R) -> Duration {
    // Warm-up.
    std::hint::black_box(f());
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed() < min_time || reps == 0 {
        std::hint::black_box(f());
        reps += 1;
    }
    start.elapsed() / reps
}

struct Entry {
    key: String,
    value: String,
}

fn num(key: impl Into<String>, value: f64) -> Entry {
    Entry {
        key: key.into(),
        value: if value.is_finite() {
            format!("{value:.4}")
        } else {
            "null".to_string()
        },
    }
}

fn int(key: impl Into<String>, value: u64) -> Entry {
    Entry {
        key: key.into(),
        value: value.to_string(),
    }
}

fn main() {
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut bench_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().expect("--out expects a path");
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(
                    args.get(i)
                        .cloned()
                        .expect("--bench-dir expects a directory"),
                );
            }
            other => panic!("unknown option `{other}` (try --out PATH, --bench-dir DIR)"),
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = Duration::from_millis(600);

    // Same circuit family and scale as bench_pr1, so the two JSON files
    // form one trajectory. `--bench-dir` swaps in the largest
    // user-supplied ISCAS89 circuit (no size floor then).
    let (golden, from_bench) = gatediag_bench::harness::baseline_circuit(
        bench_dir.as_deref(),
        gatediag_bench::harness::BaselinePick::Largest,
        || {
            RandomCircuitSpec::new(32, 8, 6000)
                .seed(7)
                .name("bench_pr2_6000g")
                .generate()
        },
    );
    let gates = golden.num_functional_gates() as u64;
    assert!(
        from_bench || gates >= 6000,
        "benchmark circuit must have >= 6k gates"
    );
    let (faulty, _sites, tests) = (7u64..64)
        .find_map(|inject_seed| {
            let (faulty, sites) = inject_errors(&golden, 2, inject_seed);
            let tests = generate_failing_tests(&golden, &faulty, 256, 7, 1 << 16);
            (tests.len() >= 64).then_some((faulty, sites, tests))
        })
        .expect("no injection seed yields a multi-word test pool");
    eprintln!(
        "circuit: {} functional gates, {} failing tests, {} cores visible",
        gates,
        tests.len(),
        cores
    );

    let mut entries = vec![
        int("functional_gates", gates),
        int("tests", tests.len() as u64),
        int("available_cores", cores as u64),
    ];

    // --- BSIM scaling ----------------------------------------------------
    let baseline_bsim = basic_sim_diagnose(
        &faulty,
        &tests,
        BsimOptions {
            parallelism: Parallelism::Fixed(1),
            ..BsimOptions::default()
        },
    );
    let mut bsim_ms = Vec::new();
    for &workers in &SWEEP {
        let options = BsimOptions {
            parallelism: Parallelism::Fixed(workers),
            ..BsimOptions::default()
        };
        let result = basic_sim_diagnose(&faulty, &tests, options);
        assert_eq!(
            result.candidate_sets, baseline_bsim.candidate_sets,
            "BSIM drifted at {workers} workers"
        );
        let t = measure(budget, || {
            basic_sim_diagnose(&faulty, &tests, options)
                .candidate_sets
                .len()
        });
        bsim_ms.push(t.as_secs_f64() * 1e3);
        entries.push(num(format!("bsim_ms_{workers}w"), t.as_secs_f64() * 1e3));
    }
    let bsim_speedup_4w = bsim_ms[0] / bsim_ms[2];
    entries.push(num("bsim_speedup_4w", bsim_speedup_4w));

    // --- Candidate screening scaling -------------------------------------
    // Singleton candidate sets over the path-tracing union: the worker
    // pool's unit of work is one candidate cone, the shape Feldman-style
    // stochastic search and hitting-set loops scale out on.
    let screen_tests = tests.prefix_at_most(16);
    let candidates: Vec<Vec<GateId>> = baseline_bsim
        .union
        .iter()
        .take(256)
        .map(|g| vec![g])
        .collect();
    // Pool-size calibration for the synthetic circuit; a user-supplied
    // --bench-dir corpus may be arbitrarily small.
    assert!(
        from_bench || candidates.len() >= 64,
        "need a meaningful candidate pool (got {})",
        candidates.len()
    );
    let baseline_verdicts =
        screen_valid_corrections_sim(&faulty, &screen_tests, &candidates, Parallelism::Fixed(1));
    let mut screen_ms = Vec::new();
    for &workers in &SWEEP {
        let parallelism = Parallelism::Fixed(workers);
        assert_eq!(
            screen_valid_corrections_sim(&faulty, &screen_tests, &candidates, parallelism),
            baseline_verdicts,
            "screening verdicts drifted at {workers} workers"
        );
        let t = measure(budget, || {
            screen_valid_corrections_sim(&faulty, &screen_tests, &candidates, parallelism)
                .iter()
                .filter(|&&v| v)
                .count()
        });
        screen_ms.push(t.as_secs_f64() * 1e3);
        entries.push(num(
            format!("screening_ms_{workers}w"),
            t.as_secs_f64() * 1e3,
        ));
    }
    let screening_speedup_4w = screen_ms[0] / screen_ms[2];
    entries.push(num("screening_speedup_4w", screening_speedup_4w));

    // --- Engine reuse vs fresh engines (single core) ----------------------
    let fresh_t = measure(budget, || {
        candidates
            .iter()
            .filter(|c| SimValidityEngine::new(&faulty).is_valid(&screen_tests, c))
            .count()
    });
    let reused_t = measure(budget, || {
        screen_valid_corrections_sim(&faulty, &screen_tests, &candidates, Parallelism::Sequential)
            .iter()
            .filter(|&&v| v)
            .count()
    });
    let reuse_speedup = fresh_t.as_secs_f64() / reused_t.as_secs_f64();
    entries.push(num(
        "screening_fresh_engine_ms",
        fresh_t.as_secs_f64() * 1e3,
    ));
    entries.push(num(
        "screening_reused_engine_ms",
        reused_t.as_secs_f64() * 1e3,
    ));
    entries.push(num("engine_reuse_speedup", reuse_speedup));

    // --- Report -----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"bench_pr2\",");
    let _ = writeln!(json, "  \"circuit\": \"{}\",", golden.name());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{}\": {}{}", e.key, e.value, comma);
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!("{json}");
    eprintln!(
        "BSIM {:.2}x, screening {:.2}x at 4 workers; engine reuse {:.2}x \
         (1-worker BSIM {:.2} ms)",
        bsim_speedup_4w, screening_speedup_4w, reuse_speedup, bsim_ms[0],
    );
    eprintln!("wrote {out_path}");

    // Acceptance gate: >= 2x at 4 workers on at least one of the two
    // parallel flows — only meaningful where 4 workers have 4 *quiet*
    // cores. Shared CI runners report 4 vCPUs but scale unpredictably
    // under noisy neighbours, so the hard assert is opt-in via
    // GATEDIAG_BENCH_STRICT=1 (for dedicated perf hosts); everywhere
    // else a miss is reported as a warning, not a failure.
    let scaled = bsim_speedup_4w >= 2.0 || screening_speedup_4w >= 2.0;
    let strict = std::env::var("GATEDIAG_BENCH_STRICT").as_deref() == Ok("1");
    if cores < 4 {
        eprintln!(
            "note: only {cores} core(s) visible; the >= 2x @ 4 workers \
             acceptance gate needs >= 4 cores and was skipped"
        );
    } else if !scaled {
        let msg = format!(
            ">= 2x at 4 workers not reached on {cores} cores \
             (BSIM {bsim_speedup_4w:.2}x, screening {screening_speedup_4w:.2}x)"
        );
        assert!(!strict, "acceptance (GATEDIAG_BENCH_STRICT): {msg}");
        eprintln!("warning: {msg}");
    }
    // The engine-reuse fix must pay off everywhere, including single
    // core — but as a wall-clock comparison it only hard-fails in strict
    // mode (dedicated perf hosts); shared runners get a warning.
    if reuse_speedup < 1.0 {
        let msg = format!("engine reuse did not beat fresh engines ({reuse_speedup:.2}x)");
        assert!(!strict, "acceptance (GATEDIAG_BENCH_STRICT): {msg}");
        eprintln!("warning: {msg}");
    }
}
