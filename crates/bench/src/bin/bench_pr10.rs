//! Emits `BENCH_PR10.json`: the service-layer numbers — cold-vs-warm
//! request latency through a real `gatediag serve` TCP daemon, and
//! sustained requests/sec at 1 and 4 concurrent clients, on the largest
//! bundled circuit.
//!
//! Three measurements:
//!
//! * **Cold latency** — first diagnose request against a freshly
//!   started daemon: bench parse, netlist build, CNF encode and the
//!   full engine run, measured per fresh daemon over several reps.
//! * **Warm latency** — the identical request against a daemon whose
//!   registry already holds the session: a pure cache hit. The warm
//!   response is asserted byte-identical to the cold one, and a
//!   follow-up `obs` request proves the hit charged zero
//!   `netlist.builds` / `cnf.gates_encoded` counters.
//! * **Throughput** — requests/sec sustained by 1 and by 4 concurrent
//!   clients against one warm daemon.
//!
//! Unlike the wall-clock gates of `bench_pr2`/`bench_pr3`, the >= 2x
//! warm-vs-cold acceptance gate is asserted unconditionally: a warm hit
//! skips the entire engine run, so the margin is orders of magnitude on
//! any host and the assert cannot flake on shared runners.
//!
//! Usage: `cargo run --release -p gatediag-bench --bin bench_pr10
//! [-- --out PATH] [--bench-dir DIR]` (default `BENCH_PR10.json` in the
//! working directory).

use gatediag_bench::harness::{baseline_circuit, BaselinePick};
use gatediag_core::json::parse_json;
use gatediag_core::{DiagnoseRequest, EngineKind};
use gatediag_netlist::{s1423_like, write_bench};
use gatediag_serve::{
    render_diagnose_request, serve_tcp, Client, DiagnoseCall, Service, ServiceConfig,
};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fresh-daemon reps for the cold-latency mean.
const COLD_REPS: usize = 3;
/// Requests in the warm-latency timing loop.
const WARM_REPS: u32 = 400;
/// Requests per client in each throughput run.
const THROUGHPUT_REPS: usize = 300;

const SHUTDOWN: &str = "{\"schema\": \"gatediag-serve-v1\", \"op\": \"shutdown\"}";

struct Daemon {
    addr: String,
    accept_loop: JoinHandle<std::io::Result<()>>,
}

/// Starts a daemon on a fresh ephemeral port.
fn daemon(workers: usize) -> Daemon {
    let service = Arc::new(Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accept_loop = std::thread::spawn(move || serve_tcp(service, listener));
    Daemon { addr, accept_loop }
}

impl Daemon {
    fn stop(self) {
        let bye = Client::connect(&self.addr)
            .and_then(|mut c| c.request(SHUTDOWN))
            .expect("shutdown request");
        assert!(
            bye.contains("\"status\": \"ok\""),
            "shutdown refused: {bye}"
        );
        self.accept_loop
            .join()
            .expect("accept loop thread")
            .expect("accept loop exits cleanly");
    }
}

struct Entry {
    key: String,
    value: String,
}

fn num(key: impl Into<String>, value: f64) -> Entry {
    Entry {
        key: key.into(),
        value: if value.is_finite() {
            format!("{value:.4}")
        } else {
            "null".to_string()
        },
    }
}

fn int(key: impl Into<String>, value: u64) -> Entry {
    Entry {
        key: key.into(),
        value: value.to_string(),
    }
}

fn main() {
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut bench_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().expect("--out expects a path");
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(
                    args.get(i)
                        .cloned()
                        .expect("--bench-dir expects a directory"),
                );
            }
            other => panic!("unknown option `{other}` (try --out PATH, --bench-dir DIR)"),
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (golden, _) = baseline_circuit(bench_dir.as_deref(), BaselinePick::Largest, || {
        s1423_like(1)
    });
    let gates = golden.num_functional_gates();
    eprintln!("serving {} ({gates} gates)", golden.name());

    let line = render_diagnose_request(&DiagnoseCall {
        circuit: Some(golden.name().to_string()),
        bench: write_bench(&golden),
        request: DiagnoseRequest {
            engine: EngineKind::Bsat,
            ..DiagnoseRequest::default()
        },
        chaos: None,
        obs: false,
        timing: false,
    });

    let mut entries = vec![
        int("available_cores", cores as u64),
        int("gates", gates as u64),
        int("service_workers", 4),
    ];

    // --- Cold latency: first request against a fresh daemon --------------
    let mut cold = Vec::new();
    let mut cold_response = String::new();
    for rep in 0..COLD_REPS {
        let d = daemon(4);
        let mut client = Client::connect(&d.addr).expect("connect");
        let t = Instant::now();
        let response = client.request(&line).expect("cold request");
        cold.push(t.elapsed());
        assert!(
            response.contains("\"status\": \"ok\""),
            "cold diagnose failed: {response}"
        );
        if rep == 0 {
            cold_response = response;
        } else {
            assert_eq!(
                response, cold_response,
                "cold responses drifted across daemons"
            );
        }
        d.stop();
    }
    let cold_ms = cold.iter().map(Duration::as_secs_f64).sum::<f64>() / cold.len() as f64 * 1e3;
    entries.push(num("cold_ms", cold_ms));

    // --- Warm latency: the same request against a primed daemon ----------
    let d = daemon(4);
    let mut client = Client::connect(&d.addr).expect("connect");
    let primed = client.request(&line).expect("priming request");
    assert_eq!(
        primed, cold_response,
        "warm daemon drifted from the cold response"
    );
    let t = Instant::now();
    for _ in 0..WARM_REPS {
        let response = client.request(&line).expect("warm request");
        assert_eq!(response, cold_response, "warm response drifted");
    }
    let warm_ms = t.elapsed().as_secs_f64() / f64::from(WARM_REPS) * 1e3;
    entries.push(num("warm_ms", warm_ms));
    let warm_speedup = cold_ms / warm_ms.max(1e-9);
    entries.push(num("warm_speedup", warm_speedup));

    // Prove the hits were warm, not fast re-runs: the quarantined meta
    // must flag `warm` and charge no build/encode counters.
    let with_obs = line.replacen(
        "\"op\": \"diagnose\"",
        "\"op\": \"diagnose\", \"obs\": true",
        1,
    );
    let response = client.request(&with_obs).expect("obs request");
    let v = parse_json(&response).expect("obs response is valid JSON");
    let meta = v.get("meta").expect("obs response carries meta");
    assert!(
        meta.get("warm")
            .expect("meta.warm")
            .as_bool("warm")
            .expect("meta.warm is a bool"),
        "repeat request was not a warm hit: {response}"
    );
    let counters = meta.get("counters").expect("meta.counters");
    for counter in ["netlist.builds", "cnf.gates_encoded"] {
        assert!(
            counters.get(counter).is_none(),
            "warm hit charged {counter}: {response}"
        );
    }

    // --- Throughput at 1 and 4 concurrent clients -------------------------
    for clients in [1usize, 4] {
        let addr = &d.addr;
        let line = &line;
        let expected = &cold_response;
        let t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for _ in 0..THROUGHPUT_REPS {
                        let response = client.request(line).expect("throughput request");
                        assert_eq!(&response, expected, "throughput response drifted");
                    }
                });
            }
        });
        let rps = (clients * THROUGHPUT_REPS) as f64 / t.elapsed().as_secs_f64().max(1e-9);
        entries.push(num(format!("rps_{clients}_clients"), rps));
    }
    d.stop();

    // --- Report -----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"bench_pr10\",");
    let _ = writeln!(json, "  \"circuit\": \"{}\",", golden.name());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{}\": {}{}", e.key, e.value, comma);
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR10.json");
    println!("{json}");
    eprintln!(
        "cold {cold_ms:.2} ms, warm {warm_ms:.4} ms -> {warm_speedup:.0}x; \
         see rps_*_clients for sustained throughput"
    );
    eprintln!("wrote {out_path}");

    // Acceptance gate: a warm hit skips the engine entirely, so >= 2x is
    // a floor with orders of magnitude of margin on any host.
    assert!(
        warm_speedup >= 2.0,
        "warm-vs-cold speedup below 2x ({warm_speedup:.2}x)"
    );
}
