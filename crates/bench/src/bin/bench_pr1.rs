//! Emits `BENCH_PR1.json`: the perf trajectory baseline for the PR-1
//! hot-path rewrite (CSR netlist + `PackedSim` + batched path tracing).
//!
//! Measures, on a ≥ 2k-gate generated circuit:
//!
//! * raw simulation throughput (patterns x functional gates / second) of
//!   the scalar engine vs multi-word packed sweeps;
//! * `basic_sim_diagnose` wall time, seed-style (one scalar simulation
//!   per test) vs the packed implementation;
//! * forced-value validity screening, seed-style (allocate-and-sweep per
//!   64-combination batch) vs the incremental cone-propagation oracle.
//!
//! Usage: `cargo run --release -p gatediag-bench --bin bench_pr1
//! [-- --out PATH]` (default `BENCH_PR1.json` in the working directory).

use gatediag_bench::harness::secs;
use gatediag_core::SimValidityEngine;
use gatediag_core::{basic_sim_diagnose, generate_failing_tests, path_trace, BsimOptions, TestSet};
use gatediag_netlist::{inject_errors, Circuit, GateId, GateSet, RandomCircuitSpec, VectorGen};
use gatediag_sim::{pack_vectors_into, simulate, PackedSim};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Repeats `f` until at least `min_time` has elapsed (at least once);
/// returns the mean wall time per call.
fn measure<R>(min_time: Duration, mut f: impl FnMut() -> R) -> Duration {
    // Warm-up.
    std::hint::black_box(f());
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed() < min_time || reps == 0 {
        std::hint::black_box(f());
        reps += 1;
    }
    start.elapsed() / reps
}

/// The seed's `basic_sim_diagnose` loop: scalar simulation per test.
fn seed_style_bsim(circuit: &Circuit, tests: &TestSet, options: BsimOptions) -> Vec<GateSet> {
    tests
        .iter()
        .map(|t| {
            let values = simulate(circuit, &t.vector);
            path_trace(circuit, &values, t.output, options)
        })
        .collect()
}

/// The seed's validity oracle: fresh buffers and a full packed sweep per
/// 64-combination batch (reconstructed from the pre-PackedSim code).
fn seed_style_validity(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    tests.iter().all(|t| {
        let combos = 1u64 << candidates.len();
        let mut base = 0u64;
        while base < combos {
            let lanes = (combos - base).min(64) as usize;
            let forced: Vec<(GateId, u64)> = candidates
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    let mut word = 0u64;
                    for lane in 0..lanes {
                        if (base + lane as u64) >> i & 1 == 1 {
                            word |= 1 << lane;
                        }
                    }
                    (g, word)
                })
                .collect();
            let vectors = vec![t.vector.clone(); lanes];
            let packed = gatediag_sim::pack_vectors(circuit, &vectors);
            let values = gatediag_sim::simulate_packed_forced(circuit, &packed, &forced);
            let out_word = values[t.output.index()];
            for lane in 0..lanes {
                if (out_word >> lane & 1 == 1) == t.expected {
                    return true;
                }
            }
            base += lanes as u64;
        }
        false
    })
}

struct Entry {
    key: &'static str,
    value: String,
}

fn num(key: &'static str, value: f64) -> Entry {
    Entry {
        key,
        value: if value.is_finite() {
            format!("{value:.4}")
        } else {
            "null".to_string()
        },
    }
}

fn int(key: &'static str, value: u64) -> Entry {
    Entry {
        key,
        value: value.to_string(),
    }
}

fn main() {
    let mut out_path = "BENCH_PR1.json".to_string();
    let mut bench_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().expect("--out expects a path");
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(
                    args.get(i)
                        .cloned()
                        .expect("--bench-dir expects a directory"),
                );
            }
            other => panic!("unknown option `{other}` (try --out PATH, --bench-dir DIR)"),
        }
        i += 1;
    }

    // The seed path costs O(gates) per test while the packed path costs
    // O(trace cone), so the speedup grows with circuit size; 6k gates is
    // comfortably inside the "≥ 2k-gate generated circuit" acceptance
    // envelope while keeping the whole run under a few seconds. With
    // `--bench-dir` the largest user-supplied ISCAS89 circuit replaces
    // the synthetic one (and the size floor no longer applies).
    let budget = Duration::from_millis(800);
    let (golden, from_bench) = gatediag_bench::harness::baseline_circuit(
        bench_dir.as_deref(),
        gatediag_bench::harness::BaselinePick::Largest,
        || {
            RandomCircuitSpec::new(32, 8, 6000)
                .seed(7)
                .name("bench_pr1_6000g")
                .generate()
        },
    );
    let gates = golden.num_functional_gates() as u64;
    assert!(
        from_bench || gates >= 2000,
        "benchmark circuit must have >= 2k gates"
    );
    // Retry injection seeds until the errors are observable enough for a
    // multi-word test pool (some injections land in near-redundant logic).
    let (faulty, sites, tests) = (7u64..64)
        .find_map(|inject_seed| {
            let (faulty, sites) = inject_errors(&golden, 2, inject_seed);
            let tests = generate_failing_tests(&golden, &faulty, 256, 7, 1 << 16);
            (tests.len() >= 64).then_some((faulty, sites, tests))
        })
        .expect("no injection seed yields a multi-word test pool");
    eprintln!(
        "circuit: {} functional gates, {} inputs, {} failing tests",
        gates,
        golden.inputs().len(),
        tests.len()
    );

    // --- Raw simulation throughput -------------------------------------
    let mut gen = VectorGen::new(&faulty, 3);
    let vectors: Vec<Vec<bool>> = (0..512).map(|_| gen.next_vector()).collect();
    let scalar_time = measure(budget, || {
        let mut acc = false;
        for v in &vectors[..8] {
            let values = simulate(&faulty, v);
            acc ^= *values.last().expect("non-empty");
        }
        acc
    });
    let scalar_patterns_per_sec = 8.0 / scalar_time.as_secs_f64();

    let mut packed = Vec::new();
    let words = pack_vectors_into(&faulty, &vectors, &mut packed);
    let mut sim = PackedSim::new(&faulty);
    sim.reset(words);
    sim.set_input_words(&packed);
    let packed_time = measure(budget, || {
        sim.sweep();
        sim.values()[faulty.len() * words - 1]
    });
    let packed_patterns_per_sec = 512.0 / packed_time.as_secs_f64();
    let sim_speedup = packed_patterns_per_sec / scalar_patterns_per_sec;

    // --- BSIM diagnose -------------------------------------------------
    // Pinned sequential: this baseline measures the single-core packed
    // substrate against the seed's scalar loop. Multi-worker scaling has
    // its own trajectory file (bench_pr2 / BENCH_PR2.json); letting Auto
    // pick up cores here would silently conflate the two.
    let options = BsimOptions {
        parallelism: gatediag_sim::Parallelism::Sequential,
        ..BsimOptions::default()
    };
    let seed_bsim_time = measure(budget, || seed_style_bsim(&faulty, &tests, options).len());
    let packed_bsim_time = measure(budget, || {
        basic_sim_diagnose(&faulty, &tests, options)
            .candidate_sets
            .len()
    });
    let bsim_speedup = seed_bsim_time.as_secs_f64() / packed_bsim_time.as_secs_f64();

    // Sanity: both paths agree bit-for-bit before we publish numbers.
    let fast = basic_sim_diagnose(&faulty, &tests, options);
    let reference = seed_style_bsim(&faulty, &tests, options);
    assert_eq!(fast.candidate_sets, reference, "BSIM behavioral drift");

    // --- Validity screening --------------------------------------------
    let candidates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
    let screen_tests = tests.prefix_at_most(32);
    let seed_validity_time = measure(budget, || {
        seed_style_validity(&faulty, &screen_tests, &candidates)
    });
    let packed_validity_time = measure(budget, || {
        SimValidityEngine::new(&faulty).is_valid(&screen_tests, &candidates)
    });
    assert_eq!(
        SimValidityEngine::new(&faulty).is_valid(&screen_tests, &candidates),
        seed_style_validity(&faulty, &screen_tests, &candidates),
        "validity verdict drift"
    );
    let validity_speedup = seed_validity_time.as_secs_f64() / packed_validity_time.as_secs_f64();

    // --- Report ---------------------------------------------------------
    let entries = vec![
        int("functional_gates", gates),
        int("inputs", golden.inputs().len() as u64),
        int("tests", tests.len() as u64),
        int("patterns_per_sweep", 64 * words as u64),
        num("scalar_sim_patterns_per_sec", scalar_patterns_per_sec),
        num(
            "scalar_sim_pattern_gates_per_sec",
            scalar_patterns_per_sec * gates as f64,
        ),
        num("packed_sim_patterns_per_sec", packed_patterns_per_sec),
        num(
            "packed_sim_pattern_gates_per_sec",
            packed_patterns_per_sec * gates as f64,
        ),
        num("packed_vs_scalar_sim_speedup", sim_speedup),
        num("bsim_seed_style_ms", seed_bsim_time.as_secs_f64() * 1e3),
        num("bsim_packed_ms", packed_bsim_time.as_secs_f64() * 1e3),
        num("bsim_speedup", bsim_speedup),
        num(
            "validity_seed_style_ms",
            seed_validity_time.as_secs_f64() * 1e3,
        ),
        num(
            "validity_incremental_ms",
            packed_validity_time.as_secs_f64() * 1e3,
        ),
        num("validity_speedup", validity_speedup),
    ];
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"bench_pr1\",");
    let _ = writeln!(json, "  \"circuit\": \"{}\",", golden.name());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{}\": {}{}", e.key, e.value, comma);
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR1.json");
    println!("{json}");
    eprintln!(
        "sim speedup {:.1}x, BSIM speedup {:.1}x, validity speedup {:.1}x (sweep {})",
        sim_speedup,
        bsim_speedup,
        validity_speedup,
        secs(packed_bsim_time)
    );
    eprintln!("wrote {out_path}");
    // The ≥5x acceptance gate is calibrated for the ≥2k-gate synthetic
    // circuit; a user-supplied --bench-dir corpus may be arbitrarily
    // small, so there it only reports.
    assert!(
        from_bench || (sim_speedup >= 5.0 && bsim_speedup >= 5.0),
        "acceptance: >= 5x speedup over the scalar-per-test seed path \
         (got sim {sim_speedup:.1}x, bsim {bsim_speedup:.1}x)"
    );
}
