//! Regenerates the paper's **Table 3**: quality of the basic approaches.
//!
//! BSIM columns: `|∪Ci|` (gates marked), `avgA` (mean distance of marked
//! gates to the nearest real error), `Gmax` (gates with maximal mark
//! count) and the min/max/avg distance within `Gmax`. COV and BSAT
//! columns: solution count and min/max/avg of the per-solution average
//! distance.
//!
//! ```text
//! cargo run --release -p gatediag-bench --bin table3 -- [--scale quick|full] [--seed N]
//! ```

use gatediag_bench::harness::{
    configured_workloads, parse_config, run_cell, write_artifact, TEST_COUNTS,
};
use std::fmt::Write as _;

fn main() {
    let config = parse_config();
    let (seed, limits) = (config.seed, config.limits);
    println!("Table 3: quality of the basic approaches");
    println!("(distances in gates to the nearest injected error; seed {seed})\n");
    println!(
        "{:<12} {:>2} {:>3} | {:>6} {:>6} {:>5} {:>4} {:>4} {:>6} | {:>7} {:>5} {:>5} {:>6} | {:>7} {:>5} {:>5} {:>6}",
        "circuit", "p", "m", "|uCi|", "avgA", "Gmax", "min", "max", "avgG",
        "COV#sol", "min", "max", "avg",
        "SAT#sol", "min", "max", "avg"
    );
    println!("{}", "-".repeat(132));
    let mut csv = String::from(
        "circuit,p,m,union,avg_all,gmax,gmax_min,gmax_max,gmax_avg,cov_sols,cov_min,cov_max,cov_avg,bsat_sols,bsat_min,bsat_max,bsat_avg\n",
    );
    for workload in configured_workloads(&config) {
        for m in TEST_COUNTS {
            if workload.tests.len() < m {
                println!(
                    "{:<12} {:>2} {:>3} | (only {} failing tests exposed; skipped)",
                    workload.name,
                    workload.p,
                    m,
                    workload.tests.len()
                );
                continue;
            }
            let cell = run_cell(&workload, m, limits);
            let b = &cell.bsim_quality;
            let c = &cell.cov_quality;
            let s = &cell.bsat_quality;
            println!(
                "{:<12} {:>2} {:>3} | {:>6} {:>6.2} {:>5} {:>4} {:>4} {:>6.2} | {:>7} {:>5.2} {:>5.2} {:>6.2} | {:>7} {:>5.2} {:>5.2} {:>6.2}",
                cell.name, cell.p, cell.m,
                b.union_size, b.avg_all, b.gmax_size, b.gmax_min, b.gmax_max, b.gmax_avg,
                c.num_solutions, c.min, c.max, c.avg,
                s.num_solutions, s.min, s.max, s.avg,
            );
            let _ = writeln!(
                csv,
                "{},{},{},{},{:.4},{},{},{},{:.4},{},{:.4},{:.4},{:.4},{},{:.4},{:.4},{:.4}",
                cell.name,
                cell.p,
                cell.m,
                b.union_size,
                b.avg_all,
                b.gmax_size,
                b.gmax_min,
                b.gmax_max,
                b.gmax_avg,
                c.num_solutions,
                c.min,
                c.max,
                c.avg,
                s.num_solutions,
                s.min,
                s.max,
                s.avg,
            );
        }
    }
    println!(
        "\nExpected shape (paper): BSAT returns fewer solutions of better (smaller)\n\
         average distance than COV in nearly all configurations; BSIM's Gmax often\n\
         contains a real error site (min = 0) but cannot guarantee it."
    );
    write_artifact("table3.csv", &csv);
}
