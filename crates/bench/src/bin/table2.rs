//! Regenerates the paper's **Table 2**: runtimes of the basic approaches.
//!
//! Columns as in the paper: circuit, p, m; COV's "CNF" (instance build,
//! including BSIM), "One" (first solution) and "All" (complete
//! enumeration); the same three for BSAT. BSIM's single column is its
//! total wall time.
//!
//! ```text
//! cargo run --release -p gatediag-bench --bin table2 -- [--scale quick|full] [--seed N]
//! ```

use gatediag_bench::harness::{
    configured_workloads_with_source, parse_config, run_cell, secs, write_artifact, WorkloadSource,
    TEST_COUNTS,
};
use std::fmt::Write as _;

fn main() {
    let config = parse_config();
    let (seed, limits) = (config.seed, config.limits);
    // Resolve the workloads before printing the header: an empty
    // --bench-dir falls back to the synthetics, and the header must say
    // which circuits the numbers were actually measured on.
    let (workloads, source) = configured_workloads_with_source(&config);
    println!("Table 2: runtime of the basic approaches (seconds)");
    match (source, &config.bench_dir) {
        (WorkloadSource::BenchDir, Some(dir)) => {
            println!("(.bench circuits from {dir}, seed {seed})\n")
        }
        _ => println!("(profile-matched synthetic ISCAS89 stand-ins, seed {seed})\n"),
    }
    println!(
        "{:<12} {:>2} {:>3} | {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "circuit",
        "p",
        "m",
        "BSIM",
        "COV:CNF",
        "COV:One",
        "COV:All",
        "SAT:CNF",
        "SAT:One",
        "SAT:All"
    );
    println!("{}", "-".repeat(96));
    let mut csv = String::from(
        "circuit,p,m,bsim_s,cov_cnf_s,cov_one_s,cov_all_s,bsat_cnf_s,bsat_one_s,bsat_all_s,cov_complete,bsat_complete\n",
    );
    for workload in workloads {
        for m in TEST_COUNTS {
            if workload.tests.len() < m {
                println!(
                    "{:<12} {:>2} {:>3} | (only {} failing tests exposed; skipped)",
                    workload.name,
                    workload.p,
                    m,
                    workload.tests.len()
                );
                continue;
            }
            let cell = run_cell(&workload, m, limits);
            let note = match (cell.cov.complete, cell.bsat.complete) {
                (true, true) => "",
                (false, true) => "  [COV truncated]",
                (true, false) => "  [BSAT truncated]",
                (false, false) => "  [both truncated]",
            };
            println!(
                "{:<12} {:>2} {:>3} | {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}{}",
                cell.name,
                cell.p,
                cell.m,
                secs(cell.bsim_time),
                secs(cell.cov.build_time),
                secs(cell.cov.first_solution_time),
                secs(cell.cov.total_time),
                secs(cell.bsat.build_time),
                secs(cell.bsat.first_solution_time),
                secs(cell.bsat.total_time),
                note,
            );
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                cell.name,
                cell.p,
                cell.m,
                cell.bsim_time.as_secs_f64(),
                cell.cov.build_time.as_secs_f64(),
                cell.cov.first_solution_time.as_secs_f64(),
                cell.cov.total_time.as_secs_f64(),
                cell.bsat.build_time.as_secs_f64(),
                cell.bsat.first_solution_time.as_secs_f64(),
                cell.bsat.total_time.as_secs_f64(),
                cell.cov.complete,
                cell.bsat.complete,
            );
        }
    }
    println!(
        "\nExpected shape (paper): BSIM < COV << BSAT; BSAT pays for the\n\
         effect analysis that makes its solutions guaranteed valid corrections."
    );
    write_artifact("table2.csv", &csv);
}
