//! Emits `BENCH_PR3.json`: the SAT-side scaling numbers, extending the
//! `BENCH_PR1.json` / `BENCH_PR2.json` trajectory.
//!
//! Three measurements:
//!
//! * **Flat-watcher propagation** — the production [`Solver`] (CSR flat
//!   watch lists + binary fast path) vs the [`LegacySolver`] baseline
//!   (the seed's `Vec<Vec<Watcher>>`) on the `benches/solver.rs`
//!   workloads, as wall time and as propagations/second. Verdicts are
//!   cross-asserted before any number is published.
//! * **Per-worker BSAT scaling** — `basic_sat_diagnose` with the
//!   parallel per-test CNF build at 1/2/4 workers, solutions asserted
//!   bit-identical to the sequential build first.
//! * **Per-worker validity-`_sat` scaling** — the per-test-sharded
//!   oracle [`is_valid_correction_sat_par`] at 1/2/4 workers (plus the
//!   batch SAT screen), verdicts asserted identical first.
//!
//! As in `bench_pr2`, the ≥ 1.2x flat-watcher gate is a hard assert only
//! with `GATEDIAG_BENCH_STRICT=1` (dedicated perf hosts); shared CI
//! runners still emit the JSON and downgrade a miss to a warning. The
//! parallel-scaling numbers document whatever the host provides — on a
//! single-core container the pool degrades to ~1x by design, while the
//! bit-identity asserts hold everywhere.
//!
//! Usage: `cargo run --release -p gatediag-bench --bin bench_pr3
//! [-- --out PATH]` (default `BENCH_PR3.json` in the working directory).

use gatediag_bench::solver_workloads::{
    load_flat, load_legacy, pigeonhole, random_3sat, PROBE_SEED,
};
use gatediag_core::{
    basic_sat_diagnose, generate_failing_tests, is_valid_correction_sat,
    is_valid_correction_sat_par, screen_valid_corrections_sat, BsatOptions, Parallelism,
};
use gatediag_netlist::{inject_errors, GateId, RandomCircuitSpec};
use gatediag_sat::{LegacySolver, Lit, SolveResult, Solver, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Worker counts the SAT scaling sweep covers.
const SWEEP: [usize; 3] = [1, 2, 4];

/// Repeats `f` until at least `min_time` has elapsed (at least once);
/// returns the mean wall time per call.
fn measure<R>(min_time: Duration, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed() < min_time || reps == 0 {
        std::hint::black_box(f());
        reps += 1;
    }
    start.elapsed() / reps
}

struct Entry {
    key: String,
    value: String,
}

fn num(key: impl Into<String>, value: f64) -> Entry {
    Entry {
        key: key.into(),
        value: if value.is_finite() {
            format!("{value:.4}")
        } else {
            "null".to_string()
        },
    }
}

fn int(key: impl Into<String>, value: u64) -> Entry {
    Entry {
        key: key.into(),
        value: value.to_string(),
    }
}

/// One flat-vs-legacy comparison: returns
/// `(flat_ms, legacy_ms, flat_props_per_sec, legacy_props_per_sec)`.
fn compare_solvers(
    budget: Duration,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    probes: usize,
) -> (f64, f64, f64, f64) {
    let run_flat = |s: &mut Solver| {
        if probes == 0 {
            let r = s.solve(&[]);
            assert_ne!(r, SolveResult::Unknown);
            r
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(PROBE_SEED);
            let mut last = SolveResult::Unknown;
            for _ in 0..probes {
                let a = Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5));
                last = s.solve(&[a]);
            }
            last
        }
    };
    let run_legacy = |s: &mut LegacySolver| {
        if probes == 0 {
            let r = s.solve(&[]);
            assert_ne!(r, SolveResult::Unknown);
            r
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(PROBE_SEED);
            let mut last = SolveResult::Unknown;
            for _ in 0..probes {
                let a = Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5));
                last = s.solve(&[a]);
            }
            last
        }
    };
    // Cross-check: both engines are exact, so identical workloads must
    // produce identical verdicts (one-shot) before timing anything.
    {
        let mut f = load_flat(num_vars, clauses);
        let mut l = load_legacy(num_vars, clauses);
        assert_eq!(run_flat(&mut f), run_legacy(&mut l), "verdict drift");
    }
    let flat_t = measure(budget, || {
        let mut s = load_flat(num_vars, clauses);
        run_flat(&mut s)
    });
    let legacy_t = measure(budget, || {
        let mut s = load_legacy(num_vars, clauses);
        run_legacy(&mut s)
    });
    // Propagation throughput: propagations per second of one full run.
    let mut f = load_flat(num_vars, clauses);
    let t0 = Instant::now();
    run_flat(&mut f);
    let flat_pps = f.stats().propagations as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let mut l = load_legacy(num_vars, clauses);
    let t1 = Instant::now();
    run_legacy(&mut l);
    let legacy_pps = l.stats().propagations as f64 / t1.elapsed().as_secs_f64().max(1e-9);
    (
        flat_t.as_secs_f64() * 1e3,
        legacy_t.as_secs_f64() * 1e3,
        flat_pps,
        legacy_pps,
    )
}

fn main() {
    let mut out_path = "BENCH_PR3.json".to_string();
    let mut bench_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().expect("--out expects a path");
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(
                    args.get(i)
                        .cloned()
                        .expect("--bench-dir expects a directory"),
                );
            }
            other => panic!("unknown option `{other}` (try --out PATH, --bench-dir DIR)"),
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = Duration::from_millis(600);
    let mut entries = vec![int("available_cores", cores as u64)];

    // --- Flat vs legacy watchers on the benches/solver.rs workloads ------
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let workloads: [(&str, usize, Vec<Vec<Lit>>, usize); 3] = {
        let (nv_php, php) = pigeonhole(8, 7);
        let (nv_sat, sat) = random_3sat(150, 600, 7);
        let (nv_inc, inc) = random_3sat(120, 430, 9);
        [
            ("pigeonhole_8_7", nv_php, php, 0),
            ("random3sat_150v_600c", nv_sat, sat, 0),
            ("incremental_100_probes", nv_inc, inc, 100),
        ]
    };
    for (name, nv, clauses, probes) in &workloads {
        let (flat_ms, legacy_ms, flat_pps, legacy_pps) =
            compare_solvers(budget, *nv, clauses, *probes);
        let speedup = legacy_ms / flat_ms;
        entries.push(num(format!("solver_{name}_flat_ms"), flat_ms));
        entries.push(num(format!("solver_{name}_legacy_ms"), legacy_ms));
        entries.push(num(format!("solver_{name}_speedup"), speedup));
        entries.push(num(
            format!("solver_{name}_props_per_sec_ratio"),
            flat_pps / legacy_pps,
        ));
        speedups.push((name.to_string(), speedup));
    }
    let best = speedups.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);
    let geomean = (speedups.iter().map(|(_, s)| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    entries.push(num("flat_watcher_speedup_best", best));
    entries.push(num("flat_watcher_speedup_geomean", geomean));

    // --- BSAT per-worker scaling (parallel per-test CNF build) -----------
    // BSAT instances grow as (gates × tests) with CDCL enumeration on
    // top, so the benchmark circuit is deliberately smaller than the
    // simulation-side benchmarks' 6k gates: ~600 gates × 32 tests keeps a
    // full enumeration in the hundreds of milliseconds. For the same
    // reason `--bench-dir` picks the *smallest* user-supplied circuit
    // here (the sim-side binaries pick the largest).
    let (golden, _from_bench) = gatediag_bench::harness::baseline_circuit(
        bench_dir.as_deref(),
        gatediag_bench::harness::BaselinePick::Smallest,
        || {
            RandomCircuitSpec::new(16, 4, 600)
                .seed(11)
                .name("bench_pr3_600g")
                .generate()
        },
    );
    let gates = golden.num_functional_gates() as u64;
    let (faulty, _sites, tests) = (11u64..64)
        .find_map(|inject_seed| {
            let (faulty, sites) = inject_errors(&golden, 2, inject_seed);
            let tests = generate_failing_tests(&golden, &faulty, 32, 11, 1 << 15);
            (tests.len() >= 16).then_some((faulty, sites, tests))
        })
        .expect("no injection seed yields enough failing tests");
    entries.push(int("bsat_functional_gates", gates));
    entries.push(int("bsat_tests", tests.len() as u64));
    eprintln!(
        "BSAT circuit: {} functional gates, {} failing tests, {} cores visible",
        gates,
        tests.len(),
        cores
    );
    // BSAT runs are hundreds of ms each; a larger budget buys enough
    // repetitions for a stable mean on noisy shared runners.
    let bsat_budget = Duration::from_millis(1500);
    let baseline = basic_sat_diagnose(
        &faulty,
        &tests,
        2,
        BsatOptions {
            parallelism: Parallelism::Sequential,
            ..BsatOptions::default()
        },
    );
    let mut bsat_ms = Vec::new();
    for &workers in &SWEEP {
        let options = BsatOptions {
            parallelism: Parallelism::Fixed(workers),
            ..BsatOptions::default()
        };
        let result = basic_sat_diagnose(&faulty, &tests, 2, options.clone());
        assert_eq!(
            result.solutions, baseline.solutions,
            "BSAT drifted at {workers} workers"
        );
        let opts = options.clone();
        let t = measure(bsat_budget, || {
            basic_sat_diagnose(&faulty, &tests, 2, opts.clone())
                .solutions
                .len()
        });
        bsat_ms.push(t.as_secs_f64() * 1e3);
        entries.push(num(format!("bsat_ms_{workers}w"), t.as_secs_f64() * 1e3));
        // The parallel phase is the CNF build; report its share of one
        // representative run (build/total from the *same* call, so the
        // Amdahl split is internally consistent) next to the total.
        entries.push(num(
            format!("bsat_build_frac_{workers}w"),
            result.build_time.as_secs_f64() / result.total_time.as_secs_f64().max(1e-9),
        ));
    }
    entries.push(num("bsat_speedup_4w", bsat_ms[0] / bsat_ms[2]));

    // --- Validity `_sat` oracle per-worker scaling ------------------------
    let functional: Vec<GateId> = faulty
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .collect();
    let candidates = vec![
        functional[functional.len() / 3],
        functional[2 * functional.len() / 3],
    ];
    let screen_sets: Vec<Vec<GateId>> = functional
        .iter()
        .step_by(7)
        .take(48)
        .map(|&g| vec![g])
        .collect();
    let sequential_verdict = is_valid_correction_sat(&faulty, &tests, &candidates);
    let sequential_screen =
        screen_valid_corrections_sat(&faulty, &tests, &screen_sets, Parallelism::Sequential);
    let mut valsat_ms = Vec::new();
    for &workers in &SWEEP {
        let parallelism = Parallelism::Fixed(workers);
        assert_eq!(
            is_valid_correction_sat_par(&faulty, &tests, &candidates, parallelism),
            sequential_verdict,
            "validity _sat verdict drifted at {workers} workers"
        );
        assert_eq!(
            screen_valid_corrections_sat(&faulty, &tests, &screen_sets, parallelism),
            sequential_screen,
            "validity _sat screen drifted at {workers} workers"
        );
        let t = measure(budget, || {
            is_valid_correction_sat_par(&faulty, &tests, &candidates, parallelism)
        });
        valsat_ms.push(t.as_secs_f64() * 1e3);
        entries.push(num(
            format!("validity_sat_ms_{workers}w"),
            t.as_secs_f64() * 1e3,
        ));
        let ts = measure(budget, || {
            screen_valid_corrections_sat(&faulty, &tests, &screen_sets, parallelism)
                .iter()
                .filter(|&&v| v)
                .count()
        });
        entries.push(num(
            format!("validity_sat_screen_ms_{workers}w"),
            ts.as_secs_f64() * 1e3,
        ));
    }
    entries.push(num("validity_sat_speedup_4w", valsat_ms[0] / valsat_ms[2]));

    // --- Report -----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"bench_pr3\",");
    let _ = writeln!(json, "  \"circuit\": \"{}\",", golden.name());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{}\": {}{}", e.key, e.value, comma);
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    println!("{json}");
    eprintln!(
        "flat-watcher speedup: best {best:.2}x, geomean {geomean:.2}x; \
         BSAT {:.2}x and validity-_sat {:.2}x at 4 workers",
        bsat_ms[0] / bsat_ms[2],
        valsat_ms[0] / valsat_ms[2],
    );
    eprintln!("wrote {out_path}");

    // Acceptance gate: the flat watcher scheme must clear >= 1.2x on at
    // least one benches/solver.rs workload. Wall-clock comparisons are
    // only trustworthy on quiet dedicated hosts, so (as in bench_pr2)
    // the hard assert is opt-in via GATEDIAG_BENCH_STRICT=1; elsewhere a
    // miss is downgraded to a warning.
    let strict = std::env::var("GATEDIAG_BENCH_STRICT").as_deref() == Ok("1");
    if best < 1.2 {
        let msg = format!("flat-watcher speedup below 1.2x (best {best:.2}x)");
        assert!(!strict, "acceptance (GATEDIAG_BENCH_STRICT): {msg}");
        eprintln!("warning: {msg}");
    }
    if cores < 4 {
        eprintln!(
            "note: only {cores} core(s) visible; the 4-worker SAT scaling \
             numbers document graceful degradation, not speedup"
        );
    }
}
