//! Shared experiment harness for the paper's Tables 2-3 and Figure 6.
//!
//! The paper's workloads: ISCAS89 circuits `s1423` (4 injected errors),
//! `s6669` (3 errors) and `s38417` (2 errors), diagnosed with
//! `m ∈ {4, 8, 16, 32}` prefix tests of one generated test-set and
//! `k = p`. The circuits here are profile-matched synthetics (see
//! `gatediag-netlist`'s generator docs and DESIGN.md for the
//! substitution rationale); real `.bench` files can be dropped in with
//! [`Workload::from_bench`].

use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, bsim_quality, sc_diagnose, solution_quality,
    BsatOptions, BsatResult, BsimOptions, BsimQuality, CovOptions, CovResult, SolutionQuality,
    TestSet,
};
use gatediag_netlist::{
    inject_errors, parse_bench_named, s1423_like, s38417_like, s6669_like, Circuit, GateId,
};
use std::time::{Duration, Instant};

/// Which benchmark circuits to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// `s1423_like` and `s6669_like` — minutes of runtime.
    Quick,
    /// All three profiles including `s38417_like` — can take much longer.
    Full,
}

impl Scale {
    /// Parses `quick` / `full` (case-insensitive).
    pub fn parse(text: &str) -> Option<Scale> {
        match text.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A diagnosis workload: a faulty circuit, its known error sites and a
/// pool of failing tests.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name for reporting.
    pub name: String,
    /// The faulty circuit under diagnosis.
    pub faulty: Circuit,
    /// Number of injected errors (the paper's `p`, also used as `k`).
    pub p: usize,
    /// The injected error sites.
    pub errors: Vec<GateId>,
    /// Pool of failing tests (up to 32; experiments use prefixes).
    pub tests: TestSet,
}

impl Workload {
    /// Builds a workload from a golden circuit by injecting `p` errors and
    /// collecting up to 32 failing tests.
    pub fn from_golden(name: &str, golden: Circuit, p: usize, seed: u64) -> Workload {
        // Retry injection seeds until the errors are observable enough to
        // provide a full 32-test pool (profile circuits occasionally bury
        // an error in a near-redundant region).
        let mut inject_seed = seed;
        loop {
            let (faulty, sites) = inject_errors(&golden, p, inject_seed);
            let tests = gatediag_core::generate_failing_tests(&golden, &faulty, 32, seed, 1 << 17);
            if tests.len() >= 32 || inject_seed > seed + 20 {
                return Workload {
                    name: name.to_string(),
                    faulty,
                    p,
                    errors: sites.iter().map(|s| s.gate).collect(),
                    tests,
                };
            }
            inject_seed += 1;
        }
    }

    /// Builds a workload from real `.bench` text (for users with the
    /// original ISCAS89 files).
    ///
    /// # Errors
    ///
    /// Propagates netlist parse errors.
    pub fn from_bench(
        name: &str,
        bench_text: &str,
        p: usize,
        seed: u64,
    ) -> Result<Workload, gatediag_netlist::NetlistError> {
        let golden = parse_bench_named(bench_text, name)?;
        Ok(Workload::from_golden(name, golden, p, seed))
    }
}

/// The paper's three benchmark configurations.
pub fn paper_workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    let mut workloads = vec![
        Workload::from_golden("s1423_like", s1423_like(seed), 4, seed),
        Workload::from_golden("s6669_like", s6669_like(seed), 3, seed),
    ];
    if scale == Scale::Full {
        workloads.push(Workload::from_golden(
            "s38417_like",
            s38417_like(seed),
            2,
            seed,
        ));
    }
    workloads
}

/// The paper's test-count sweep.
pub const TEST_COUNTS: [usize; 4] = [4, 8, 16, 32];

/// Caps protecting the harness from pathological enumeration blow-ups;
/// truncations are reported in the output.
#[derive(Copy, Clone, Debug)]
pub struct Limits {
    /// Maximum solutions enumerated per engine per configuration.
    pub max_solutions: usize,
    /// Conflict budget for the whole BSAT run (`None` = unlimited).
    pub bsat_conflict_budget: Option<u64>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_solutions: 50_000,
            bsat_conflict_budget: Some(20_000_000),
        }
    }
}

/// All measurements for one `(workload, m)` cell of the paper's tables.
#[derive(Clone, Debug)]
pub struct CellMetrics {
    /// Circuit name.
    pub name: String,
    /// Injected error count `p` (= `k`).
    pub p: usize,
    /// Number of tests `m`.
    pub m: usize,
    /// BSIM wall time (Table 2 "BSIM").
    pub bsim_time: Duration,
    /// BSIM quality metrics (Table 3 left).
    pub bsim_quality: BsimQuality,
    /// COV result (times + solutions).
    pub cov: CovResult,
    /// COV quality metrics.
    pub cov_quality: SolutionQuality,
    /// BSAT result (times + solutions).
    pub bsat: BsatResult,
    /// BSAT quality metrics.
    pub bsat_quality: SolutionQuality,
}

/// Runs all three engines on the first `m` tests of `workload`.
///
/// # Panics
///
/// Panics if the workload has fewer than `m` tests.
pub fn run_cell(workload: &Workload, m: usize, limits: Limits) -> CellMetrics {
    assert!(
        workload.tests.len() >= m,
        "{}: only {} failing tests available, need {m}",
        workload.name,
        workload.tests.len()
    );
    let tests = workload.tests.prefix(m);
    let k = workload.p;

    let t0 = Instant::now();
    let bsim = basic_sim_diagnose(&workload.faulty, &tests, BsimOptions::default());
    let bsim_time = t0.elapsed();
    let bq = bsim_quality(&workload.faulty, &bsim, &workload.errors);

    let cov = sc_diagnose(
        &workload.faulty,
        &tests,
        k,
        CovOptions {
            max_solutions: limits.max_solutions,
            ..CovOptions::default()
        },
    );
    let cq = solution_quality(&workload.faulty, &cov.solutions, &workload.errors);

    let bsat = basic_sat_diagnose(
        &workload.faulty,
        &tests,
        k,
        BsatOptions {
            max_solutions: limits.max_solutions,
            conflict_budget: limits.bsat_conflict_budget,
            ..BsatOptions::default()
        },
    );
    let sq = solution_quality(&workload.faulty, &bsat.solutions, &workload.errors);

    CellMetrics {
        name: workload.name.clone(),
        p: workload.p,
        m,
        bsim_time,
        bsim_quality: bq,
        cov,
        cov_quality: cq,
        bsat,
        bsat_quality: sq,
    }
}

/// Formats a duration the way the paper's tables do (seconds, 2 decimals).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Circuit selection.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Enumeration caps.
    pub limits: Limits,
    /// When set, run only the workload whose name contains this string.
    pub only: Option<String>,
}

/// Parses `--scale`, `--seed`, `--max-solutions`, `--only` command-line
/// options shared by the experiment binaries. Returns `(scale, seed,
/// limits)` for compatibility; use [`parse_config`] for the full set.
///
/// # Panics
///
/// Panics with a usage message on malformed options.
pub fn parse_args() -> (Scale, u64, Limits) {
    let c = parse_config();
    (c.scale, c.seed, c.limits)
}

/// Full option parsing (see [`parse_args`]).
///
/// # Panics
///
/// Panics with a usage message on malformed options.
pub fn parse_config() -> RunConfig {
    let mut scale = Scale::Quick;
    let mut seed = 1u64;
    let mut limits = Limits::default();
    let mut only: Option<String> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| panic!("--scale expects quick|full"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed expects an integer"));
            }
            "--max-solutions" => {
                i += 1;
                limits.max_solutions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--max-solutions expects an integer"));
            }
            "--only" => {
                i += 1;
                only = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| panic!("--only expects a circuit name")),
                );
            }
            other => panic!(
                "unknown option `{other}` (try --scale quick|full, --seed N, --max-solutions N, --only NAME)"
            ),
        }
        i += 1;
    }
    RunConfig {
        scale,
        seed,
        limits,
        only,
    }
}

/// Applies the `--only` filter of a [`RunConfig`] to the paper workloads.
pub fn configured_workloads(config: &RunConfig) -> Vec<Workload> {
    paper_workloads(config.scale, config.seed)
        .into_iter()
        .filter(|w| {
            config
                .only
                .as_ref()
                .map(|needle| w.name.contains(needle.as_str()))
                .unwrap_or(true)
        })
        .collect()
}

/// Writes `content` under `target/experiments/<file>` and reports the path.
pub fn write_artifact(file: &str, content: &str) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(file);
        if std::fs::write(&path, content).is_ok() {
            println!("\nwrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::RandomCircuitSpec;

    #[test]
    fn workload_has_observable_errors() {
        let golden = RandomCircuitSpec::new(8, 4, 120).seed(3).generate();
        let w = Workload::from_golden("t", golden, 2, 3);
        assert_eq!(w.errors.len(), 2);
        assert!(!w.tests.is_empty());
    }

    #[test]
    fn run_cell_produces_consistent_metrics() {
        let golden = RandomCircuitSpec::new(8, 4, 120).seed(5).generate();
        let w = Workload::from_golden("t", golden, 2, 5);
        let m = w.tests.len().min(4);
        let cell = run_cell(&w, m, Limits::default());
        assert_eq!(cell.m, m);
        assert_eq!(cell.cov_quality.num_solutions, cell.cov.solutions.len());
        assert_eq!(cell.bsat_quality.num_solutions, cell.bsat.solutions.len());
        // BSAT min distance should be 0 here: the singleton error sites are
        // enumerable at k = p ≥ 1 (they are valid corrections).
        if cell.bsat.complete && !cell.bsat.solutions.is_empty() {
            assert_eq!(cell.bsat_quality.min, 0.0);
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
    }

    #[test]
    fn workload_from_bench_round_trip() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = NOT(x)\n";
        let w = Workload::from_bench("mini", src, 1, 2).unwrap();
        assert_eq!(w.name, "mini");
        assert_eq!(w.errors.len(), 1);
    }
}
