//! Shared experiment harness for the paper's Tables 2-3 and Figure 6.
//!
//! The paper's workloads: ISCAS89 circuits `s1423` (4 injected errors),
//! `s6669` (3 errors) and `s38417` (2 errors), diagnosed with
//! `m ∈ {4, 8, 16, 32}` prefix tests of one generated test-set and
//! `k = p`. The circuits here are profile-matched synthetics (see
//! `gatediag-netlist`'s generator docs and DESIGN.md for the
//! substitution rationale); real `.bench` files can be dropped in with
//! [`Workload::from_bench`].

use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, bsim_quality, sc_diagnose, solution_quality,
    BsatOptions, BsatResult, BsimOptions, BsimQuality, CovOptions, CovResult, SolutionQuality,
    TestSet,
};
use gatediag_netlist::{
    inject_errors, parse_bench_dir_strict, parse_bench_named, s1423_like, s38417_like, s6669_like,
    Circuit, GateId,
};
use std::time::{Duration, Instant};

/// Which benchmark circuits to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// `s1423_like` and `s6669_like` — minutes of runtime.
    Quick,
    /// All three profiles including `s38417_like` — can take much longer.
    Full,
}

impl Scale {
    /// Parses `quick` / `full` (case-insensitive).
    pub fn parse(text: &str) -> Option<Scale> {
        match text.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A diagnosis workload: a faulty circuit, its known error sites and a
/// pool of failing tests.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name for reporting.
    pub name: String,
    /// The faulty circuit under diagnosis.
    pub faulty: Circuit,
    /// Number of injected errors (the paper's `p`, also used as `k`).
    pub p: usize,
    /// The injected error sites.
    pub errors: Vec<GateId>,
    /// Pool of failing tests (up to 32; experiments use prefixes).
    pub tests: TestSet,
}

impl Workload {
    /// Builds a workload from a golden circuit by injecting `p` errors and
    /// collecting up to 32 failing tests.
    pub fn from_golden(name: &str, golden: Circuit, p: usize, seed: u64) -> Workload {
        // Retry injection seeds until the errors are observable enough to
        // provide a full 32-test pool (profile circuits occasionally bury
        // an error in a near-redundant region).
        let mut inject_seed = seed;
        loop {
            let (faulty, sites) = inject_errors(&golden, p, inject_seed);
            let tests = gatediag_core::generate_failing_tests(&golden, &faulty, 32, seed, 1 << 17);
            if tests.len() >= 32 || inject_seed > seed + 20 {
                return Workload {
                    name: name.to_string(),
                    faulty,
                    p,
                    errors: sites.iter().map(|s| s.gate).collect(),
                    tests,
                };
            }
            inject_seed += 1;
        }
    }

    /// Builds a workload from real `.bench` text (for users with the
    /// original ISCAS89 files).
    ///
    /// # Errors
    ///
    /// Propagates netlist parse errors.
    pub fn from_bench(
        name: &str,
        bench_text: &str,
        p: usize,
        seed: u64,
    ) -> Result<Workload, gatediag_netlist::NetlistError> {
        let golden = parse_bench_named(bench_text, name)?;
        Ok(Workload::from_golden(name, golden, p, seed))
    }
}

/// The injected error count the paper uses for a circuit, by name: `s1423`
/// gets 4, `s6669` 3, `s38417` 2 (substring match, so both `s1423` and
/// `s1423_like` resolve); everything else defaults to 2.
pub fn paper_error_count(name: &str) -> usize {
    if name.contains("s1423") {
        4
    } else if name.contains("s6669") {
        3
    } else {
        // s38417 and every other circuit: the paper's p = 2.
        2
    }
}

/// Gate-count ceiling for [`Scale::Quick`] when running on user-supplied
/// `.bench` circuits: `s38417`-class circuits (beyond ~10k gates) only run
/// at [`Scale::Full`], mirroring the synthetic configuration.
pub const QUICK_GATE_LIMIT: usize = 10_000;

/// Builds workloads from every `.bench` file in `dir` — the real-ISCAS89
/// path behind `--bench-dir`. Error counts follow [`paper_error_count`];
/// [`Scale::Quick`] keeps circuits under [`QUICK_GATE_LIMIT`] functional
/// gates. Returns an empty vector when the directory holds no `.bench`
/// files (callers fall back to the synthetic profiles).
///
/// # Panics
///
/// Panics with the parse/I/O error message when the directory or a
/// netlist in it is unreadable, and when the directory has circuits but
/// [`Scale::Quick`] filters every one of them out — silently
/// substituting synthetics for a user-supplied corpus would mislabel
/// the published numbers.
pub fn bench_dir_workloads(dir: &str, scale: Scale, seed: u64) -> Vec<Workload> {
    let circuits = parse_bench_dir_strict(std::path::Path::new(dir))
        .unwrap_or_else(|e| panic!("--bench-dir {dir}: {e}"));
    let total = circuits.len();
    let kept: Vec<_> = circuits
        .into_iter()
        .filter(|(_, c)| scale == Scale::Full || c.num_functional_gates() < QUICK_GATE_LIMIT)
        .collect();
    assert!(
        total == 0 || !kept.is_empty(),
        "--bench-dir {dir}: all {total} circuit(s) exceed the quick-scale gate limit \
         ({QUICK_GATE_LIMIT}); rerun with --scale full"
    );
    kept.into_iter()
        .map(|(name, golden)| {
            let p = paper_error_count(&name);
            Workload::from_golden(&name, golden, p, seed)
        })
        .collect()
}

/// The largest circuit in a `.bench` directory, for the single-circuit
/// `bench_pr*` perf baselines. `None` when the directory has no `.bench`
/// files.
///
/// # Panics
///
/// Panics like [`bench_dir_workloads`] on unreadable input.
pub fn largest_bench_circuit(dir: &str) -> Option<(String, Circuit)> {
    let circuits = parse_bench_dir_strict(std::path::Path::new(dir))
        .unwrap_or_else(|e| panic!("--bench-dir {dir}: {e}"));
    circuits
        .into_iter()
        .max_by_key(|(_, c)| c.num_functional_gates())
}

/// Which circuit a single-circuit perf baseline should pick from a
/// user-supplied `.bench` directory.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BaselinePick {
    /// The largest circuit — the simulation-side baselines, whose hot
    /// paths scale with circuit size.
    Largest,
    /// The smallest circuit — the BSAT-side baseline, whose instances
    /// grow as gates × tests with CDCL enumeration on top.
    Smallest,
}

/// Resolves the benchmark circuit for a single-circuit `bench_pr*`
/// baseline: the [`BaselinePick`] circuit of `bench_dir` when given and
/// non-empty, otherwise `synthetic()`. The returned flag says whether
/// the circuit came from the directory — size-calibrated acceptance
/// gates must be skipped for user corpora, which can be arbitrarily
/// small.
///
/// # Panics
///
/// Panics like [`bench_dir_workloads`] on unreadable input.
pub fn baseline_circuit(
    bench_dir: Option<&str>,
    pick: BaselinePick,
    synthetic: impl FnOnce() -> Circuit,
) -> (Circuit, bool) {
    let picked = bench_dir.and_then(|dir| {
        let circuits = parse_bench_dir_strict(std::path::Path::new(dir))
            .unwrap_or_else(|e| panic!("--bench-dir {dir}: {e}"));
        match pick {
            BaselinePick::Largest => circuits
                .into_iter()
                .max_by_key(|(_, c)| c.num_functional_gates()),
            BaselinePick::Smallest => circuits
                .into_iter()
                .min_by_key(|(_, c)| c.num_functional_gates()),
        }
    });
    match picked {
        Some((name, circuit)) => {
            eprintln!(
                "benchmarking on {name} ({} gates) from --bench-dir",
                circuit.num_functional_gates()
            );
            (circuit, true)
        }
        None => {
            if let Some(dir) = bench_dir {
                eprintln!("no .bench files in {dir}; using the synthetic circuit");
            }
            (synthetic(), false)
        }
    }
}

/// The paper's three benchmark configurations.
pub fn paper_workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    let mut workloads = vec![
        Workload::from_golden("s1423_like", s1423_like(seed), 4, seed),
        Workload::from_golden("s6669_like", s6669_like(seed), 3, seed),
    ];
    if scale == Scale::Full {
        workloads.push(Workload::from_golden(
            "s38417_like",
            s38417_like(seed),
            2,
            seed,
        ));
    }
    workloads
}

/// The paper's test-count sweep.
pub const TEST_COUNTS: [usize; 4] = [4, 8, 16, 32];

/// Caps protecting the harness from pathological enumeration blow-ups;
/// truncations are reported in the output.
#[derive(Copy, Clone, Debug)]
pub struct Limits {
    /// Maximum solutions enumerated per engine per configuration.
    pub max_solutions: usize,
    /// Conflict budget for the whole BSAT run (`None` = unlimited).
    pub bsat_conflict_budget: Option<u64>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_solutions: 50_000,
            bsat_conflict_budget: Some(20_000_000),
        }
    }
}

/// All measurements for one `(workload, m)` cell of the paper's tables.
#[derive(Clone, Debug)]
pub struct CellMetrics {
    /// Circuit name.
    pub name: String,
    /// Injected error count `p` (= `k`).
    pub p: usize,
    /// Number of tests `m`.
    pub m: usize,
    /// BSIM wall time (Table 2 "BSIM").
    pub bsim_time: Duration,
    /// BSIM quality metrics (Table 3 left).
    pub bsim_quality: BsimQuality,
    /// COV result (times + solutions).
    pub cov: CovResult,
    /// COV quality metrics.
    pub cov_quality: SolutionQuality,
    /// BSAT result (times + solutions).
    pub bsat: BsatResult,
    /// BSAT quality metrics.
    pub bsat_quality: SolutionQuality,
}

/// Runs all three engines on the first `m` tests of `workload`.
///
/// # Panics
///
/// Panics if the workload has fewer than `m` tests.
pub fn run_cell(workload: &Workload, m: usize, limits: Limits) -> CellMetrics {
    assert!(
        workload.tests.len() >= m,
        "{}: only {} failing tests available, need {m}",
        workload.name,
        workload.tests.len()
    );
    let tests = workload.tests.prefix(m);
    let k = workload.p;

    let t0 = Instant::now();
    let bsim = basic_sim_diagnose(&workload.faulty, &tests, BsimOptions::default());
    let bsim_time = t0.elapsed();
    let bq = bsim_quality(&workload.faulty, &bsim, &workload.errors);

    let cov = sc_diagnose(
        &workload.faulty,
        &tests,
        k,
        CovOptions {
            max_solutions: limits.max_solutions,
            ..CovOptions::default()
        },
    );
    let cq = solution_quality(&workload.faulty, &cov.solutions, &workload.errors);

    let bsat = basic_sat_diagnose(
        &workload.faulty,
        &tests,
        k,
        BsatOptions {
            max_solutions: limits.max_solutions,
            conflict_budget: limits.bsat_conflict_budget,
            ..BsatOptions::default()
        },
    );
    let sq = solution_quality(&workload.faulty, &bsat.solutions, &workload.errors);

    CellMetrics {
        name: workload.name.clone(),
        p: workload.p,
        m,
        bsim_time,
        bsim_quality: bq,
        cov,
        cov_quality: cq,
        bsat,
        bsat_quality: sq,
    }
}

/// Formats a duration the way the paper's tables do (seconds, 2 decimals).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Circuit selection.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Enumeration caps.
    pub limits: Limits,
    /// When set, run only the workload whose name contains this string.
    pub only: Option<String>,
    /// When set, build workloads from the `.bench` files in this
    /// directory instead of the synthetic profiles (the ROADMAP's "real
    /// ISCAS89 ingestion" path). Falls back to the synthetics when the
    /// directory has no `.bench` files.
    pub bench_dir: Option<String>,
}

/// Parses `--scale`, `--seed`, `--max-solutions`, `--only` command-line
/// options shared by the experiment binaries. Returns `(scale, seed,
/// limits)` for compatibility; use [`parse_config`] for the full set.
///
/// # Panics
///
/// Panics with a usage message on malformed options.
pub fn parse_args() -> (Scale, u64, Limits) {
    let c = parse_config();
    (c.scale, c.seed, c.limits)
}

/// Full option parsing (see [`parse_args`]).
///
/// # Panics
///
/// Panics with a usage message on malformed options.
pub fn parse_config() -> RunConfig {
    let mut scale = Scale::Quick;
    let mut seed = 1u64;
    let mut limits = Limits::default();
    let mut only: Option<String> = None;
    let mut bench_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| panic!("--scale expects quick|full"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed expects an integer"));
            }
            "--max-solutions" => {
                i += 1;
                limits.max_solutions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--max-solutions expects an integer"));
            }
            "--only" => {
                i += 1;
                only = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| panic!("--only expects a circuit name")),
                );
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| panic!("--bench-dir expects a directory")),
                );
            }
            other => panic!(
                "unknown option `{other}` (try --scale quick|full, --seed N, --max-solutions N, --only NAME, --bench-dir DIR)"
            ),
        }
        i += 1;
    }
    RunConfig {
        scale,
        seed,
        limits,
        only,
        bench_dir,
    }
}

/// Where [`configured_workloads_with_source`] actually got its circuits
/// from — so the experiment binaries can label their output truthfully
/// even when an empty `--bench-dir` fell back to the synthetics.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WorkloadSource {
    /// Real `.bench` circuits loaded from `--bench-dir`.
    BenchDir,
    /// The profile-matched synthetic ISCAS89 stand-ins.
    Synthetic,
}

/// Applies the `--only` filter of a [`RunConfig`] to the configured
/// workload source: the `.bench` files of `--bench-dir` when given (and
/// non-empty), the synthetic paper profiles otherwise. The returned
/// [`WorkloadSource`] reports which one was used.
pub fn configured_workloads_with_source(config: &RunConfig) -> (Vec<Workload>, WorkloadSource) {
    let (base, source) = match &config.bench_dir {
        Some(dir) => {
            let real = bench_dir_workloads(dir, config.scale, config.seed);
            if real.is_empty() {
                eprintln!("no .bench files in {dir}; using the synthetic profiles");
                (
                    paper_workloads(config.scale, config.seed),
                    WorkloadSource::Synthetic,
                )
            } else {
                (real, WorkloadSource::BenchDir)
            }
        }
        None => (
            paper_workloads(config.scale, config.seed),
            WorkloadSource::Synthetic,
        ),
    };
    let filtered = base
        .into_iter()
        .filter(|w| {
            config
                .only
                .as_ref()
                .map(|needle| w.name.contains(needle.as_str()))
                .unwrap_or(true)
        })
        .collect();
    (filtered, source)
}

/// [`configured_workloads_with_source`] without the source tag.
pub fn configured_workloads(config: &RunConfig) -> Vec<Workload> {
    configured_workloads_with_source(config).0
}

/// Writes `content` under `target/experiments/<file>` and reports the path.
pub fn write_artifact(file: &str, content: &str) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(file);
        if std::fs::write(&path, content).is_ok() {
            println!("\nwrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::RandomCircuitSpec;

    #[test]
    fn workload_has_observable_errors() {
        let golden = RandomCircuitSpec::new(8, 4, 120).seed(3).generate();
        let w = Workload::from_golden("t", golden, 2, 3);
        assert_eq!(w.errors.len(), 2);
        assert!(!w.tests.is_empty());
    }

    #[test]
    fn run_cell_produces_consistent_metrics() {
        let golden = RandomCircuitSpec::new(8, 4, 120).seed(5).generate();
        let w = Workload::from_golden("t", golden, 2, 5);
        let m = w.tests.len().min(4);
        let cell = run_cell(&w, m, Limits::default());
        assert_eq!(cell.m, m);
        assert_eq!(cell.cov_quality.num_solutions, cell.cov.solutions.len());
        assert_eq!(cell.bsat_quality.num_solutions, cell.bsat.solutions.len());
        // BSAT min distance should be 0 here: the singleton error sites are
        // enumerable at k = p ≥ 1 (they are valid corrections).
        if cell.bsat.complete && !cell.bsat.solutions.is_empty() {
            assert_eq!(cell.bsat_quality.min, 0.0);
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
    }

    #[test]
    fn workload_from_bench_round_trip() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = NOT(x)\n";
        let w = Workload::from_bench("mini", src, 1, 2).unwrap();
        assert_eq!(w.name, "mini");
        assert_eq!(w.errors.len(), 1);
    }

    #[test]
    fn paper_error_counts_by_name() {
        assert_eq!(paper_error_count("s1423"), 4);
        assert_eq!(paper_error_count("s1423_like"), 4);
        assert_eq!(paper_error_count("s6669"), 3);
        assert_eq!(paper_error_count("s38417"), 2);
        assert_eq!(paper_error_count("c432"), 2);
    }

    #[test]
    fn bench_dir_workloads_pick_up_real_circuits() {
        let dir =
            std::env::temp_dir().join(format!("gatediag_harness_bench_dir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("c17.bench"),
            "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
             OUTPUT(G22)\nOUTPUT(G23)\n\
             G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n\
             G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n",
        )
        .unwrap();
        let dir_str = dir.to_str().unwrap().to_string();
        let workloads = bench_dir_workloads(&dir_str, Scale::Quick, 1);
        assert_eq!(workloads.len(), 1);
        assert_eq!(workloads[0].name, "c17");
        assert_eq!(workloads[0].p, 2);
        assert!(!workloads[0].tests.is_empty());
        // The config plumbing resolves the same circuits.
        let config = RunConfig {
            scale: Scale::Quick,
            seed: 1,
            limits: Limits::default(),
            only: None,
            bench_dir: Some(dir_str.clone()),
        };
        let via_config = configured_workloads(&config);
        assert_eq!(via_config.len(), 1);
        assert_eq!(via_config[0].name, "c17");
        let largest = largest_bench_circuit(&dir_str).unwrap();
        assert_eq!(largest.0, "c17");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
