//! Experiment harness for the `gatediag` reproduction of Fey et al.,
//! DATE 2006.
//!
//! Binaries (`cargo run --release -p gatediag-bench --bin <name>`):
//!
//! * `table2` — runtimes of BSIM / COV / BSAT (paper Table 2);
//! * `table3` — diagnosis quality metrics (paper Table 3);
//! * `fig6` — BSAT-vs-COV scatter data for quality and solution counts
//!   (paper Fig. 6), CSV plus ASCII preview;
//! * `bench_pr1` — emits `BENCH_PR1.json`, the perf trajectory baseline
//!   comparing the packed/incremental hot paths against the seed's
//!   scalar-per-test behaviour (sim throughput, BSIM wall time,
//!   validity screening);
//! * `bench_pr2` — emits `BENCH_PR2.json`, extending the trajectory with
//!   per-thread-count scaling of the parallel diagnosis layer (sharded
//!   BSIM, parallel candidate screening, the reusable validity engine),
//!   with bit-identity asserted between every worker count before any
//!   number is published;
//! * `bench_pr3` — emits `BENCH_PR3.json`, the SAT-side numbers: the
//!   flat-watcher solver vs the `LegacySolver` baseline on the
//!   [`solver_workloads`], and per-worker BSAT / validity-`_sat`
//!   scaling, again bit-identity-asserted first.
//!
//! Criterion benchmarks (`cargo bench -p gatediag-bench`): `solver`,
//! `sim` (including the `PackedSim` multi-word and incremental groups),
//! `diagnosis`, `scaling` (complexity shapes behind Table 1) and
//! `ablation` (the advanced techniques of Secs. 2.2/2.3/6).

#![warn(missing_docs)]

pub mod harness;
pub mod solver_workloads;
