//! The shared SAT solver workloads measured by both the `solver`
//! criterion bench and the `bench_pr3` JSON emitter.
//!
//! Keeping the generators (and the instance loaders) in one place is what
//! makes `BENCH_PR3.json`'s flat-vs-legacy comparison an exact mirror of
//! `benches/solver.rs`: a parameter tweak in either consumer is a tweak
//! in both.

use gatediag_sat::{LegacySolver, Lit, Solver, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed of the assumption-probe sequence used by the incremental
/// workload (100 probes over one instance).
pub const PROBE_SEED: u64 = 3;

/// PHP(n, m): `n` pigeons into `m` holes; unsatisfiable for `n > m`.
/// Returns `(num_vars, clauses)`.
pub fn pigeonhole(n: usize, m: usize) -> (usize, Vec<Vec<Lit>>) {
    let var = |i: usize, j: usize| Var::from_index(i * m + j);
    let mut clauses = Vec::new();
    for i in 0..n {
        clauses.push((0..m).map(|j| var(i, j).positive()).collect());
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                clauses.push(vec![var(i1, j).negative(), var(i2, j).negative()]);
            }
        }
    }
    (n * m, clauses)
}

/// Uniform random 3-SAT; returns `(num_vars, clauses)`.
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

/// Loads an instance into the production (flat-watcher) solver.
pub fn load_flat(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause);
    }
    solver
}

/// Loads an instance into the `Vec<Vec<Watcher>>` baseline solver.
pub fn load_legacy(num_vars: usize, clauses: &[Vec<Lit>]) -> LegacySolver {
    let mut solver = LegacySolver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause);
    }
    solver
}
