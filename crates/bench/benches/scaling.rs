//! Complexity-shape benchmarks behind the paper's Table 1.
//!
//! Table 1 claims: BSIM is `O(|I|·m)` (linear in circuit size and test
//! count); COV's covering search grows with `k`; BSAT's instance grows as
//! `Θ(|I|·m)` with search exponential in the worst case. These sweeps
//! make the growth curves measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatediag_bench::harness::Workload;
use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, sc_diagnose, BsatOptions, BsimOptions, CovOptions,
};
use gatediag_netlist::RandomCircuitSpec;

fn bench_bsim_vs_circuit_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsim_linear_in_size");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for size in [250usize, 500, 1000, 2000] {
        let golden = RandomCircuitSpec::new(16, 6, size).seed(7).generate();
        let w = Workload::from_golden("scale", golden, 1, 7);
        let m = w.tests.len().min(8);
        if m == 0 {
            continue;
        }
        let tests = w.tests.prefix(m);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| basic_sim_diagnose(&w.faulty, &tests, BsimOptions::default()))
        });
    }
    group.finish();
}

fn bench_bsim_vs_test_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsim_linear_in_tests");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let golden = RandomCircuitSpec::new(16, 6, 1000).seed(8).generate();
    let w = Workload::from_golden("scale", golden, 2, 8);
    for m in [4usize, 8, 16, 32] {
        if w.tests.len() < m {
            continue;
        }
        let tests = w.tests.prefix(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| basic_sim_diagnose(&w.faulty, &tests, BsimOptions::default()))
        });
    }
    group.finish();
}

fn bench_cov_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("cov_exponential_in_k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let golden = RandomCircuitSpec::new(16, 6, 500).seed(9).generate();
    let w = Workload::from_golden("scale", golden, 2, 9);
    let m = w.tests.len().min(8);
    if m > 0 {
        let tests = w.tests.prefix(m);
        for k in [1usize, 2, 3] {
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
                b.iter(|| {
                    sc_diagnose(
                        &w.faulty,
                        &tests,
                        k,
                        CovOptions {
                            max_solutions: 2_000,
                            ..CovOptions::default()
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_bsat_vs_test_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsat_instance_grows_with_m");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let golden = RandomCircuitSpec::new(16, 6, 500).seed(10).generate();
    let w = Workload::from_golden("scale", golden, 1, 10);
    for m in [4usize, 8, 16, 32] {
        if w.tests.len() < m {
            continue;
        }
        let tests = w.tests.prefix(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                basic_sat_diagnose(
                    &w.faulty,
                    &tests,
                    1,
                    BsatOptions {
                        max_solutions: 5000,
                        ..BsatOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bsim_vs_circuit_size,
    bench_bsim_vs_test_count,
    bench_cov_vs_k,
    bench_bsat_vs_test_count
);
criterion_main!(benches);
