//! SAT solver microbenchmarks: the BCP/learning engine that replaces
//! Zchaff in this reproduction.
//!
//! Each workload runs twice — on the production [`Solver`] (CSR flat
//! watch lists + binary fast path) and on the [`LegacySolver`] baseline
//! (the seed's `Vec<Vec<Watcher>>` scheme) — so the flattening shows up
//! as a direct A/B on identical instances. `bench_pr3` publishes the
//! same comparison as JSON.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gatediag_bench::solver_workloads::{
    load_flat as load, load_legacy, pigeonhole, random_3sat, PROBE_SEED,
};
use gatediag_sat::{SolveResult, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let (nv, php) = pigeonhole(8, 7);
    group.bench_function("pigeonhole_8_7_unsat", |b| {
        b.iter_batched(
            || load(nv, &php),
            |mut s| assert_eq!(s.solve(&[]), SolveResult::Unsat),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("pigeonhole_8_7_unsat_legacy", |b| {
        b.iter_batched(
            || load_legacy(nv, &php),
            |mut s| assert_eq!(s.solve(&[]), SolveResult::Unsat),
            BatchSize::SmallInput,
        )
    });

    // Near the 3-SAT phase transition (ratio ~4.26).
    let (nv, sat_i) = random_3sat(150, 600, 7);
    group.bench_function("random3sat_150v_600c", |b| {
        b.iter_batched(
            || load(nv, &sat_i),
            |mut s| {
                let r = s.solve(&[]);
                assert_ne!(r, SolveResult::Unknown);
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random3sat_150v_600c_legacy", |b| {
        b.iter_batched(
            || load_legacy(nv, &sat_i),
            |mut s| {
                let r = s.solve(&[]);
                assert_ne!(r, SolveResult::Unknown);
            },
            BatchSize::SmallInput,
        )
    });

    // Incremental pattern: one instance, many assumption probes.
    group.bench_function("incremental_100_assumption_probes", |b| {
        let (nv, inst) = random_3sat(120, 430, 9);
        b.iter_batched(
            || load(nv, &inst),
            |mut s| {
                let mut rng = ChaCha8Rng::seed_from_u64(PROBE_SEED);
                for _ in 0..100 {
                    let a = Var::from_index(rng.gen_range(0..120)).lit(rng.gen_bool(0.5));
                    let _ = s.solve(&[a]);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("incremental_100_assumption_probes_legacy", |b| {
        let (nv, inst) = random_3sat(120, 430, 9);
        b.iter_batched(
            || load_legacy(nv, &inst),
            |mut s| {
                let mut rng = ChaCha8Rng::seed_from_u64(PROBE_SEED);
                for _ in 0..100 {
                    let a = Var::from_index(rng.gen_range(0..120)).lit(rng.gen_bool(0.5));
                    let _ = s.solve(&[a]);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
