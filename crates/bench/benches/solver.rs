//! SAT solver microbenchmarks: the BCP/learning engine that replaces
//! Zchaff in this reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gatediag_sat::{Lit, SolveResult, Solver, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn pigeonhole(n: usize, m: usize) -> (usize, Vec<Vec<Lit>>) {
    let var = |i: usize, j: usize| Var::from_index(i * m + j);
    let mut clauses = Vec::new();
    for i in 0..n {
        clauses.push((0..m).map(|j| var(i, j).positive()).collect());
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                clauses.push(vec![var(i1, j).negative(), var(i2, j).negative()]);
            }
        }
    }
    (n * m, clauses)
}

fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

fn load(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause);
    }
    solver
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let (nv, php) = pigeonhole(8, 7);
    group.bench_function("pigeonhole_8_7_unsat", |b| {
        b.iter_batched(
            || load(nv, &php),
            |mut s| assert_eq!(s.solve(&[]), SolveResult::Unsat),
            BatchSize::SmallInput,
        )
    });

    // Near the 3-SAT phase transition (ratio ~4.26).
    let (nv, sat_i) = random_3sat(150, 600, 7);
    group.bench_function("random3sat_150v_600c", |b| {
        b.iter_batched(
            || load(nv, &sat_i),
            |mut s| {
                let r = s.solve(&[]);
                assert_ne!(r, SolveResult::Unknown);
            },
            BatchSize::SmallInput,
        )
    });

    // Incremental pattern: one instance, many assumption probes.
    group.bench_function("incremental_100_assumption_probes", |b| {
        let (nv, inst) = random_3sat(120, 430, 9);
        b.iter_batched(
            || load(nv, &inst),
            |mut s| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                for _ in 0..100 {
                    let a = Var::from_index(rng.gen_range(0..120)).lit(rng.gen_bool(0.5));
                    let _ = s.solve(&[a]);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
