//! End-to-end diagnosis benchmarks: the three basic engines on a
//! medium workload (Table 2 in microcosm).

use criterion::{criterion_group, criterion_main, Criterion};
use gatediag_bench::harness::Workload;
use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, sc_diagnose, BsatOptions, BsimOptions, CovOptions,
};
use gatediag_netlist::RandomCircuitSpec;

fn bench_diagnosis(c: &mut Criterion) {
    let golden = RandomCircuitSpec::new(16, 6, 600).seed(4).generate();
    let workload = Workload::from_golden("bench600", golden, 2, 4);
    let m = workload.tests.len().min(8);
    let tests = workload.tests.prefix(m);
    let k = workload.p;

    let mut group = c.benchmark_group("diagnosis_600g_2e_8t");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("bsim", |b| {
        b.iter(|| basic_sim_diagnose(&workload.faulty, &tests, BsimOptions::default()))
    });
    group.bench_function("cov_all", |b| {
        b.iter(|| {
            sc_diagnose(
                &workload.faulty,
                &tests,
                k,
                CovOptions {
                    max_solutions: 1000,
                    ..CovOptions::default()
                },
            )
        })
    });
    group.bench_function("bsat_all", |b| {
        b.iter(|| {
            basic_sat_diagnose(
                &workload.faulty,
                &tests,
                k,
                BsatOptions {
                    max_solutions: 1000,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.bench_function("bsat_one", |b| {
        b.iter(|| {
            basic_sat_diagnose(
                &workload.faulty,
                &tests,
                k,
                BsatOptions {
                    max_solutions: 1,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diagnosis);
criterion_main!(benches);
