//! Ablation benchmarks for the advanced techniques (paper Secs. 2.2, 2.3
//! and 6).
//!
//! * mux encodings: inline guards vs the paper's explicit mux, with and
//!   without the `c = 0` pinning clauses ("prevents up to |I| decisions");
//! * dominator-restricted first pass vs all-gate instrumentation;
//! * test-set partitioning vs the monolithic instance;
//! * BSIM-seeded decision heuristic vs unseeded (Sec. 6 hybrid);
//! * X-injection pruning in the advanced simulation-based search.

use criterion::{criterion_group, criterion_main, Criterion};
use gatediag_bench::harness::Workload;
use gatediag_core::{
    basic_sat_diagnose, hybrid_seeded_bsat, partitioned_sat_diagnose, sim_backtrack_diagnose,
    two_pass_sat_diagnose, BsatOptions, MuxEncoding, SimBacktrackOptions,
};
use gatediag_netlist::RandomCircuitSpec;

fn workload() -> (Workload, usize) {
    let golden = RandomCircuitSpec::new(16, 6, 500).seed(21).generate();
    let w = Workload::from_golden("ablation500", golden, 2, 21);
    let m = w.tests.len().min(8);
    (w, m)
}

fn bench_encodings(c: &mut Criterion) {
    let (w, m) = workload();
    if m == 0 {
        return;
    }
    let tests = w.tests.prefix(m);
    let mut group = c.benchmark_group("ablation_mux_encoding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let cases = [
        ("inline", MuxEncoding::Inline),
        (
            "explicit",
            MuxEncoding::ExplicitMux {
                force_c_zero: false,
            },
        ),
        (
            "explicit_c0",
            MuxEncoding::ExplicitMux { force_c_zero: true },
        ),
    ];
    for (label, encoding) in cases {
        group.bench_function(label, |b| {
            b.iter(|| {
                basic_sat_diagnose(
                    &w.faulty,
                    &tests,
                    w.p,
                    BsatOptions {
                        encoding,
                        max_solutions: 500,
                        ..BsatOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_site_selection(c: &mut Criterion) {
    let (w, m) = workload();
    if m == 0 {
        return;
    }
    let tests = w.tests.prefix(m);
    let mut group = c.benchmark_group("ablation_sites");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("all_gates", |b| {
        b.iter(|| {
            basic_sat_diagnose(
                &w.faulty,
                &tests,
                w.p,
                BsatOptions {
                    max_solutions: 500,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.bench_function("dominator_two_pass", |b| {
        b.iter(|| {
            two_pass_sat_diagnose(
                &w.faulty,
                &tests,
                w.p,
                BsatOptions {
                    max_solutions: 500,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let (w, _) = workload();
    let m = w.tests.len().min(16);
    if m < 16 {
        return;
    }
    let tests = w.tests.prefix(m);
    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("monolithic_16_tests", |b| {
        b.iter(|| {
            basic_sat_diagnose(
                &w.faulty,
                &tests,
                w.p,
                BsatOptions {
                    max_solutions: 500,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.bench_function("partitioned_4x4", |b| {
        b.iter(|| {
            partitioned_sat_diagnose(
                &w.faulty,
                &tests,
                w.p,
                4,
                BsatOptions {
                    max_solutions: 500,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_hybrid_seeding(c: &mut Criterion) {
    let (w, m) = workload();
    if m == 0 {
        return;
    }
    let tests = w.tests.prefix(m);
    let mut group = c.benchmark_group("ablation_hybrid_seed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("unseeded", |b| {
        b.iter(|| {
            basic_sat_diagnose(
                &w.faulty,
                &tests,
                w.p,
                BsatOptions {
                    max_solutions: 1,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.bench_function("bsim_seeded", |b| {
        b.iter(|| {
            hybrid_seeded_bsat(
                &w.faulty,
                &tests,
                w.p,
                BsatOptions {
                    max_solutions: 1,
                    ..BsatOptions::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_x_pruning(c: &mut Criterion) {
    let golden = RandomCircuitSpec::new(10, 4, 120).seed(23).generate();
    let w = Workload::from_golden("xprune120", golden, 2, 23);
    let m = w.tests.len().min(6);
    if m == 0 {
        return;
    }
    let tests = w.tests.prefix(m);
    let mut group = c.benchmark_group("ablation_x_pruning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (label, x_pruning) in [("with_x_pruning", true), ("without_x_pruning", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                sim_backtrack_diagnose(
                    &w.faulty,
                    &tests,
                    2,
                    SimBacktrackOptions {
                        x_pruning,
                        ..SimBacktrackOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encodings,
    bench_site_selection,
    bench_partitioning,
    bench_hybrid_seeding,
    bench_x_pruning
);
criterion_main!(benches);
