//! Simulation engine benchmarks: the "efficient parallel simulation with
//! linear runtime" claim behind the paper's simulation-based approaches.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gatediag_netlist::{s1423_like, RandomCircuitSpec, VectorGen};
use gatediag_sim::{
    pack_vectors, pack_vectors_into, simulate, simulate_packed, DeltaSim, PackedSim,
};

fn bench_sim(c: &mut Criterion) {
    let circuit = s1423_like(1);
    let mut gen = VectorGen::new(&circuit, 1);
    let vectors: Vec<Vec<bool>> = (0..64).map(|_| gen.next_vector()).collect();
    let packed = pack_vectors(&circuit, &vectors);

    let mut group = c.benchmark_group("sim");
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(64));
    group.bench_function("packed_64_patterns_s1423_like", |b| {
        b.iter(|| simulate_packed(&circuit, &packed))
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("scalar_1_pattern_s1423_like", |b| {
        b.iter(|| simulate(&circuit, &vectors[0]))
    });
    group.finish();

    // Event-driven incremental vs full resimulation under a single forced
    // gate change (the advanced simulation-based effect analysis).
    let medium = RandomCircuitSpec::new(32, 8, 4000).seed(2).generate();
    let vector = VectorGen::new(&medium, 2).next_vector();
    let deep_gate = medium
        .iter()
        .max_by_key(|(id, _)| medium.level(*id))
        .map(|(id, _)| id)
        .expect("non-empty circuit");

    let mut group = c.benchmark_group("resim_effect_analysis");
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("full_resim_4000_gates", |b| {
        b.iter(|| gatediag_sim::simulate_forced(&medium, &vector, &[(deep_gate, true)]))
    });
    group.bench_function("event_driven_4000_gates", |b| {
        let mut sim = DeltaSim::new(&medium, &vector);
        sim.propagate();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            sim.force(deep_gate, flip);
            sim.propagate()
        })
    });
    group.finish();
}

fn bench_packed_engine(c: &mut Criterion) {
    // Multi-word PackedSim sweeps: 512 patterns per pass, reusing buffers.
    let circuit = s1423_like(1);
    let mut gen = VectorGen::new(&circuit, 1);
    let vectors: Vec<Vec<bool>> = (0..512).map(|_| gen.next_vector()).collect();
    let mut packed = Vec::new();
    let words = pack_vectors_into(&circuit, &vectors, &mut packed);

    let mut group = c.benchmark_group("packed_engine");
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(512));
    group.bench_function("multiword_512_patterns_s1423_like", |b| {
        let mut sim = PackedSim::new(&circuit);
        sim.reset(words);
        sim.set_input_words(&packed);
        b.iter(|| {
            sim.sweep();
            sim.values()[circuit.len() * words - 1]
        })
    });
    group.finish();

    // Incremental packed screening: force one deep gate across 512 lanes
    // and re-simulate only its cone, versus a full multi-word sweep.
    let deep_gate = circuit
        .iter()
        .max_by_key(|(id, _)| circuit.level(*id))
        .map(|(id, _)| id)
        .expect("non-empty circuit");
    let mut group = c.benchmark_group("packed_screening");
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("full_sweep_512_lanes", |b| {
        let mut sim = PackedSim::new(&circuit);
        sim.reset(words);
        sim.set_input_words(&packed);
        sim.sweep();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            sim.force_all_lanes(deep_gate, flip);
            sim.sweep();
            sim.events()
        })
    });
    group.bench_function("incremental_cone_512_lanes", |b| {
        let mut sim = PackedSim::new(&circuit);
        sim.reset(words);
        sim.set_input_words(&packed);
        sim.sweep();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            sim.force_all_lanes(deep_gate, flip);
            sim.propagate()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_packed_engine);
criterion_main!(benches);
