//! End-to-end service tests: warm-cache proof, concurrency drift,
//! admission control, crash isolation, and the TCP/stdio transports.

use gatediag_core::json::{parse_json, Json};
use gatediag_core::{ChaosConfig, DiagnoseRequest, EngineKind};
use gatediag_serve::{
    render_diagnose_request, serve_lines, serve_tcp, Client, DiagnoseCall, Service, ServiceConfig,
};
use std::net::TcpListener;
use std::sync::Arc;

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

fn call(engine: EngineKind, seed: u64) -> DiagnoseCall {
    DiagnoseCall {
        circuit: Some("c17".to_string()),
        bench: C17.to_string(),
        request: DiagnoseRequest {
            engine,
            seed,
            ..DiagnoseRequest::default()
        },
        chaos: None,
        obs: false,
        timing: false,
    }
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key).unwrap_or_else(|| panic!("missing field {key}"))
}

fn status_of(response: &str) -> String {
    let v = parse_json(response).expect("response is valid JSON");
    field(&v, "status").as_str("status").unwrap().to_string()
}

#[test]
fn repeat_requests_are_byte_identical_and_warm() {
    let service = Service::new(ServiceConfig::default());
    let line = render_diagnose_request(&call(EngineKind::Bsat, 1));
    let first = service.handle_line(&line);
    let second = service.handle_line(&line);
    assert_eq!(first, second, "cold and warm responses must not differ");
    assert_eq!(status_of(&first), "ok");

    // Now ask for the quarantined meta: the outcome is already cached,
    // so this request must be a measured warm hit — zero CNF encodes,
    // zero netlist builds.
    let mut with_obs = call(EngineKind::Bsat, 1);
    with_obs.obs = true;
    let response = service.handle_line(&render_diagnose_request(&with_obs));
    let v = parse_json(&response).unwrap();
    let meta = field(&v, "meta");
    assert!(meta.get("warm").unwrap().as_bool("warm").unwrap());
    let counters = field(meta, "counters");
    for counter in ["cnf.gates_encoded", "netlist.builds", "session.cold_runs"] {
        assert!(
            counters.get(counter).is_none(),
            "warm hit charged {counter}: {response}"
        );
    }
    assert_eq!(
        counters
            .get("session.warm_hits")
            .expect("warm hit recorded")
            .as_u64("session.warm_hits")
            .unwrap(),
        1
    );
}

#[test]
fn cold_requests_do_charge_build_and_encode_counters() {
    let service = Service::new(ServiceConfig::default());
    let mut cold = call(EngineKind::Bsat, 1);
    cold.obs = true;
    let response = service.handle_line(&render_diagnose_request(&cold));
    let v = parse_json(&response).unwrap();
    let meta = field(&v, "meta");
    assert!(!meta.get("warm").unwrap().as_bool("warm").unwrap());
    let counters = field(meta, "counters");
    for counter in ["cnf.gates_encoded", "netlist.builds", "session.cold_runs"] {
        assert!(
            counters
                .get(counter)
                .map(|c| c.as_u64(counter).unwrap())
                .unwrap_or(0)
                > 0,
            "cold run must charge {counter}: {response}"
        );
    }
}

#[test]
fn responses_are_byte_identical_across_pool_sizes_and_clients() {
    let lines: Vec<String> = [
        call(EngineKind::Auto, 1),
        call(EngineKind::Bsat, 2),
        call(EngineKind::Cov, 3),
    ]
    .iter()
    .map(render_diagnose_request)
    .collect();
    // Reference: a fresh single-worker service, one request at a time —
    // the daemon equivalent of the one-shot CLI.
    let reference: Vec<String> = {
        let service = Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        lines.iter().map(|l| service.handle_line(l)).collect()
    };
    for workers in [1, 2, 8] {
        let service = Arc::new(Service::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }));
        std::thread::scope(|scope| {
            for client in 0..4 {
                let service = Arc::clone(&service);
                let lines = &lines;
                let reference = &reference;
                scope.spawn(move || {
                    // Each client walks the requests in a different
                    // rotation, so warm and cold hits interleave.
                    for i in 0..lines.len() {
                        let j = (i + client) % lines.len();
                        let response = service.handle_line(&lines[j]);
                        assert_eq!(
                            response, reference[j],
                            "drift at workers={workers} client={client} request={j}"
                        );
                    }
                });
            }
        });
    }
}

#[test]
fn over_budget_requests_are_rejected_and_tiny_budgets_preempt() {
    let service = Service::new(ServiceConfig {
        max_work_budget: Some(1_000_000),
        ..ServiceConfig::default()
    });
    let mut greedy = call(EngineKind::Auto, 1);
    greedy.request.work_budget = Some(2_000_000);
    let response = service.handle_line(&render_diagnose_request(&greedy));
    assert_eq!(status_of(&response), "rejected", "{response}");
    assert!(response.contains("exceeds the server cap"), "{response}");

    let mut tiny = call(EngineKind::Auto, 1);
    tiny.request.work_budget = Some(1);
    let response = service.handle_line(&render_diagnose_request(&tiny));
    assert_eq!(status_of(&response), "preempted", "{response}");

    // A server-imposed cap preempts budgetless requests the same way.
    let strict = Service::new(ServiceConfig {
        max_work_budget: Some(1),
        ..ServiceConfig::default()
    });
    let response = strict.handle_line(&render_diagnose_request(&call(EngineKind::Auto, 1)));
    assert_eq!(status_of(&response), "preempted", "{response}");
}

#[test]
fn chaos_crash_is_isolated_and_leaves_the_registry_warm() {
    let service = Service::new(ServiceConfig::default());
    // Prime the cache.
    let line = render_diagnose_request(&call(EngineKind::Bsat, 1));
    assert_eq!(status_of(&service.handle_line(&line)), "ok");

    // Fire chaos at full rate over many seeds: every request gets an
    // injected event (panic, inflated work, or spurious preempt); the
    // per-seed mix is deterministic. At least one must be a mid-engine
    // panic, and none may take the service down.
    let mut failed = 0;
    for seed in 0..24 {
        let mut chaotic = call(EngineKind::Bsat, seed);
        chaotic.chaos = Some(ChaosConfig {
            seed,
            rate_ppm: 1_000_000,
        });
        let status = status_of(&service.handle_line(&render_diagnose_request(&chaotic)));
        assert!(
            ["ok", "failed", "preempted"].contains(&status.as_str()),
            "unexpected status {status}"
        );
        if status == "failed" {
            failed += 1;
        }
    }
    assert!(failed > 0, "no chaos event panicked across 24 seeds");

    // The registry survived: the primed request is still a warm hit
    // with a byte-identical response.
    let mut with_obs = call(EngineKind::Bsat, 1);
    with_obs.obs = true;
    let response = service.handle_line(&render_diagnose_request(&with_obs));
    let v = parse_json(&response).unwrap();
    assert!(
        field(&v, "meta")
            .get("warm")
            .unwrap()
            .as_bool("warm")
            .unwrap(),
        "registry lost its warm state after chaos: {response}"
    );
}

#[test]
fn malformed_lines_get_error_responses() {
    let service = Service::new(ServiceConfig::default());
    for line in [
        "not json",
        "{\"schema\": \"gatediag-serve-v1\", \"op\": \"diagnose\", \"bench\": \"y = FROB(a)\"}",
        "{\"schema\": \"gatediag-serve-v1\", \"op\": \"diagnose\", \"bench\": \"INPUT(a)\\nOUTPUT(a)\\n\", \"p\": 0}",
    ] {
        let response = service.handle_line(line);
        assert_eq!(status_of(&response), "error", "{line} -> {response}");
    }
}

#[test]
fn tcp_transport_matches_in_process_responses() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(service, listener))
    };
    // The in-process reference runs on a separate (fresh) service so
    // the daemon's cache state cannot leak into the expectation.
    let reference = Service::new(ServiceConfig::default());
    let line = render_diagnose_request(&call(EngineKind::Auto, 1));
    let expected = reference.handle_line(&line);

    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.request(&line).expect("cold request"), expected);
    assert_eq!(client.request(&line).expect("warm request"), expected);
    let ping = client
        .request("{\"schema\": \"gatediag-serve-v1\", \"op\": \"ping\"}")
        .expect("ping");
    assert_eq!(status_of(&ping), "ok");
    let stats = client
        .request("{\"schema\": \"gatediag-serve-v1\", \"op\": \"stats\"}")
        .expect("stats");
    let v = parse_json(&stats).unwrap();
    assert_eq!(field(&v, "sessions").as_u64("sessions").unwrap(), 1);
    assert_eq!(field(&v, "hits").as_u64("hits").unwrap(), 1);
    let bye = client
        .request("{\"schema\": \"gatediag-serve-v1\", \"op\": \"shutdown\"}")
        .expect("shutdown");
    assert_eq!(status_of(&bye), "ok");
    daemon
        .join()
        .expect("accept loop thread")
        .expect("accept loop exits cleanly");
}

#[test]
fn stdio_transport_answers_line_per_line() {
    let service = Service::new(ServiceConfig::default());
    let line = render_diagnose_request(&call(EngineKind::Auto, 1));
    let input =
        format!("{line}\n\n{line}\n{{\"schema\": \"gatediag-serve-v1\", \"op\": \"shutdown\"}}\n");
    let mut output = Vec::new();
    serve_lines(&service, input.as_bytes(), &mut output).expect("stdio loop");
    let text = String::from_utf8(output).unwrap();
    let responses: Vec<&str> = text.lines().collect();
    assert_eq!(responses.len(), 3, "blank line must not get a response");
    assert_eq!(responses[0], responses[1]);
    assert_eq!(status_of(responses[2]), "ok");
    assert!(service.shutdown_requested());
}
