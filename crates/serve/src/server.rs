//! Transports: JSONL over TCP (thread-per-connection) and over
//! stdin/stdout.
//!
//! std-only by design — the protocol is one request line in, one
//! response line out, and every response is computed synchronously on
//! the shared worker pool, so blocking reads and plain threads are the
//! whole story. The accept loop polls non-blockingly so a `shutdown`
//! request handled on any connection stops the daemon without needing
//! to interrupt a blocked `accept`.

use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Serves one established connection until EOF or shutdown. Blank
/// lines are ignored; every other line gets exactly one response line.
fn serve_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Accepts connections on `listener` until a `shutdown` request is
/// handled. Each connection gets its own thread; the diagnosis work
/// itself is still bounded by the service's shared pool.
///
/// # Errors
///
/// Returns accept-loop I/O errors; per-connection errors (a client
/// hanging up mid-request) only end that connection.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if service.shutdown_requested() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                // One small response line per request: disable Nagle so
                // replies are not held back for a delayed ACK.
                stream.set_nodelay(true)?;
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    // A dropped connection is the client's business.
                    let _ = serve_connection(&service, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves request lines from `input` to `output` until EOF or a
/// `shutdown` request — the `--stdio` transport, also what the
/// in-process tests drive.
///
/// # Errors
///
/// Returns the first read or write error.
pub fn serve_lines(
    service: &Service,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}
