//! The warm circuit registry: an LRU-bounded map from circuit content
//! to a long-lived [`CircuitSession`].
//!
//! Two levels of keying make the warm path cheap *and* canonical:
//!
//! 1. **Source hash** — FNV-1a over the raw bench text. A repeated
//!    request with byte-identical bench text resolves through this
//!    alias map without parsing anything, so a warm hit charges **zero**
//!    `netlist.builds` (the property the warm-hit tests and the CI
//!    smoke assert).
//! 2. **Content hash** — [`circuit_content_hash`] over the parsed
//!    circuit's canonical bench rendering, comments stripped. Two
//!    sources that differ only in whitespace, comments or the display
//!    name converge on one session (the first parse builds the netlist
//!    once; later variants only add an alias).
//!
//! Eviction is least-recently-used over sessions; aliases pointing at
//! an evicted session die with it.

use gatediag_core::{circuit_content_hash, CircuitSession};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Counters describing a registry's lifetime behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RegistryStats {
    /// Sessions currently resident.
    pub sessions: usize,
    /// Lookups resolved without creating a session.
    pub hits: u64,
    /// Lookups that created a new session.
    pub misses: u64,
    /// Sessions dropped by the LRU bound.
    pub evictions: u64,
}

#[derive(Default)]
struct Inner {
    /// LRU order: index 0 is the coldest session, the back the hottest.
    sessions: Vec<Arc<CircuitSession>>,
    /// Raw-source FNV-1a hash → content hash of the session it parsed to.
    by_source: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU-bounded, thread-safe registry of [`CircuitSession`]s.
pub struct CircuitRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CircuitRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitRegistry")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a 64 over raw bytes — the source-level key.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl CircuitRegistry {
    /// Creates a registry holding at most `capacity` sessions
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> CircuitRegistry {
        CircuitRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic inside the registry's own bookkeeping is the only way
        // to poison this lock; keep serving rather than cascading.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resolves `bench` to its session, parsing and registering the
    /// circuit only on a miss. Returns the session and whether the
    /// lookup was warm (no new session created). `name` overrides the
    /// bench text's own `#` header as the display name on a miss.
    ///
    /// # Errors
    ///
    /// Returns the netlist parse/build error message for invalid bench
    /// text; the registry is unchanged in that case.
    pub fn get_or_parse(
        &self,
        bench: &str,
        name: Option<&str>,
    ) -> Result<(Arc<CircuitSession>, bool), String> {
        let source = fnv64(bench.as_bytes());
        let mut inner = self.lock();
        if let Some(&content) = inner.by_source.get(&source) {
            if let Some(pos) = inner
                .sessions
                .iter()
                .position(|s| s.content_hash() == content)
            {
                let session = inner.sessions.remove(pos);
                inner.sessions.push(Arc::clone(&session));
                inner.hits += 1;
                return Ok((session, true));
            }
            // The alias outlived its session (evicted); fall through to
            // a fresh parse.
            inner.by_source.remove(&source);
        }
        // Parse under the lock: concurrent first requests for the same
        // circuit must not race to build two sessions.
        let circuit = match name {
            Some(name) => gatediag_netlist::parse_bench_named(bench, name),
            None => gatediag_netlist::parse_bench(bench),
        }
        .map_err(|e| format!("bench parse error: {e}"))?;
        let content = circuit_content_hash(&circuit);
        if let Some(pos) = inner
            .sessions
            .iter()
            .position(|s| s.content_hash() == content)
        {
            // Same netlist under different source bytes: alias it.
            let session = inner.sessions.remove(pos);
            inner.sessions.push(Arc::clone(&session));
            inner.by_source.insert(source, content);
            inner.hits += 1;
            return Ok((session, true));
        }
        let display = match circuit.name() {
            "" => "circuit".to_string(),
            n => n.to_string(),
        };
        let session = Arc::new(CircuitSession::new(display, circuit));
        inner.sessions.push(Arc::clone(&session));
        inner.by_source.insert(source, content);
        inner.misses += 1;
        while inner.sessions.len() > self.capacity {
            let evicted = inner.sessions.remove(0);
            let dead = evicted.content_hash();
            inner.by_source.retain(|_, &mut c| c != dead);
            inner.evictions += 1;
        }
        Ok((session, false))
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        RegistryStats {
            sessions: inner.sessions.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::write_bench;

    fn bench(n: usize) -> String {
        // A tiny unique circuit per index: an AND chain of depth `n`.
        let mut out = String::from("INPUT(a)\nINPUT(b)\n");
        let mut prev = "a".to_string();
        for i in 0..=n {
            out.push_str(&format!("w{i} = AND({prev}, b)\n"));
            prev = format!("w{i}");
        }
        out.push_str(&format!("OUTPUT({prev})\n"));
        out
    }

    #[test]
    fn hit_miss_and_touch() {
        let reg = CircuitRegistry::new(4);
        let (s1, warm1) = reg.get_or_parse(&bench(1), Some("one")).unwrap();
        assert!(!warm1);
        let (s2, warm2) = reg.get_or_parse(&bench(1), Some("one")).unwrap();
        assert!(warm2);
        assert!(Arc::ptr_eq(&s1, &s2), "hit must return the same session");
        let stats = reg.stats();
        assert_eq!((stats.sessions, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn whitespace_and_name_variants_alias_to_one_session() {
        let reg = CircuitRegistry::new(4);
        let (s1, _) = reg.get_or_parse(&bench(1), Some("one")).unwrap();
        // Re-render through write_bench: different bytes (comment
        // header, canonical spacing), same functional netlist.
        let rendered = write_bench(s1.golden());
        assert_ne!(rendered, bench(1));
        let (s2, warm) = reg.get_or_parse(&rendered, None).unwrap();
        assert!(warm, "content-hash alias must be a warm lookup");
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(reg.stats().sessions, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let reg = CircuitRegistry::new(2);
        reg.get_or_parse(&bench(1), None).unwrap();
        reg.get_or_parse(&bench(2), None).unwrap();
        // Touch 1 so 2 becomes the eviction candidate.
        reg.get_or_parse(&bench(1), None).unwrap();
        reg.get_or_parse(&bench(3), None).unwrap();
        let stats = reg.stats();
        assert_eq!((stats.sessions, stats.evictions), (2, 1));
        // 1 and 3 are resident (warm); 2 was evicted (cold again).
        assert!(reg.get_or_parse(&bench(1), None).unwrap().1);
        assert!(reg.get_or_parse(&bench(3), None).unwrap().1);
        assert!(!reg.get_or_parse(&bench(2), None).unwrap().1);
    }

    #[test]
    fn warm_lookup_builds_no_netlist() {
        let reg = CircuitRegistry::new(4);
        reg.get_or_parse(&bench(1), None).unwrap();
        let sink = Arc::new(gatediag_obs::Sink::new());
        let trace = {
            let _guard = gatediag_obs::install(Arc::clone(&sink));
            reg.get_or_parse(&bench(1), None).unwrap();
            sink.take_trace()
        };
        assert_eq!(
            trace.counter("netlist.builds"),
            0,
            "a source-hash hit must not parse or build anything"
        );
    }

    #[test]
    fn parse_errors_leave_the_registry_unchanged() {
        let reg = CircuitRegistry::new(4);
        assert!(reg.get_or_parse("y = FROB(a)\n", None).is_err());
        let stats = reg.stats();
        assert_eq!((stats.sessions, stats.misses), (0, 0));
    }
}
