//! The request broker: parses request lines, applies admission
//! control, multiplexes diagnoses onto one shared worker pool, and
//! renders responses.
//!
//! Every diagnose request runs on a [`PersistentPool`] worker with
//! `Parallelism::Sequential` inside the engine — requests are the unit
//! of concurrency, and engine results are pure functions of the
//! request, so responses are byte-identical for every pool size and
//! every interleaving of clients (the concurrency drift tests pin
//! this).
//!
//! A request that panics mid-engine (real bug or injected chaos) is
//! caught by the pool and reported as a `"failed"` response; the
//! worker, the registry and every cached session survive — the daemon
//! analogue of the campaign runner's crash isolation.

use crate::protocol::{parse_request, status_response, DiagnoseCall, Request, RESPONSE_SCHEMA};
use crate::registry::CircuitRegistry;
use gatediag_core::json::Json;
use gatediag_core::{ChaosPolicy, CircuitSession, DiagnoseOutcome};
use gatediag_netlist::{Circuit, GateId};
use gatediag_obs::{ObsTrace, Sink};
use gatediag_sim::{Parallelism, PersistentPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Server-side policy knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the shared diagnosis pool.
    pub workers: usize,
    /// Maximum circuits kept warm (LRU beyond that).
    pub registry_capacity: usize,
    /// Admission cap: a request asking for a work budget above this is
    /// `"rejected"`; a request with no budget of its own gets this cap
    /// imposed, so runaway work is preempted cooperatively instead of
    /// monopolising a worker. `None` disables admission control.
    pub max_work_budget: Option<u64>,
    /// Work budget imposed on requests that specify none (must not
    /// exceed [`ServiceConfig::max_work_budget`] to be effective).
    pub default_work_budget: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            registry_capacity: 8,
            max_work_budget: None,
            default_work_budget: None,
        }
    }
}

/// The diagnosis service: one warm registry, one worker pool, no state
/// outside them. [`Service::handle_line`] is the single entry point
/// both the daemon and the in-process `diagnose --json` path use, which
/// is what makes their responses byte-identical by construction.
pub struct Service {
    registry: Arc<CircuitRegistry>,
    pool: PersistentPool,
    max_work_budget: Option<u64>,
    default_work_budget: Option<u64>,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.pool.workers())
            .field("registry", &self.registry)
            .finish()
    }
}

impl Service {
    /// Builds a service from its config.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            registry: Arc::new(CircuitRegistry::new(config.registry_capacity)),
            pool: PersistentPool::new(config.workers),
            max_work_budget: config.max_work_budget,
            default_work_budget: config.default_work_budget,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The warm circuit registry (for stats and tests).
    pub fn registry(&self) -> &CircuitRegistry {
        &self.registry
    }

    /// Worker threads in the shared pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// `true` once a `shutdown` request was handled; the transport
    /// loops poll this to stop accepting work.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Handles one request line and returns one response line (no
    /// trailing newline). Never panics: malformed input becomes an
    /// `"error"` response, a crashed engine a `"failed"` one.
    pub fn handle_line(&self, line: &str) -> String {
        match parse_request(line) {
            Err(message) => status_response("error", &message),
            Ok(Request::Ping) => ok_response("ping", Vec::new()),
            Ok(Request::Stats) => {
                let stats = self.registry.stats();
                ok_response(
                    "stats",
                    vec![
                        ("sessions", stats.sessions as u64),
                        ("hits", stats.hits),
                        ("misses", stats.misses),
                        ("evictions", stats.evictions),
                        ("workers", self.pool.workers() as u64),
                    ],
                )
            }
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::Release);
                ok_response("shutdown", Vec::new())
            }
            Ok(Request::Diagnose(call)) => self.handle_diagnose(*call),
        }
    }

    fn handle_diagnose(&self, mut call: DiagnoseCall) -> String {
        // Admission control on the deterministic work budget: the one
        // knob that bounds engine effort independently of wall time.
        let asked = call.request.work_budget.or(self.default_work_budget);
        if let Some(cap) = self.max_work_budget {
            match asked {
                Some(w) if w > cap => {
                    return status_response(
                        "rejected",
                        &format!("work budget {w} exceeds the server cap {cap}"),
                    );
                }
                Some(w) => call.request.work_budget = Some(w),
                None => call.request.work_budget = Some(cap),
            }
        } else {
            call.request.work_budget = asked;
        }
        let registry = Arc::clone(&self.registry);
        match self.pool.run(move || run_call(&registry, call)) {
            Ok(response) => response,
            // The engine panicked: the pool caught it, the worker and
            // the registry live on. Mirrors the campaign's `failed`.
            Err(panic) => status_response("failed", &panic),
        }
    }
}

fn ok_response(op: &str, fields: Vec<(&str, u64)>) -> String {
    let mut obj: Vec<(String, Json)> = vec![
        (
            "schema".to_string(),
            Json::Str(crate::protocol::REQUEST_SCHEMA.to_string()),
        ),
        ("op".to_string(), Json::Str(op.to_string())),
        ("status".to_string(), Json::Str("ok".to_string())),
    ];
    for (key, value) in fields {
        obj.push((key.to_string(), Json::Num(value.to_string())));
    }
    Json::Obj(obj).render()
}

/// Runs one admitted diagnose call on the current (pool) thread.
fn run_call(registry: &CircuitRegistry, call: DiagnoseCall) -> String {
    let sink = call.obs.then(|| Arc::new(Sink::new()));
    let started = call.timing.then(Instant::now);
    // Install the per-request sink *before* the registry lookup so a
    // cold request's parse/build counters (`netlist.builds`) land in
    // this request's trace — the warm-hit proof reads exactly that.
    let guard = sink.as_ref().map(|s| gatediag_obs::install(Arc::clone(s)));
    let result = diagnose_call(registry, &call);
    drop(guard);
    match result {
        Ok((session, outcome, warm, registry_warm)) => {
            let trace = sink.map(|s| s.take_trace());
            let wall_ms = started.map(|t| t.elapsed().as_millis() as u64);
            render_diagnose_response(
                &call,
                &session,
                &outcome,
                warm,
                registry_warm,
                trace,
                wall_ms,
            )
        }
        Err(message) => status_response("error", &message),
    }
}

type CallResult = (Arc<CircuitSession>, Arc<DiagnoseOutcome>, bool, bool);

fn diagnose_call(registry: &CircuitRegistry, call: &DiagnoseCall) -> Result<CallResult, String> {
    let (session, registry_warm) = registry.get_or_parse(&call.bench, call.circuit.as_deref())?;
    let request = call.request.validated()?;
    let chaos = match call.chaos {
        None => ChaosPolicy::off(),
        Some(config) => {
            // Keyed like a campaign instance (attempt 0): deterministic
            // in the request, independent of scheduling.
            let key = ChaosPolicy::key(&[
                session.name(),
                request.fault_model.name(),
                &request.p.to_string(),
                &request.seed.to_string(),
                request.engine.name(),
                "0",
            ]);
            ChaosPolicy::new(config, key)
        }
    };
    let (outcome, warm) = session.diagnose(&request, Parallelism::Sequential, chaos)?;
    Ok((session, outcome, warm, registry_warm))
}

fn gate_label(circuit: &Circuit, g: GateId) -> Json {
    Json::Str(
        circuit
            .gate_name(g)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{g}")),
    )
}

fn render_diagnose_response(
    call: &DiagnoseCall,
    session: &CircuitSession,
    outcome: &DiagnoseOutcome,
    warm: bool,
    registry_warm: bool,
    trace: Option<ObsTrace>,
    wall_ms: Option<u64>,
) -> String {
    // The request was validated in `diagnose_call`; re-deriving the
    // normalised form here keeps the echo fields (resolved engine,
    // effective k/frames/seq_len) truthful.
    let request = call
        .request
        .validated()
        .expect("request validated before the engine ran");
    let mut obj: Vec<(String, Json)> = vec![
        ("schema".to_string(), Json::Str(RESPONSE_SCHEMA.to_string())),
        (
            "status".to_string(),
            Json::Str(outcome.status.name().to_string()),
        ),
        ("circuit".to_string(), Json::Str(session.name().to_string())),
        (
            "engine".to_string(),
            Json::Str(request.engine.name().to_string()),
        ),
        (
            "fault_model".to_string(),
            Json::Str(request.fault_model.name().to_string()),
        ),
        ("p".to_string(), Json::Num(request.p.to_string())),
        ("seed".to_string(), Json::Num(request.seed.to_string())),
        (
            "k".to_string(),
            Json::Num(request.k.unwrap_or(request.p).to_string()),
        ),
    ];
    if let (Some(frames), Some(seq_len)) = (request.frames, request.seq_len) {
        obj.push(("frames".to_string(), Json::Num(frames.to_string())));
        obj.push(("seq_len".to_string(), Json::Num(seq_len.to_string())));
    }
    obj.push(("tests".to_string(), Json::Num(outcome.tests.to_string())));
    if let Some(faulty) = &outcome.faulty {
        obj.push((
            "injected".to_string(),
            Json::Arr(
                outcome
                    .faults
                    .iter()
                    .map(|f| gate_label(faulty, f.gate))
                    .collect(),
            ),
        ));
        if let Some(run) = &outcome.run {
            obj.push((
                "candidates".to_string(),
                Json::Arr(
                    run.candidates
                        .iter()
                        .map(|&g| gate_label(faulty, g))
                        .collect(),
                ),
            ));
            obj.push((
                "solutions".to_string(),
                Json::Arr(
                    run.solutions
                        .iter()
                        .map(|s| Json::Arr(s.iter().map(|&g| gate_label(faulty, g)).collect()))
                        .collect(),
                ),
            ));
            obj.push(("complete".to_string(), Json::Bool(run.complete)));
            obj.push((
                "truncation".to_string(),
                run.truncation
                    .map_or(Json::Null, |t| Json::Str(t.name().to_string())),
            ));
            obj.push((
                "conflicts".to_string(),
                Json::Num(run.stats.conflicts.to_string()),
            ));
            obj.push((
                "decisions".to_string(),
                Json::Num(run.stats.decisions.to_string()),
            ));
            obj.push((
                "propagations".to_string(),
                Json::Num(run.stats.propagations.to_string()),
            ));
            if let Some(tg) = &run.test_gen {
                obj.push((
                    "test_gen".to_string(),
                    Json::Obj(vec![
                        (
                            "gen_tests".to_string(),
                            Json::Num(tg.tests.len().to_string()),
                        ),
                        (
                            "solutions_before".to_string(),
                            Json::Num(tg.solutions_before.to_string()),
                        ),
                        (
                            "solutions_after".to_string(),
                            Json::Num(tg.solutions_after.to_string()),
                        ),
                        (
                            "ambiguity_classes".to_string(),
                            Json::Num(tg.classes.len().to_string()),
                        ),
                    ]),
                ));
            }
        }
    }
    // `meta` is the quarantine zone: warm/cold state, wall time and raw
    // counters are real information, but none of it may leak into the
    // byte-compared body — it only exists when the request asked.
    if call.obs || call.timing {
        let mut meta: Vec<(String, Json)> = vec![
            ("warm".to_string(), Json::Bool(warm)),
            ("registry_warm".to_string(), Json::Bool(registry_warm)),
        ];
        if let Some(ms) = wall_ms {
            meta.push(("wall_ms".to_string(), Json::Num(ms.to_string())));
        }
        if let Some(trace) = trace {
            meta.push((
                "counters".to_string(),
                Json::Obj(
                    trace
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(v.to_string())))
                        .collect(),
                ),
            ));
        }
        obj.push(("meta".to_string(), Json::Obj(meta)));
    }
    Json::Obj(obj).render()
}
