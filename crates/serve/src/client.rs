//! A minimal blocking JSONL client for the daemon — one connection,
//! many request/response exchanges.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected client. Holds the connection open across requests, so a
/// sequence of exchanges measures the daemon's warm path rather than
/// TCP handshakes.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests and responses are single small lines; without this
        // the Nagle/delayed-ACK interplay stalls every warm exchange.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and blocks for its response line.
    ///
    /// # Errors
    ///
    /// Returns write/read errors; an EOF before the response arrives is
    /// reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// One-shot convenience: connect, exchange a single line, disconnect.
///
/// # Errors
///
/// Same as [`Client::connect`] and [`Client::request`].
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.request(line)
}
