//! Diagnosis-as-a-service: the `gatediag serve` daemon.
//!
//! A JSONL request/response service over TCP or stdio that keeps
//! circuits — and every diagnosis computed on them — warm between
//! requests:
//!
//! * [`registry`]: an LRU-bounded [`CircuitRegistry`] mapping circuit
//!   *content* to a long-lived [`gatediag_core::CircuitSession`]. A
//!   repeat request parses nothing and rebuilds nothing (zero
//!   `netlist.builds`, zero `cnf.gates_encoded`) — the measured warm
//!   hit the CI smoke asserts.
//! * [`service`]: admission control on the deterministic work budget
//!   (`"rejected"`), cooperative preemption through the engines' stop
//!   probe (`"preempted"`), and crash isolation per request
//!   (`"failed"`), multiplexed onto one shared
//!   [`gatediag_sim::PersistentPool`].
//! * [`protocol`]: the `gatediag-serve-v1` request /
//!   `gatediag-diagnose-v1` response schema on the shared
//!   [`gatediag_core::json`] layer. Responses carry no timing or
//!   counters unless asked, so a daemon response is byte-identical to
//!   the one-shot `gatediag diagnose --json` output for the same
//!   request — both are literally one code path,
//!   [`Service::handle_line`].
//! * [`server`] / [`client`]: thread-per-connection TCP and stdio
//!   transports, and the blocking client the CLI and benches use.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use client::{request, Client};
pub use protocol::{
    parse_request, render_diagnose_request, status_response, DiagnoseCall, Request, REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
};
pub use registry::{CircuitRegistry, RegistryStats};
pub use server::{serve_lines, serve_tcp};
pub use service::{Service, ServiceConfig};
