//! The JSONL wire protocol: one request per line in, one response per
//! line out.
//!
//! Requests are `gatediag-serve-v1` objects; diagnose responses are
//! `gatediag-diagnose-v1` objects. Everything rides on the shared
//! [`gatediag_core::json`] layer, so field order is insertion order and
//! rendering is deterministic — the property that lets the CI smoke
//! `cmp` a daemon response against the one-shot CLI's `--json` output.
//!
//! Timing and observability are opt-in per request (`"timing"` /
//! `"obs"`): a default response carries no wall-clock or counter data
//! at all, which is what keeps it byte-comparable across runs, worker
//! counts and warm/cold cache states.

use gatediag_core::json::{escape_str, parse_json, Json};
use gatediag_core::{ChaosConfig, DiagnoseRequest, EngineKind};
use gatediag_netlist::FaultModel;

/// Schema tag every request must carry.
pub const REQUEST_SCHEMA: &str = "gatediag-serve-v1";

/// Schema tag on every diagnose response.
pub const RESPONSE_SCHEMA: &str = "gatediag-diagnose-v1";

/// A parsed `op: "diagnose"` request.
#[derive(Clone, Debug)]
pub struct DiagnoseCall {
    /// Display name for the circuit (`"circuit"`); falls back to the
    /// bench text's `#` header when absent.
    pub circuit: Option<String>,
    /// The circuit itself, as bench-format text (`"bench"`).
    pub bench: String,
    /// The diagnosis parameters; fields not present in the request keep
    /// the [`DiagnoseRequest::default`] campaign values.
    pub request: DiagnoseRequest,
    /// Deterministic fault injection for crash-isolation testing:
    /// `("chaos_ppm", "chaos_seed")` mirror
    /// [`gatediag_core::ChaosConfig`]. Chaos requests bypass the warm
    /// cache (they are not pure functions of the request).
    pub chaos: Option<ChaosConfig>,
    /// Attach deterministic obs counters to the response (`"obs"`).
    pub obs: bool,
    /// Attach wall-clock timing to the response (`"timing"`).
    pub timing: bool,
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Registry and pool statistics.
    Stats,
    /// Stop accepting connections after responding.
    Shutdown,
    /// Run (or replay from cache) one diagnosis.
    Diagnose(Box<DiagnoseCall>),
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => Ok(Some(f.as_usize(key).map_err(|e| e.message)?)),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => Ok(Some(f.as_u64(key).map_err(|e| e.message)?)),
    }
}

fn bool_or(v: &Json, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f.as_bool(key).map_err(|e| e.message),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message suitable for an `"error"` response: JSON syntax
/// errors (with byte offset), schema mismatches, unknown ops, unknown
/// engine or fault-model tokens, and missing required fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| e.message)?;
    let schema = v
        .expect("schema", "request")
        .and_then(|s| s.as_str("schema"))
        .map_err(|e| e.message)?;
    if schema != REQUEST_SCHEMA {
        return Err(format!(
            "unsupported schema \"{schema}\" (expected \"{REQUEST_SCHEMA}\")"
        ));
    }
    let op = v
        .expect("op", "request")
        .and_then(|s| s.as_str("op"))
        .map_err(|e| e.message)?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "diagnose" => parse_diagnose(&v).map(|c| Request::Diagnose(Box::new(c))),
        other => Err(format!(
            "unknown op \"{other}\" (ping|stats|shutdown|diagnose)"
        )),
    }
}

fn parse_diagnose(v: &Json) -> Result<DiagnoseCall, String> {
    let bench = v
        .expect("bench", "diagnose request")
        .and_then(|s| s.as_str("bench"))
        .map_err(|e| e.message)?
        .to_string();
    let circuit = match v.get("circuit") {
        None | Some(Json::Null) => None,
        Some(f) => Some(f.as_str("circuit").map_err(|e| e.message)?.to_string()),
    };
    let mut request = DiagnoseRequest::default();
    if let Some(f) = v.get("engine") {
        let text = f.as_str("engine").map_err(|e| e.message)?;
        request.engine =
            EngineKind::parse(text).ok_or_else(|| format!("unknown engine \"{text}\""))?;
    }
    if let Some(f) = v.get("fault_model") {
        let text = f.as_str("fault_model").map_err(|e| e.message)?;
        request.fault_model =
            FaultModel::parse(text).ok_or_else(|| format!("unknown fault model \"{text}\""))?;
    }
    if let Some(p) = opt_usize(v, "p")? {
        request.p = p;
    }
    if let Some(seed) = opt_u64(v, "seed")? {
        request.seed = seed;
    }
    if let Some(tests) = opt_usize(v, "tests")? {
        request.tests = tests;
    }
    if let Some(cap) = opt_usize(v, "max_test_vectors")? {
        request.max_test_vectors = cap;
    }
    request.k = opt_usize(v, "k")?;
    request.frames = opt_usize(v, "frames")?;
    request.seq_len = opt_usize(v, "seq_len")?;
    if let Some(cap) = opt_usize(v, "max_solutions")? {
        request.max_solutions = cap;
    }
    // `conflict_budget` has a non-`None` default, so only an explicit
    // field (including an explicit `null`) changes it.
    if let Some(f) = v.get("conflict_budget") {
        request.conflict_budget = match f {
            Json::Null => None,
            f => Some(f.as_u64("conflict_budget").map_err(|e| e.message)?),
        };
    }
    request.work_budget = opt_u64(v, "work_budget")?;
    request.deadline_ms = opt_u64(v, "deadline_ms")?;
    request.test_gen_rounds = opt_usize(v, "test_gen_rounds")?;
    let chaos = match (opt_u64(v, "chaos_ppm")?, opt_u64(v, "chaos_seed")?) {
        (None, _) => None,
        (Some(ppm), seed) => Some(ChaosConfig {
            seed: seed.unwrap_or(0),
            rate_ppm: u32::try_from(ppm.min(1_000_000)).expect("clamped above"),
        }),
    };
    Ok(DiagnoseCall {
        circuit,
        bench,
        request,
        chaos,
        obs: bool_or(v, "obs", false)?,
        timing: bool_or(v, "timing", false)?,
    })
}

fn push_opt_usize(fields: &mut Vec<(String, Json)>, key: &str, value: Option<usize>) {
    if let Some(value) = value {
        fields.push((key.to_string(), Json::Num(value.to_string())));
    }
}

/// Renders a diagnose request as its canonical single-line form — the
/// exact bytes the CLI client sends and `gatediag diagnose --json`
/// feeds through the in-process service, so both front doors are one
/// code path.
pub fn render_diagnose_request(call: &DiagnoseCall) -> String {
    let r = &call.request;
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".to_string(), Json::Str(REQUEST_SCHEMA.to_string())),
        ("op".to_string(), Json::Str("diagnose".to_string())),
    ];
    if let Some(name) = &call.circuit {
        fields.push(("circuit".to_string(), Json::Str(name.clone())));
    }
    fields.push(("bench".to_string(), Json::Str(call.bench.clone())));
    fields.push(("engine".to_string(), Json::Str(r.engine.name().to_string())));
    fields.push((
        "fault_model".to_string(),
        Json::Str(r.fault_model.name().to_string()),
    ));
    fields.push(("p".to_string(), Json::Num(r.p.to_string())));
    fields.push(("seed".to_string(), Json::Num(r.seed.to_string())));
    fields.push(("tests".to_string(), Json::Num(r.tests.to_string())));
    fields.push((
        "max_test_vectors".to_string(),
        Json::Num(r.max_test_vectors.to_string()),
    ));
    push_opt_usize(&mut fields, "k", r.k);
    push_opt_usize(&mut fields, "frames", r.frames);
    push_opt_usize(&mut fields, "seq_len", r.seq_len);
    fields.push((
        "max_solutions".to_string(),
        Json::Num(r.max_solutions.to_string()),
    ));
    // Explicit `null` distinguishes "unlimited" from "the default".
    fields.push((
        "conflict_budget".to_string(),
        r.conflict_budget
            .map_or(Json::Null, |v| Json::Num(v.to_string())),
    ));
    if let Some(v) = r.work_budget {
        fields.push(("work_budget".to_string(), Json::Num(v.to_string())));
    }
    if let Some(v) = r.deadline_ms {
        fields.push(("deadline_ms".to_string(), Json::Num(v.to_string())));
    }
    push_opt_usize(&mut fields, "test_gen_rounds", r.test_gen_rounds);
    if let Some(chaos) = call.chaos {
        fields.push((
            "chaos_ppm".to_string(),
            Json::Num(chaos.rate_ppm.to_string()),
        ));
        fields.push(("chaos_seed".to_string(), Json::Num(chaos.seed.to_string())));
    }
    if call.obs {
        fields.push(("obs".to_string(), Json::Bool(true)));
    }
    if call.timing {
        fields.push(("timing".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields).render()
}

/// Renders the `{"schema": ..., "status": "...", "message": ...}`
/// response used for `rejected`, `failed` and `error` statuses.
pub fn status_response(status: &str, message: &str) -> String {
    format!(
        "{{\"schema\": {}, \"status\": {}, \"message\": {}}}",
        escape_str(RESPONSE_SCHEMA),
        escape_str(status),
        escape_str(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_call() -> DiagnoseCall {
        DiagnoseCall {
            circuit: Some("c17".to_string()),
            bench: "INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n".to_string(),
            request: DiagnoseRequest {
                k: Some(2),
                work_budget: Some(1_000),
                ..DiagnoseRequest::default()
            },
            chaos: None,
            obs: true,
            timing: false,
        }
    }

    #[test]
    fn render_parse_round_trip_preserves_every_field() {
        let call = demo_call();
        let line = render_diagnose_request(&call);
        match parse_request(&line).expect("round trip") {
            Request::Diagnose(parsed) => {
                assert_eq!(parsed.circuit, call.circuit);
                assert_eq!(parsed.bench, call.bench);
                assert_eq!(parsed.request, call.request);
                assert_eq!(parsed.chaos, call.chaos);
                assert_eq!(parsed.obs, call.obs);
                assert_eq!(parsed.timing, call.timing);
            }
            other => panic!("expected diagnose, got {other:?}"),
        }
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let line =
            format!("{{\"schema\": \"{REQUEST_SCHEMA}\", \"op\": \"diagnose\", \"bench\": \"x\"}}");
        match parse_request(&line).expect("minimal request") {
            Request::Diagnose(call) => {
                assert_eq!(call.request, DiagnoseRequest::default());
                assert_eq!(call.circuit, None);
                assert!(!call.obs && !call.timing);
            }
            other => panic!("expected diagnose, got {other:?}"),
        }
    }

    #[test]
    fn explicit_null_conflict_budget_means_unlimited() {
        let line = format!(
            "{{\"schema\": \"{REQUEST_SCHEMA}\", \"op\": \"diagnose\", \
             \"bench\": \"x\", \"conflict_budget\": null}}"
        );
        match parse_request(&line).expect("parses") {
            Request::Diagnose(call) => assert_eq!(call.request.conflict_budget, None),
            other => panic!("expected diagnose, got {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "JSON parse error"),
            ("{\"op\": \"ping\"}", "schema"),
            (
                "{\"schema\": \"gatediag-serve-v1\", \"op\": \"explode\"}",
                "unknown op",
            ),
            (
                "{\"schema\": \"gatediag-serve-v0\", \"op\": \"ping\"}",
                "unsupported schema",
            ),
            (
                "{\"schema\": \"gatediag-serve-v1\", \"op\": \"diagnose\"}",
                "bench",
            ),
            (
                "{\"schema\": \"gatediag-serve-v1\", \"op\": \"diagnose\", \
                 \"bench\": \"x\", \"engine\": \"warp\"}",
                "unknown engine",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` -> `{err}`");
        }
    }

    #[test]
    fn ops_parse() {
        for (op, ok) in [("ping", true), ("stats", true), ("shutdown", true)] {
            let line = format!("{{\"schema\": \"{REQUEST_SCHEMA}\", \"op\": \"{op}\"}}");
            assert_eq!(parse_request(&line).is_ok(), ok, "{op}");
        }
    }
}
