//! The clause sink abstraction: encoders write to anything that accepts
//! variables and clauses — a live solver, or a collector for offline use.

use gatediag_sat::{Lit, Solver, Var};

/// A consumer of CNF: fresh variables and clauses.
///
/// Implemented by [`Solver`](gatediag_sat::Solver) (encode directly into
/// the solver) and by [`CnfCollector`] (capture the formula, e.g. for
/// DIMACS export or brute-force cross-checks).
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause.
    fn add_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        gatediag_obs::count("cnf.vars", 1);
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        gatediag_obs::count("cnf.clauses", 1);
        Solver::add_clause(self, lits);
    }
}

/// A sink that records the formula instead of solving it.
///
/// # Examples
///
/// ```
/// use gatediag_cnf::{ClauseSink, CnfCollector};
///
/// let mut sink = CnfCollector::new();
/// let v = sink.new_var();
/// sink.add_clause(&[v.positive()]);
/// assert_eq!(sink.num_vars(), 1);
/// assert_eq!(sink.clauses().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CnfCollector {
    base: usize,
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CnfCollector::default()
    }

    /// Creates a collector whose first allocated variable is
    /// `Var::from_index(base)`.
    ///
    /// This is what lets independent formula fragments be encoded *in
    /// parallel* and later replayed into one solver: when a fragment's
    /// variable demand is known in advance (e.g. every instrumented
    /// circuit copy of a BSAT instance allocates the same number of
    /// variables), each fragment can be encoded into its own collector
    /// with a pre-assigned variable block, producing exactly the clauses
    /// a sequential encoding into the shared solver would have produced.
    pub fn starting_at(base: usize) -> Self {
        CnfCollector {
            base,
            ..CnfCollector::default()
        }
    }

    /// Number of variables allocated *by this collector* (excludes the
    /// `starting_at` base offset).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The recorded clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Consumes the collector, returning `(num_vars, clauses)` — the
    /// variable count excludes any `starting_at` base offset.
    pub fn into_parts(self) -> (usize, Vec<Vec<Lit>>) {
        (self.num_vars, self.clauses)
    }
}

impl ClauseSink for CnfCollector {
    fn new_var(&mut self) -> Var {
        gatediag_obs::count("cnf.vars", 1);
        let v = Var::from_index(self.base + self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        gatediag_obs::count("cnf.clauses", 1);
        self.clauses.push(lits.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_sat::SolveResult;

    #[test]
    fn solver_as_sink() {
        let mut s = Solver::new();
        let v = ClauseSink::new_var(&mut s);
        ClauseSink::add_clause(&mut s, &[v.negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v.positive()), Some(false));
    }

    #[test]
    fn offset_collector_allocates_from_base() {
        let mut sink = CnfCollector::starting_at(10);
        let a = sink.new_var();
        let b = sink.new_var();
        assert_eq!(a, Var::from_index(10));
        assert_eq!(b, Var::from_index(11));
        sink.add_clause(&[a.positive(), b.negative()]);
        let (n, clauses) = sink.into_parts();
        assert_eq!(n, 2, "num_vars counts only this collector's vars");
        assert_eq!(clauses[0][0].var(), Var::from_index(10));
    }

    #[test]
    fn collector_round_trip() {
        let mut sink = CnfCollector::new();
        let a = sink.new_var();
        let b = sink.new_var();
        sink.add_clause(&[a.positive(), b.negative()]);
        let (n, clauses) = sink.into_parts();
        assert_eq!(n, 2);
        assert_eq!(clauses, vec![vec![a.positive(), b.negative()]]);
    }
}
