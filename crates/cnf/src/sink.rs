//! The clause sink abstraction: encoders write to anything that accepts
//! variables and clauses — a live solver, or a collector for offline use.

use gatediag_sat::{Lit, Solver, Var};

/// A consumer of CNF: fresh variables and clauses.
///
/// Implemented by [`Solver`](gatediag_sat::Solver) (encode directly into
/// the solver) and by [`CnfCollector`] (capture the formula, e.g. for
/// DIMACS export or brute-force cross-checks).
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause.
    fn add_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits);
    }
}

/// A sink that records the formula instead of solving it.
///
/// # Examples
///
/// ```
/// use gatediag_cnf::{ClauseSink, CnfCollector};
///
/// let mut sink = CnfCollector::new();
/// let v = sink.new_var();
/// sink.add_clause(&[v.positive()]);
/// assert_eq!(sink.num_vars(), 1);
/// assert_eq!(sink.clauses().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CnfCollector {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CnfCollector::default()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The recorded clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Consumes the collector, returning `(num_vars, clauses)`.
    pub fn into_parts(self) -> (usize, Vec<Vec<Lit>>) {
        (self.num_vars, self.clauses)
    }
}

impl ClauseSink for CnfCollector {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_sat::SolveResult;

    #[test]
    fn solver_as_sink() {
        let mut s = Solver::new();
        let v = ClauseSink::new_var(&mut s);
        ClauseSink::add_clause(&mut s, &[v.negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v.positive()), Some(false));
    }

    #[test]
    fn collector_round_trip() {
        let mut sink = CnfCollector::new();
        let a = sink.new_var();
        let b = sink.new_var();
        sink.add_clause(&[a.positive(), b.negative()]);
        let (n, clauses) = sink.into_parts();
        assert_eq!(n, 2);
        assert_eq!(clauses, vec![vec![a.positive(), b.negative()]]);
    }
}
