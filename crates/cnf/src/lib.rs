//! CNF encodings for SAT-based circuit diagnosis.
//!
//! Bridges the [`gatediag-netlist`](gatediag_netlist) substrate and the
//! [`gatediag-sat`](gatediag_sat) solver:
//!
//! * [`encode_circuit`] — Tseitin encoding of a circuit copy (one variable
//!   per gate, linear clause count);
//! * [`Instrumentation`] / [`encode_instrumented_copy`] — the correction
//!   multiplexers of the paper's Fig. 2, with shared select lines across
//!   test copies and a choice of [`MuxEncoding`]s (inline guards vs the
//!   paper-faithful explicit mux, with the advanced `c = 0` optimisation);
//! * [`Totalizer`] / [`encode_at_most_seq`] — cardinality constraints
//!   `Σ s_g ≤ k`, the totalizer exposing incremental per-`k` assumption
//!   literals (the Zchaff-style incremental usage of Fig. 3);
//! * [`ClauseSink`] / [`CnfCollector`] — encode into a live solver or
//!   capture the formula for DIMACS export and brute-force cross-checks.
//!
//! # Examples
//!
//! ```
//! use gatediag_cnf::encode_circuit;
//! use gatediag_sat::{Solver, SolveResult};
//!
//! // Is there an input making both c17 outputs 1?
//! let c = gatediag_netlist::c17();
//! let mut solver = Solver::new();
//! let vars = encode_circuit(&mut solver, &c);
//! for &o in c.outputs() {
//!     solver.add_clause(&[vars.lit(o, true)]);
//! }
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod card;
mod copies;
mod miter;
mod mux;
mod sink;
mod tseitin;

pub use card::{encode_at_most_seq, Totalizer};
pub use copies::{
    block_input_vector, encode_freed_copy, encode_pinned_copy, harvest_input_lane,
    harvest_input_vector, tie_inputs,
};
pub use miter::{check_equivalence, distinguishing_vectors, Distinguisher, Miter};
pub use mux::{encode_instrumented_copy, Instrumentation, InstrumentedCopy, MuxEncoding};
pub use sink::{ClauseSink, CnfCollector};
pub use tseitin::{encode_circuit, encode_gate, CircuitVars};
