//! Tseitin encoding of gate-level circuits into CNF.
//!
//! The standard linear-size encoding used in SAT-based test generation
//! since Larrabee: one variable per gate, a handful of clauses per gate
//! kind. This is the CNF representation the paper assumes (its reference
//! [11]).

use crate::sink::ClauseSink;
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{Lit, Var};

/// Variable map of one encoded circuit copy.
///
/// Encoding a circuit yields one solver variable per gate; constraining and
/// reading values goes through this map.
#[derive(Clone, Debug)]
pub struct CircuitVars {
    vars: Vec<Var>,
}

impl CircuitVars {
    pub(crate) fn from_vars(vars: Vec<Var>) -> Self {
        CircuitVars { vars }
    }

    /// The variable carrying the value of gate `id`.
    #[inline]
    pub fn var(&self, id: GateId) -> Var {
        self.vars[id.index()]
    }

    /// The positive literal of gate `id`'s variable.
    #[inline]
    pub fn lit(&self, id: GateId, value: bool) -> Lit {
        self.var(id).lit(value)
    }

    /// All gate variables in gate-id order.
    pub fn all(&self) -> &[Var] {
        &self.vars
    }
}

/// Emits the clauses tying `y` to `kind(fanins)`; the workhorse shared by
/// the plain and the multiplexer-instrumented encodings.
///
/// When `guard` is `Some(s)`, every clause gets the extra literal `s`,
/// making the constraint vacuous when `s` is true — this implements the
/// "gate value is free when its select line is on" semantics of the
/// inline correction-multiplexer encoding.
///
/// # Panics
///
/// Panics on source kinds other than constants (inputs have no defining
/// clauses) or on arity violations.
pub fn encode_gate<S: ClauseSink>(
    sink: &mut S,
    kind: GateKind,
    y: Var,
    fanins: &[Lit],
    guard: Option<Lit>,
) {
    gatediag_obs::count("cnf.gates_encoded", 1);
    fn emit<S: ClauseSink>(sink: &mut S, base: &[Lit], guard: Option<Lit>) {
        let mut lits = base.to_vec();
        if let Some(g) = guard {
            lits.push(g);
        }
        sink.add_clause(&lits);
    }
    macro_rules! clause {
        ($base:expr) => {
            emit(sink, $base, guard)
        };
    }
    let yp = y.positive();
    let yn = y.negative();
    match kind {
        GateKind::Input => panic!("primary inputs have no defining clauses"),
        GateKind::Const0 => clause!(&[yn]),
        GateKind::Const1 => clause!(&[yp]),
        GateKind::Buf => {
            let a = fanins[0];
            clause!(&[yn, a]);
            clause!(&[yp, !a]);
        }
        GateKind::Not => {
            let a = fanins[0];
            clause!(&[yn, !a]);
            clause!(&[yp, a]);
        }
        GateKind::And | GateKind::Nand => {
            // t = AND(fanins); y = t (And) or !t (Nand).
            let (t_true, t_false) = if kind == GateKind::And {
                (yp, yn)
            } else {
                (yn, yp)
            };
            for &a in fanins {
                clause!(&[t_false, a]);
            }
            let mut long: Vec<Lit> = fanins.iter().map(|&a| !a).collect();
            long.push(t_true);
            clause!(&long);
        }
        GateKind::Or | GateKind::Nor => {
            let (t_true, t_false) = if kind == GateKind::Or {
                (yp, yn)
            } else {
                (yn, yp)
            };
            for &a in fanins {
                clause!(&[t_true, !a]);
            }
            let mut long: Vec<Lit> = fanins.to_vec();
            long.push(t_false);
            clause!(&long);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain binary XORs through aux variables; the last step folds
            // the optional negation into the output polarity.
            assert!(fanins.len() >= 2, "XOR needs at least two fan-ins");
            let mut acc = fanins[0];
            for (i, &b) in fanins.iter().enumerate().skip(1) {
                let last = i == fanins.len() - 1;
                let out = if last {
                    if kind == GateKind::Xor {
                        yp
                    } else {
                        yn
                    }
                } else {
                    sink.new_var().positive()
                };
                // out <-> acc XOR b
                clause!(&[!out, acc, b]);
                clause!(&[!out, !acc, !b]);
                clause!(&[out, !acc, b]);
                clause!(&[out, acc, !b]);
                acc = out;
            }
        }
    }
}

/// Encodes a full circuit copy; returns the gate-to-variable map.
///
/// Inputs get fresh unconstrained variables; every other gate gets a
/// variable plus its defining clauses.
///
/// # Examples
///
/// ```
/// use gatediag_cnf::{encode_circuit, CnfCollector};
///
/// let c = gatediag_netlist::c17();
/// let mut sink = CnfCollector::new();
/// let vars = encode_circuit(&mut sink, &c);
/// assert!(sink.num_vars() >= c.len());
/// assert_eq!(vars.all().len(), c.len());
/// ```
pub fn encode_circuit<S: ClauseSink>(sink: &mut S, circuit: &Circuit) -> CircuitVars {
    let vars: Vec<Var> = (0..circuit.len()).map(|_| sink.new_var()).collect();
    let map = CircuitVars { vars };
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<Lit> = gate.fanins().iter().map(|&f| map.lit(f, true)).collect();
        encode_gate(sink, gate.kind(), map.var(id), &fanins, None);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CnfCollector;
    use gatediag_netlist::{c17, parity_tree, ripple_carry_adder, RandomCircuitSpec, VectorGen};
    use gatediag_sat::{SolveResult, Solver};
    use gatediag_sim::simulate;

    /// Constrain the encoded inputs to `vector`, solve, and compare every
    /// gate variable against the simulator.
    fn check_encoding_matches_sim(circuit: &gatediag_netlist::Circuit, vector: &[bool]) {
        let mut solver = Solver::new();
        let vars = encode_circuit(&mut solver, circuit);
        for (&pi, &v) in circuit.inputs().iter().zip(vector) {
            solver.add_clause(&[vars.lit(pi, v)]);
        }
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        let expected = simulate(circuit, vector);
        for (id, _) in circuit.iter() {
            assert_eq!(
                solver.model_value(vars.lit(id, true)),
                Some(expected[id.index()]),
                "gate {id} mismatch"
            );
        }
    }

    #[test]
    fn c17_encoding_matches_simulation() {
        let c = c17();
        for pattern in 0..32u32 {
            let vector: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            check_encoding_matches_sim(&c, &vector);
        }
    }

    #[test]
    fn adder_encoding_matches_simulation() {
        let c = ripple_carry_adder(3);
        let mut gen = VectorGen::new(&c, 4);
        for _ in 0..16 {
            check_encoding_matches_sim(&c, &gen.next_vector());
        }
    }

    #[test]
    fn parity_encoding_matches_simulation() {
        // Exercises the n-ary XOR chain.
        let c = parity_tree(5);
        for pattern in 0..32u32 {
            let vector: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            check_encoding_matches_sim(&c, &vector);
        }
    }

    #[test]
    fn random_circuits_match_simulation() {
        for seed in 0..5 {
            let c = RandomCircuitSpec::new(6, 2, 40).seed(seed).generate();
            let mut gen = VectorGen::new(&c, seed + 100);
            for _ in 0..8 {
                check_encoding_matches_sim(&c, &gen.next_vector());
            }
        }
    }

    #[test]
    fn encoding_is_linear_size() {
        let small = {
            let mut sink = CnfCollector::new();
            encode_circuit(
                &mut sink,
                &RandomCircuitSpec::new(8, 3, 100).seed(0).generate(),
            );
            sink.clauses().len()
        };
        let large = {
            let mut sink = CnfCollector::new();
            encode_circuit(
                &mut sink,
                &RandomCircuitSpec::new(8, 3, 400).seed(0).generate(),
            );
            sink.clauses().len()
        };
        assert!(
            large < 6 * small,
            "clause growth should be roughly linear: {small} -> {large}"
        );
    }

    #[test]
    fn guarded_gate_is_free_when_guard_true() {
        // y = AND(a, b) guarded by s: with s = 1 the solver may pick any y.
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        let y = solver.new_var();
        let s = solver.new_var();
        encode_gate(
            &mut solver,
            GateKind::And,
            y,
            &[a.positive(), b.positive()],
            Some(s.positive()),
        );
        // s=1, a=1, b=1: y may be 0 (freed).
        assert_eq!(
            solver.solve(&[s.positive(), a.positive(), b.positive(), y.negative()]),
            SolveResult::Sat
        );
        // s=0, a=1, b=1: y must be 1.
        assert_eq!(
            solver.solve(&[s.negative(), a.positive(), b.positive(), y.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(
            solver.solve(&[s.negative(), a.positive(), b.positive(), y.positive()]),
            SolveResult::Sat
        );
    }
}
